"""Tests for the feature pipeline (Eq. 3) and its individual blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.users import UserSimulator
from repro.features import (
    FeatureConfig,
    FeaturePipeline,
    categorical_metadata_features,
    content_category_features,
    description_features,
    numerical_metadata_features,
    temporal_activity_features,
    tweet_features,
    zscore,
)
from repro.features.categories import category_counts, cluster_tweets
from repro.text import PseudoTextEncoder


@pytest.fixture(scope="module")
def users():
    simulator = UserSimulator(seed=0, difficulty=0.2, tweets_per_user=10)
    labels = [0] * 30 + [1] * 30
    return simulator.draw_population(labels)


@pytest.fixture(scope="module")
def encoder():
    return PseudoTextEncoder(dim=16, seed=0)


class TestZScore:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(loc=5.0, scale=3.0, size=(100, 4))
        scaled = zscore(matrix)
        np.testing.assert_allclose(scaled.mean(axis=0), np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), np.ones(4), atol=1e-6)

    def test_constant_column_does_not_blow_up(self):
        matrix = np.ones((10, 2))
        scaled = zscore(matrix)
        assert np.all(np.isfinite(scaled))


class TestMetadataFeatures:
    def test_numerical_shape(self, users):
        features = numerical_metadata_features(users)
        assert features.shape == (60, 6)
        assert np.all(np.isfinite(features))

    def test_categorical_shape_and_range(self, users):
        features = categorical_metadata_features(users)
        assert features.shape == (60, 6)
        assert features[:, :5].min() >= 0.0
        assert features[:, :4].max() <= 1.0

    def test_numerical_separates_classes_on_average(self, users):
        features = numerical_metadata_features(users)
        labels = np.array([user.label for user in users])
        # Followers (column 0, z-scored log) should be lower for bots on average.
        assert features[labels == 1, 0].mean() < features[labels == 0, 0].mean()


class TestTextFeatures:
    def test_description_shape(self, users, encoder):
        features = description_features(users, encoder)
        assert features.shape == (60, 16)

    def test_tweet_feature_shape(self, users, encoder):
        features = tweet_features(users, encoder)
        assert features.shape == (60, 16)

    def test_tweet_feature_max_tweets_cap(self, users, encoder):
        capped = tweet_features(users, encoder, max_tweets=1)
        full = tweet_features(users, encoder)
        assert capped.shape == full.shape
        assert not np.allclose(capped, full)


class TestCategoryFeatures:
    def test_cluster_tweets_outputs(self, users, encoder):
        per_user, kmeans = cluster_tweets(users, encoder, n_categories=10, seed=0)
        assert len(per_user) == len(users)
        assert kmeans.centroids is not None
        counts = category_counts(per_user, kmeans.n_clusters)
        assert counts.shape == (len(users),)
        assert counts.max() <= 10

    def test_feature_block_shape(self, users, encoder):
        features = content_category_features(users, encoder, n_categories=10, seed=0)
        assert features.shape == (60, 1 + 10)

    def test_bots_use_fewer_categories(self, users, encoder):
        per_user, kmeans = cluster_tweets(users, encoder, n_categories=15, seed=0)
        counts = category_counts(per_user, kmeans.n_clusters)
        labels = np.array([user.label for user in users])
        assert counts[labels == 1].mean() < counts[labels == 0].mean()

    def test_percentages_rows_sum_to_one(self, users, encoder):
        features = content_category_features(users, encoder, n_categories=10, seed=0)
        percentages = features[:, 1:]
        np.testing.assert_allclose(percentages.sum(axis=1), np.ones(len(users)), atol=1e-9)


class TestTemporalFeatures:
    def test_shape_includes_summary_stats(self, users):
        features = temporal_activity_features(users, months=12)
        assert features.shape == (60, 14)

    def test_percentages_sum_to_one_for_active_users(self, users):
        features = temporal_activity_features(users, months=18)
        sums = features[:, :18].sum(axis=1)
        active = sums > 0
        np.testing.assert_allclose(sums[active], np.ones(active.sum()), atol=1e-9)

    def test_bots_have_lower_variability(self, users):
        features = temporal_activity_features(users, months=18)
        labels = np.array([user.label for user in users])
        cv_column = features[:, 18]
        assert cv_column[labels == 1].mean() < cv_column[labels == 0].mean()

    def test_empty_user_list(self):
        assert temporal_activity_features([], months=12).shape == (0, 14)


class TestFeaturePipeline:
    def test_full_pipeline_blocks_and_width(self, users):
        pipeline = FeaturePipeline(FeatureConfig(text_dim=16, n_categories=10, seed=0))
        matrix = pipeline.transform(users)
        assert matrix.shape[0] == 60
        assert set(pipeline.feature_names) == {
            "description",
            "tweet",
            "numerical",
            "categorical",
            "category",
            "temporal",
        }
        total_width = sum(s.stop - s.start for s in pipeline.block_slices.values())
        assert total_width == matrix.shape[1]

    def test_ablation_drops_category_block(self, users):
        config = FeatureConfig(text_dim=16, include_category_feature=False, seed=0)
        pipeline = FeaturePipeline(config)
        pipeline.transform(users)
        assert "category" not in pipeline.feature_names

    def test_ablation_drops_temporal_block(self, users):
        config = FeatureConfig(text_dim=16, include_temporal_feature=False, seed=0)
        pipeline = FeaturePipeline(config)
        pipeline.transform(users)
        assert "temporal" not in pipeline.feature_names

    def test_all_blocks_disabled_raises(self, users):
        config = FeatureConfig(
            include_description=False,
            include_tweet=False,
            include_numerical=False,
            include_categorical=False,
            include_category_feature=False,
            include_temporal_feature=False,
        )
        with pytest.raises(ValueError):
            FeaturePipeline(config).transform(users)

    def test_block_slices_are_disjoint(self, users):
        pipeline = FeaturePipeline(FeatureConfig(text_dim=16, seed=0))
        pipeline.transform(users)
        slices = sorted(pipeline.block_slices.values(), key=lambda s: s.start)
        for previous, current in zip(slices, slices[1:]):
            assert previous.stop == current.start

    def test_features_are_finite(self, users):
        matrix = FeaturePipeline(FeatureConfig(text_dim=16, seed=0)).transform(users)
        assert np.all(np.isfinite(matrix))
