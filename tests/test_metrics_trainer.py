"""Tests for classification metrics, early stopping and the training loop."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EarlyStopping,
    TrainingHistory,
    accuracy_score,
    binary_classification_report,
    confusion_counts,
    f1_score,
    precision_score,
    recall_score,
    train_node_classifier,
)
from repro.nn import MLPBlock
from repro.tensor import Tensor


class TestMetrics:
    def test_confusion_counts(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 1, 1])
        tp, fp, tn, fn = confusion_counts(y_true, y_pred)
        assert (tp, fp, tn, fn) == (2, 1, 1, 1)

    def test_confusion_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts(np.array([1]), np.array([1, 0]))

    def test_accuracy(self):
        assert accuracy_score(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty_is_nan(self):
        assert np.isnan(accuracy_score(np.array([]), np.array([])))

    def test_perfect_scores(self):
        y = np.array([0, 1, 1, 0])
        assert precision_score(y, y) == 1.0
        assert recall_score(y, y) == 1.0
        assert f1_score(y, y) == 1.0

    def test_all_negative_predictions(self):
        y_true = np.array([1, 1, 0])
        y_pred = np.zeros(3, dtype=int)
        assert precision_score(y_true, y_pred) == 0.0
        assert recall_score(y_true, y_pred) == 0.0
        assert f1_score(y_true, y_pred) == 0.0

    def test_f1_matches_formula(self):
        y_true = np.array([1, 1, 0, 0, 1, 0])
        y_pred = np.array([1, 0, 0, 1, 1, 0])
        precision = precision_score(y_true, y_pred)
        recall = recall_score(y_true, y_pred)
        expected = 2 * precision * recall / (precision + recall)
        assert f1_score(y_true, y_pred) == pytest.approx(expected)

    def test_report_keys_and_percent_scale(self):
        report = binary_classification_report(np.array([1, 0]), np.array([1, 0]))
        assert set(report) == {"accuracy", "precision", "recall", "f1"}
        assert report["accuracy"] == 100.0

    @given(
        size=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_metric_bounds_property(self, size, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, 2, size=size)
        y_pred = rng.integers(0, 2, size=size)
        for metric in (accuracy_score, precision_score, recall_score, f1_score):
            value = metric(y_true, y_pred)
            assert 0.0 <= value <= 1.0

    @given(
        size=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40, deadline=None)
    def test_f1_between_precision_and_recall(self, size, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, 2, size=size)
        y_pred = rng.integers(0, 2, size=size)
        precision = precision_score(y_true, y_pred)
        recall = recall_score(y_true, y_pred)
        f1 = f1_score(y_true, y_pred)
        assert min(precision, recall) - 1e-12 <= f1 <= max(precision, recall) + 1e-12


class TestEarlyStopping:
    def test_stops_after_patience_without_improvement(self):
        stopper = EarlyStopping(patience=3)
        assert stopper.update(0.5, 0) is False
        assert stopper.update(0.5, 1) is False
        assert stopper.update(0.5, 2) is False
        assert stopper.update(0.5, 3) is True
        assert stopper.best_epoch == 0

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5, 0)
        stopper.update(0.4, 1)
        stopper.update(0.6, 2)  # improvement
        assert stopper.counter == 0
        assert stopper.best_epoch == 2

    def test_min_delta_filters_tiny_improvements(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1)
        stopper.update(0.5, 0)
        assert stopper.update(0.55, 1) is True  # below min_delta: no improvement


class TestTrainingHistory:
    def test_mean_epoch_time(self):
        history = TrainingHistory(epoch_times=[1.0, 3.0])
        assert history.mean_epoch_time == 2.0
        assert history.num_epochs == 0  # epochs counted from train losses

    def test_empty_history(self):
        history = TrainingHistory()
        assert history.num_epochs == 0
        assert history.mean_epoch_time == 0.0


class TestTrainNodeClassifier:
    def _make_problem(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        labels = np.zeros(n, dtype=np.int64)
        labels[n // 2 :] = 1
        features = rng.normal(size=(n, 5))
        features[labels == 1] += 2.0
        indices = rng.permutation(n)
        return features, labels, indices[: int(0.7 * n)], indices[int(0.7 * n) :]

    def test_learns_separable_problem(self):
        features, labels, train_idx, val_idx = self._make_problem()
        model = MLPBlock(5, 16, 2, np.random.default_rng(0))
        x = Tensor(features)

        def forward(training):
            model.train() if training else model.eval()
            return model(x)

        history = train_node_classifier(
            forward, model.parameters(), labels, train_idx, val_idx,
            lr=0.05, max_epochs=60, patience=10,
        )
        assert history.best_val_score > 0.9
        assert history.num_epochs <= 60
        assert len(history.val_scores) == history.num_epochs

    def test_early_stopping_limits_epochs(self):
        features, labels, train_idx, val_idx = self._make_problem()
        model = MLPBlock(5, 8, 2, np.random.default_rng(0))
        x = Tensor(features)

        def forward(training):
            return model(x)

        history = train_node_classifier(
            forward, model.parameters(), labels, train_idx, val_idx,
            lr=0.05, max_epochs=500, patience=3,
        )
        assert history.num_epochs < 500

    def test_best_parameters_restored(self):
        features, labels, train_idx, val_idx = self._make_problem()
        model = MLPBlock(5, 8, 2, np.random.default_rng(0))
        x = Tensor(features)

        def forward(training):
            return model(x)

        history = train_node_classifier(
            forward, model.parameters(), labels, train_idx, val_idx,
            lr=0.05, max_epochs=40, patience=5, metric="accuracy",
        )
        # Evaluating with the restored parameters reproduces the best score.
        logits = forward(False).numpy()
        predictions = logits[val_idx].argmax(axis=1)
        assert accuracy_score(labels[val_idx], predictions) == pytest.approx(
            history.best_val_score, abs=1e-9
        )

    def test_unknown_metric_rejected(self):
        features, labels, train_idx, val_idx = self._make_problem(n=40)
        model = MLPBlock(5, 4, 2, np.random.default_rng(0))
        x = Tensor(features)
        with pytest.raises(ValueError):
            train_node_classifier(
                lambda training: model(x), model.parameters(), labels, train_idx, val_idx,
                max_epochs=1, metric="auc",
            )
