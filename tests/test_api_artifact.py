"""Tests for persistent detector artifacts (save -> load -> serve)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import api
from repro.core import BSG4Bot, BSG4BotConfig
from repro.core.serialization import ArtifactError, MANIFEST_NAME
from tests.conftest import make_separable_graph


@pytest.fixture(scope="module")
def trained():
    """A fitted tiny BSG4Bot plus its graph (shared, treated as read-only)."""
    graph = make_separable_graph(num_nodes=70, seed=21)
    config = BSG4BotConfig(
        pretrain_epochs=10, hidden_dim=8, pretrain_hidden_dim=8,
        subgraph_k=3, max_epochs=4, min_epochs=1, patience=2, batch_size=16,
    )
    detector = BSG4Bot(config)
    detector.fit(graph)
    return detector, graph


class TestRoundTrip:
    def test_predict_proba_bit_identical(self, trained, tmp_path):
        detector, graph = trained
        expected = detector.predict_proba(graph)

        path = detector.save(tmp_path / "artifact")
        loaded = api.load_detector(path, graph=graph)

        # The loaded pipeline is a fresh object graph (the process-restart
        # path): nothing is shared with the original detector.
        assert loaded is not detector
        assert loaded.model is not detector.model
        np.testing.assert_array_equal(loaded.predict_proba(graph), expected)

    def test_loaded_store_is_attached_not_rebuilt(self, trained, tmp_path):
        detector, graph = trained
        path = api.save_detector(detector, tmp_path / "artifact")
        loaded = api.load_detector(path, graph=graph)
        assert len(loaded.store) == len(detector.store)
        before = loaded.store.build_count
        loaded.predict_proba_nodes(graph.train_indices()[:5])
        assert loaded.store.build_count == before  # served from the store

    def test_loaded_detector_scores_unseen_nodes(self, trained, tmp_path):
        detector, graph = trained
        path = api.save_detector(detector, tmp_path / "artifact")
        loaded = api.load_detector(path, graph=graph)
        # Simulate centers the artifact never covered: drop a few and let the
        # serving path top the store back up via incremental construction.
        targets = loaded.store.nodes()[:3]
        loaded.store.discard(targets)
        assert all(node not in loaded.store for node in targets)
        probabilities = loaded.predict_proba_nodes(np.asarray(targets))
        assert probabilities.shape == (len(targets), 2)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)
        assert all(node in loaded.store for node in targets)

    def test_manifest_contents(self, trained, tmp_path):
        detector, graph = trained
        path = api.save_detector(
            detector, tmp_path / "artifact", dataset={"name": "mgtab", "seed": 0}
        )
        manifest = api.read_manifest(path)
        assert manifest["format_version"] == 1
        assert manifest["detector"] == "bsg4bot"
        assert manifest["config"]["subgraph_k"] == detector.config.subgraph_k
        assert manifest["graph"]["num_nodes"] == graph.num_nodes
        assert manifest["dataset"] == {"name": "mgtab", "seed": 0}

    def test_load_without_graph_carries_weights_only(self, trained, tmp_path):
        detector, graph = trained
        path = api.save_detector(detector, tmp_path / "artifact")
        loaded = api.load_detector(path)
        assert loaded.graph is None and loaded.store is None
        # Predicting attaches the graph and rebuilds subgraphs from scratch.
        probabilities = loaded.predict_proba(graph)
        assert probabilities.shape == (graph.num_nodes, 2)


class TestLegacyAndErrors:
    def test_legacy_store_without_collation_pack(self, trained, tmp_path):
        """Pre-pack store archives (no ``norm_*`` arrays) still round-trip."""
        detector, graph = trained
        expected = detector.predict_proba(graph)
        path = api.save_detector(detector, tmp_path / "artifact")
        # Rewrite the store the way older code serialized it: raw edges only.
        detector.store.save(path / "store.npz", include_normalized=False)
        with np.load(path / "store.npz") as payload:
            assert "norm_relation_names" not in payload.files
        loaded = api.load_detector(path, graph=graph)
        np.testing.assert_array_equal(loaded.predict_proba(graph), expected)

    def test_corrupted_manifest_rejected(self, trained, tmp_path):
        detector, graph = trained
        path = api.save_detector(detector, tmp_path / "artifact")
        (path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ArtifactError, match="corrupted"):
            api.load_detector(path, graph=graph)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="missing"):
            api.load_detector(tmp_path / "nothing-here")

    def test_future_version_rejected(self, trained, tmp_path):
        detector, _ = trained
        path = api.save_detector(detector, tmp_path / "artifact")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["format_version"] = 999
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="version"):
            api.load_detector(path)

    def test_wrong_format_tag_rejected(self, trained, tmp_path):
        detector, _ = trained
        path = api.save_detector(detector, tmp_path / "artifact")
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["format"] = "something-else"
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="manifest"):
            api.load_detector(path)

    def test_manifest_stamp_cannot_be_overridden(self, tmp_path):
        from repro.core.serialization import write_manifest

        write_manifest(tmp_path, {"format_version": 999, "format": "bogus", "x": 1})
        manifest = api.read_manifest(tmp_path)  # would raise if 999 survived
        assert manifest["format_version"] == 1
        assert manifest["x"] == 1

    def test_mismatched_graph_rejected(self, trained, tmp_path):
        detector, _ = trained
        path = api.save_detector(detector, tmp_path / "artifact")
        other = make_separable_graph(num_nodes=40, seed=5)
        with pytest.raises(ArtifactError, match="does not match"):
            api.load_detector(path, graph=other)

    def test_unfitted_detector_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="fitted"):
            api.save_detector(BSG4Bot(), tmp_path / "artifact")

    def test_unsupported_detector_rejected(self, tmp_path):
        detector = api.create_detector("mlp")
        with pytest.raises(ArtifactError, match="BSG4Bot"):
            api.save_detector(detector, tmp_path / "artifact")

    def test_store_loads_against_rebuilt_graph(self, trained, tmp_path):
        """The CLI path: provenance rebuilds a *new* but identical graph."""
        detector, graph = trained
        expected = detector.predict_proba(graph)
        path = api.save_detector(detector, tmp_path / "artifact")
        rebuilt = make_separable_graph(num_nodes=70, seed=21)
        loaded = api.load_detector(path, graph=rebuilt)
        np.testing.assert_array_equal(loaded.predict_proba(rebuilt), expected)
