"""Dataset adapter suite: registry, oracle bit-identity, rejection, cache.

The load-bearing assertion is the ingestion oracle: for every adapter,
chunked ``ingest`` (at several chunk sizes) must produce a graph
bit-identical to the one-shot reference ``ingest_oneshot`` — compared via
``graph_fingerprint``, which hashes features, labels, masks, and every
relation's edge arrays.
"""

import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro import cli
from repro.datasets.adapters import (
    AdapterError,
    CSVEdgeListAdapter,
    DatasetAdapter,
    DatasetSpec,
    EdgeChunk,
    IngestCache,
    NodeChunk,
    SyntheticBotnetAdapter,
    available_adapters,
    cache_key,
    create_adapter,
    graph_fingerprint,
    ingest_spec,
    load_dataset_spec,
    resolve_dataset_graph,
)

FIXTURES = Path(__file__).parent / "fixtures" / "adapters"
SPEC_FILES = ["csv.yaml", "jsonl.yaml", "follower.yaml", "synthetic.yaml"]

TINY_OVERRIDES = [
    "--override", "pretrain_epochs=15", "--override", "pretrain_hidden_dim=8",
    "--override", "hidden_dim=8", "--override", "subgraph_k=3",
    "--override", "max_epochs=2", "--override", "min_epochs=1",
    "--override", "patience=2", "--override", "batch_size=16",
]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_builtin_adapters_registered(self):
        names = available_adapters()
        for name in ("csv", "jsonl", "follower-export", "synthetic"):
            assert name in names

    def test_create_is_case_insensitive(self):
        adapter = create_adapter({"adapter": "SYNTHETIC", "num_users": 10})
        assert isinstance(adapter, SyntheticBotnetAdapter)

    def test_unknown_adapter_rejected(self):
        with pytest.raises(KeyError, match="unknown adapter"):
            create_adapter("no-such-adapter")

    def test_spec_without_adapter_key_rejected(self):
        with pytest.raises(AdapterError, match="'adapter' key"):
            create_adapter({"num_users": 10})

    def test_unknown_config_key_rejected(self):
        with pytest.raises(AdapterError, match="unknown adapter config"):
            create_adapter({"adapter": "synthetic", "bogus_knob": 1})

    def test_missing_required_key_rejected(self):
        with pytest.raises(AdapterError, match="missing required"):
            create_adapter({"adapter": "csv", "nodes": "x.csv"})


# ----------------------------------------------------------------------
# Chunked-vs-one-shot oracle (bit-identity) — covers DatasetAdapter.ingest
# against its reference DatasetAdapter.ingest_oneshot
# ----------------------------------------------------------------------


class TestIngestOracle:
    @pytest.mark.parametrize("spec_file", SPEC_FILES)
    @pytest.mark.parametrize("chunk_size", [1, 7, None])
    def test_chunked_matches_oneshot(self, spec_file, chunk_size):
        spec = load_dataset_spec(FIXTURES / spec_file)
        chunked = spec.build_adapter().ingest(chunk_size=chunk_size)
        oneshot = spec.build_adapter().ingest_oneshot()
        assert graph_fingerprint(chunked) == graph_fingerprint(oneshot)

    @pytest.mark.parametrize("spec_file", SPEC_FILES)
    def test_chunked_matches_oneshot_under_test_cap(self, spec_file):
        spec = load_dataset_spec(FIXTURES / spec_file)
        chunked = spec.build_adapter(test=True).ingest(chunk_size=5)
        oneshot = spec.build_adapter(test=True).ingest_oneshot()
        assert chunked.num_nodes == spec.test_sample
        assert graph_fingerprint(chunked) == graph_fingerprint(oneshot)

    def test_fingerprint_sensitive_to_edges(self):
        graph = SyntheticBotnetAdapter(num_users=50, seed=0).ingest()
        before = graph_fingerprint(graph)
        graph.add_edges(graph.relation_names[0], np.array([0]), np.array([1]))
        assert graph_fingerprint(graph) != before


# ----------------------------------------------------------------------
# Malformed-input rejection
# ----------------------------------------------------------------------


def _write(path: Path, text: str) -> Path:
    path.write_text(text)
    return path


class TestMalformedCSV:
    def _adapter(self, tmp_path, nodes=None, edges=None, labels=None, **kwargs):
        nodes_path = _write(
            tmp_path / "nodes.csv", nodes or "id,label,f0\na,0,1.0\nb,1,2.0\n"
        )
        edges_path = _write(tmp_path / "edges.csv", edges or "src,dst\na,b\n")
        params = {"nodes": str(nodes_path), "edges": str(edges_path), **kwargs}
        if labels is not None:
            params["labels"] = str(_write(tmp_path / "labels.csv", labels))
        return CSVEdgeListAdapter(**params)

    def test_missing_id_column(self, tmp_path):
        adapter = self._adapter(tmp_path, nodes="uid,label,f0\na,0,1.0\n")
        with pytest.raises(AdapterError, match="missing id column"):
            adapter.ingest()

    def test_missing_feature_column(self, tmp_path):
        adapter = self._adapter(
            tmp_path, columns={"features": ["f0", "f9"]}
        )
        with pytest.raises(AdapterError, match="missing feature column"):
            adapter.ingest()

    def test_non_numeric_feature_value(self, tmp_path):
        adapter = self._adapter(tmp_path, nodes="id,label,f0\na,0,oops\n")
        with pytest.raises(AdapterError, match="not a number"):
            adapter.ingest()

    def test_bad_label_value(self, tmp_path):
        adapter = self._adapter(tmp_path, nodes="id,label,f0\na,7,1.0\n")
        with pytest.raises(AdapterError, match="label must be 0 or 1"):
            adapter.ingest()

    def test_duplicate_node_id(self, tmp_path):
        adapter = self._adapter(
            tmp_path, nodes="id,label,f0\na,0,1.0\na,1,2.0\n", edges="src,dst\n"
        )
        with pytest.raises(AdapterError, match="duplicate node id"):
            adapter.ingest()

    def test_dangling_edge_endpoint(self, tmp_path):
        adapter = self._adapter(tmp_path, edges="src,dst\na,ghost\n")
        with pytest.raises(AdapterError, match="dangling edge endpoint"):
            adapter.ingest()

    def test_duplicate_label_entry(self, tmp_path):
        adapter = self._adapter(
            tmp_path,
            nodes="id,f0\na,1.0\nb,2.0\n",
            labels="id,label\na,0\na,1\n",
        )
        with pytest.raises(AdapterError, match="duplicate label"):
            adapter.ingest()

    def test_missing_label_entry(self, tmp_path):
        adapter = self._adapter(
            tmp_path,
            nodes="id,f0\na,1.0\nb,2.0\n",
            labels="id,label\na,0\n",
        )
        with pytest.raises(AdapterError, match="no entry in labels file"):
            adapter.ingest()

    def test_no_label_source_at_all(self, tmp_path):
        adapter = self._adapter(tmp_path, nodes="id,f0\na,1.0\n")
        with pytest.raises(AdapterError, match="no label column"):
            adapter.ingest()

    def test_missing_file(self, tmp_path):
        adapter = CSVEdgeListAdapter(
            nodes=str(tmp_path / "absent.csv"), edges=str(tmp_path / "absent2.csv")
        )
        with pytest.raises(AdapterError, match="not found"):
            adapter.ingest()


class TestMalformedJSONL:
    def _adapter(self, tmp_path, nodes, edges='{"src": 1, "dst": 2}\n'):
        nodes_path = _write(tmp_path / "nodes.jsonl", nodes)
        edges_path = _write(tmp_path / "edges.jsonl", edges)
        return create_adapter(
            {"adapter": "jsonl", "nodes": str(nodes_path), "edges": str(edges_path)}
        )

    def test_invalid_json_line(self, tmp_path):
        adapter = self._adapter(tmp_path, "not json\n")
        with pytest.raises(AdapterError, match="invalid JSON"):
            adapter.ingest()

    def test_missing_field(self, tmp_path):
        adapter = self._adapter(tmp_path, '{"id": 1, "label": 0}\n')
        with pytest.raises(AdapterError, match="missing 'features'"):
            adapter.ingest()

    def test_inconsistent_feature_keys(self, tmp_path):
        adapter = self._adapter(
            tmp_path,
            '{"id": 1, "label": 0, "features": {"a": 1.0}}\n'
            '{"id": 2, "label": 1, "features": {"b": 1.0}}\n',
        )
        with pytest.raises(AdapterError, match="do not match"):
            adapter.ingest()

    def test_non_numeric_feature(self, tmp_path):
        adapter = self._adapter(
            tmp_path, '{"id": 1, "label": 0, "features": ["x"]}\n'
        )
        with pytest.raises(AdapterError, match="non-numeric"):
            adapter.ingest()


class TestMalformedFollower:
    def test_bad_edge_line(self, tmp_path):
        profiles = _write(
            tmp_path / "profiles.jsonl",
            '{"id": "a", "label": 0, "followers_count": 1}\n'
            '{"id": "b", "label": 1, "followers_count": 2}\n',
        )
        edges = _write(tmp_path / "following.txt", "a b c\n")
        adapter = create_adapter(
            {
                "adapter": "follower-export",
                "profiles": str(profiles),
                "relations": {"following": str(edges)},
            }
        )
        with pytest.raises(AdapterError, match="expected 'src dst'"):
            adapter.ingest()

    def test_negative_count_rejected(self, tmp_path):
        profiles = _write(
            tmp_path / "profiles.jsonl",
            '{"id": "a", "label": 0, "followers_count": -5}\n',
        )
        edges = _write(tmp_path / "f.txt", "")
        adapter = create_adapter(
            {
                "adapter": "follower-export",
                "profiles": str(profiles),
                "relations": {"following": str(edges)},
            }
        )
        with pytest.raises(AdapterError, match="negative"):
            adapter.ingest()


class TestDenseFastPath:
    """The vectorized dense-id edge path must reject like the dict path."""

    class _DenseAdapter(DatasetAdapter):
        name = "dense-test"

        def iter_node_chunks(self, chunk_size):
            yield NodeChunk(
                ids=[0, 1, 2], features=np.eye(3), labels=np.array([0, 1, 0])
            )

        def iter_edge_chunks(self, chunk_size):
            yield EdgeChunk(
                relation="r", src=np.array([0, 2]), dst=np.array([1, 5])
            )

    def test_out_of_range_dense_endpoint(self):
        with pytest.raises(AdapterError, match="dangling edge endpoint 5"):
            self._DenseAdapter().ingest()

    def test_dense_drop_dangling_counts(self):
        adapter = self._DenseAdapter(drop_dangling=True)
        graph = adapter.ingest()
        assert graph.metadata["dropped_edges"] == 1
        assert graph.relation("r").num_edges == 1


# ----------------------------------------------------------------------
# Synthetic generator semantics
# ----------------------------------------------------------------------


class TestSyntheticBotnet:
    def test_seed_determinism(self):
        a = SyntheticBotnetAdapter(num_users=200, seed=9).ingest()
        b = SyntheticBotnetAdapter(num_users=200, seed=9).ingest()
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_seed_sensitivity(self):
        a = SyntheticBotnetAdapter(num_users=200, seed=9).ingest()
        b = SyntheticBotnetAdapter(num_users=200, seed=10).ingest()
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_bot_ratio_controls_class_balance(self):
        graph = SyntheticBotnetAdapter(num_users=2000, bot_ratio=0.25, seed=1).ingest()
        ratio = float(graph.labels.mean())
        assert 0.2 < ratio < 0.3

    def test_homophily_orders_same_label_edge_fraction(self):
        def human_same_label_fraction(homophily):
            graph = SyntheticBotnetAdapter(
                num_users=1500, homophily=homophily, seed=3, num_relations=1
            ).ingest()
            relation = graph.relation(graph.relation_names[0])
            humans = graph.labels[relation.src] == 0
            same = graph.labels[relation.src] == graph.labels[relation.dst]
            return float(same[humans].mean())

        assert human_same_label_fraction(0.9) > human_same_label_fraction(0.3) + 0.2

    def test_burstiness_concentrates_human_activity(self):
        def human_peak_mass(burstiness):
            adapter = SyntheticBotnetAdapter(
                num_users=800, burstiness=burstiness, seed=4
            )
            graph = adapter.ingest()
            temporal = graph.features[:, adapter.feature_dim:]
            humans = graph.labels == 0
            return float(temporal[humans].max(axis=1).mean())

        assert human_peak_mass(0.95) > human_peak_mass(0.05) + 0.1

    def test_ground_truth_has_both_classes(self):
        graph = SyntheticBotnetAdapter(num_users=8, bot_ratio=0.01, seed=0).ingest()
        assert set(np.unique(graph.labels)) == {0, 1}

    def test_parameter_validation(self):
        with pytest.raises(AdapterError):
            SyntheticBotnetAdapter(num_users=2)
        with pytest.raises(AdapterError):
            SyntheticBotnetAdapter(bot_ratio=1.5)
        with pytest.raises(AdapterError):
            SyntheticBotnetAdapter(homophily=-0.1)


# ----------------------------------------------------------------------
# Spec loading + ingest cache
# ----------------------------------------------------------------------


class TestSpecs:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(AdapterError, match="unknown dataset spec key"):
            DatasetSpec.from_dict({"adapter": "synthetic", "bogus": 1})

    def test_json_spec_supported(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "adapter": "synthetic",
            "source": {"num_users": 30, "seed": 2},
            "test_sample": 10,
        }))
        result = ingest_spec(spec_path, use_cache=False)
        assert result.graph.num_nodes == 30

    def test_paths_resolve_relative_to_spec_file(self, tmp_path):
        shutil.copytree(FIXTURES / "csv", tmp_path / "csv")
        shutil.copy(FIXTURES / "csv.yaml", tmp_path / "csv.yaml")
        result = ingest_spec(tmp_path / "csv.yaml", use_cache=False)
        assert result.graph.num_nodes == 120

    def test_test_mode_requires_test_sample(self):
        spec = DatasetSpec.from_dict(
            {"adapter": "synthetic", "source": {"num_users": 30}}
        )
        with pytest.raises(AdapterError, match="test_sample"):
            ingest_spec(spec, test=True, use_cache=False)

    def test_spec_name_applied_to_graph(self):
        spec = load_dataset_spec(FIXTURES / "synthetic.yaml")
        assert ingest_spec(spec, use_cache=False).graph.name == "fixture-synthetic"

    def test_provenance_round_trip(self):
        spec = load_dataset_spec(FIXTURES / "synthetic.yaml")
        direct = ingest_spec(spec, use_cache=False)
        provenance = {"spec": spec.to_dict(), "test": False}
        rebuilt = resolve_dataset_graph(provenance)
        assert graph_fingerprint(rebuilt) == direct.fingerprint

    def test_benchmark_provenance_still_resolves(self):
        graph = resolve_dataset_graph(
            {"name": "mgtab", "num_users": 60, "tweets_per_user": 4, "seed": 0}
        )
        assert graph.num_nodes == 60


class TestIngestCache:
    def _spec(self, tmp_path):
        spec = load_dataset_spec(FIXTURES / "csv.yaml")
        spec.cache_dir = str(tmp_path / "cache")
        return spec

    def test_miss_then_hit_bit_identical(self, tmp_path):
        spec = self._spec(tmp_path)
        first = ingest_spec(spec)
        second = ingest_spec(spec)
        assert not first.cache_hit and second.cache_hit
        assert second.fingerprint == first.fingerprint
        assert graph_fingerprint(second.graph) == first.fingerprint

    def test_disk_hit_without_memo(self, tmp_path):
        spec = self._spec(tmp_path)
        first = ingest_spec(spec)
        adapter = spec.build_adapter()
        key = cache_key(adapter, {**spec.params, "test": False})
        cache = IngestCache(spec.cache_dir)  # fresh instance: empty memo
        entry = cache.load(key)
        assert entry is not None
        graph, fingerprint = entry
        assert fingerprint == first.fingerprint
        assert graph_fingerprint(graph) == first.fingerprint

    def test_source_change_invalidates(self, tmp_path):
        shutil.copytree(FIXTURES / "csv", tmp_path / "csv")
        shutil.copy(FIXTURES / "csv.yaml", tmp_path / "spec.yaml")
        spec = load_dataset_spec(tmp_path / "spec.yaml")
        spec.cache_dir = str(tmp_path / "cache")
        first = ingest_spec(spec)
        # Append one node: the content digest changes, so the old entry
        # must not be served.
        nodes = tmp_path / "csv" / "nodes.csv"
        labels = tmp_path / "csv" / "labels.csv"
        nodes.write_text(nodes.read_text() + "u999," + ",".join(["0.5"] * 8) + "\n")
        labels.write_text(labels.read_text() + "u999,1\n")
        second = ingest_spec(spec)
        assert not second.cache_hit
        assert second.graph.num_nodes == first.graph.num_nodes + 1
        assert second.fingerprint != first.fingerprint

    def test_param_change_invalidates(self, tmp_path):
        spec = self._spec(tmp_path)
        ingest_spec(spec)
        spec.split = {"train_fraction": 0.5, "val_fraction": 0.25, "seed": 3}
        assert not ingest_spec(spec).cache_hit

    def test_test_mode_keyed_separately(self, tmp_path):
        spec = self._spec(tmp_path)
        full = ingest_spec(spec)
        test = ingest_spec(spec, test=True)
        assert not test.cache_hit
        assert test.graph.num_nodes == spec.test_sample
        assert full.graph.num_nodes == 120

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        spec = self._spec(tmp_path)
        first = ingest_spec(spec)
        for entry in Path(spec.cache_dir).glob("ingest_*.npz"):
            entry.write_bytes(b"garbage")
        # Each ingest_spec call opens a fresh IngestCache (empty memo), so
        # the corrupted npz is actually read: it must miss and re-ingest.
        second = ingest_spec(spec)
        assert not second.cache_hit
        assert second.fingerprint == first.fingerprint


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestAdapterCLI:
    def test_ingest_json_fingerprint_deterministic(self, capsys):
        argv = ["ingest", str(FIXTURES / "synthetic.yaml"), "--no-cache", "--json"]
        assert cli.main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert cli.main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["fingerprint"] == second["fingerprint"]
        assert first["num_nodes"] == 400

    def test_ingest_test_mode_caps(self, capsys):
        argv = ["ingest", str(FIXTURES / "jsonl.yaml"), "--test", "--no-cache", "--json"]
        assert cli.main(argv) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["num_nodes"] == 80 and stats["test"] is True

    def test_ingest_bad_spec_fails_cleanly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"adapter": "csv", "source": {"nodes": "x", "edges": "y"}}))
        with pytest.raises(SystemExit, match="ingest failed"):
            cli.main(["ingest", str(bad)])

    def test_fit_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one data source"):
            cli.main(["fit", "--output", str(tmp_path / "a")])
        with pytest.raises(SystemExit, match="exactly one data source"):
            cli.main([
                "fit", "mgtab", "--dataset", str(FIXTURES / "csv.yaml"),
                "--output", str(tmp_path / "a"),
            ])

    @pytest.mark.slow
    def test_fit_score_round_trip_on_spec(self, tmp_path, capsys):
        artifact = str(tmp_path / "artifact")
        rc = cli.main(
            ["fit", "--dataset", str(FIXTURES / "synthetic.yaml"), "--test",
             "--output", artifact] + TINY_OVERRIDES
        )
        assert rc == 0
        capsys.readouterr()
        assert cli.main(["score", artifact, "--nodes", "0,1,2,3"]) == 0
        out = capsys.readouterr().out
        assert "4 nodes scored" in out
        # Score again through an explicit --dataset override of the same spec.
        assert cli.main([
            "score", artifact, "--nodes", "0,1", "--dataset",
            str(FIXTURES / "synthetic.yaml"),
        ]) == 0
