"""End-to-end tests for the BSG4Bot pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BSG4Bot, BSG4BotConfig
from tests.conftest import make_separable_graph


def fast_config(**overrides) -> BSG4BotConfig:
    base = BSG4BotConfig(
        pretrain_epochs=25,
        pretrain_hidden_dim=16,
        hidden_dim=16,
        subgraph_k=4,
        max_epochs=12,
        patience=4,
        batch_size=32,
        seed=0,
    )
    return base.with_overrides(**overrides)


@pytest.fixture(scope="module")
def fitted_detector():
    graph = make_separable_graph(num_nodes=100, num_relations=2, seed=5)
    detector = BSG4Bot(fast_config())
    history = detector.fit(graph)
    return graph, detector, history


class TestFitPredict:
    def test_learns_separable_graph(self, fitted_detector):
        graph, detector, history = fitted_detector
        metrics = detector.evaluate(graph)
        assert metrics["accuracy"] > 80.0
        assert metrics["f1"] > 75.0
        assert history.num_epochs >= 1

    def test_history_records_phases(self, fitted_detector):
        _, detector, history = fitted_detector
        phase_times = history.extra["phase_times"]
        assert phase_times["pretrain"] > 0
        assert phase_times["subgraph_construction"] > 0
        assert len(history.train_losses) == history.num_epochs

    def test_predict_proba_shape_and_rows(self, fitted_detector):
        graph, detector, _ = fitted_detector
        probabilities = detector.predict_proba(graph)
        assert probabilities.shape == (graph.num_nodes, 2)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(graph.num_nodes), atol=1e-8)

    def test_predict_labels_binary(self, fitted_detector):
        graph, detector, _ = fitted_detector
        predictions = detector.predict(graph)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_subgraph_store_reused_for_training_nodes(self, fitted_detector):
        graph, detector, _ = fitted_detector
        train_nodes = graph.train_indices()
        assert all(int(node) in detector.store for node in train_nodes)

    def test_relation_importance_sums_to_one(self, fitted_detector):
        graph, detector, _ = fitted_detector
        detector.predict_proba(graph)
        importance = detector.relation_importance()
        assert set(importance) == set(graph.relation_names)
        assert sum(importance.values()) == pytest.approx(1.0, abs=1e-6)

    def test_evaluate_on_custom_mask(self, fitted_detector):
        graph, detector, _ = fitted_detector
        mask = np.zeros(graph.num_nodes, dtype=bool)
        mask[:10] = True
        metrics = detector.evaluate(graph, mask=mask)
        assert set(metrics) == {"accuracy", "precision", "recall", "f1"}

    def test_predict_before_fit_raises(self):
        detector = BSG4Bot(fast_config())
        graph = make_separable_graph(num_nodes=30, seed=6)
        with pytest.raises(RuntimeError):
            detector.predict_proba(graph)


class TestConstructionEngine:
    def test_inference_construction_in_separate_bucket(self):
        """Inference-time top-ups must not inflate the training-phase
        runtime that Table III reports."""
        graph = make_separable_graph(num_nodes=80, num_relations=2, seed=12)
        detector = BSG4Bot(fast_config(max_epochs=4))
        detector.fit(graph)
        training_construction = detector.phase_times["subgraph_construction"]
        assert "inference_construction" not in detector.phase_times
        detector.predict_proba(graph)  # test nodes are missing from the store
        assert detector.phase_times["subgraph_construction"] == training_construction
        assert detector.phase_times["inference_construction"] > 0

    def test_builder_cached_per_graph(self):
        graph = make_separable_graph(num_nodes=80, num_relations=2, seed=12)
        detector = BSG4Bot(fast_config(max_epochs=4))
        detector.fit(graph)
        builder = detector.builder
        assert builder is not None
        detector.predict_proba(graph)
        assert detector.builder is builder  # same graph -> same builder
        unseen = make_separable_graph(num_nodes=50, num_relations=2, seed=13)
        detector.predict_proba(unseen)
        assert detector.builder is not builder  # new graph -> fresh builder
        assert detector.builder.graph is unseen

    def test_store_cache_reused_across_fits(self, tmp_path, monkeypatch):
        graph = make_separable_graph(num_nodes=70, num_relations=2, seed=14)
        config = fast_config(max_epochs=3, store_cache_dir=str(tmp_path))

        first = BSG4Bot(config)
        first.fit(graph)
        cache_files = list(tmp_path.glob("store-*.npz"))
        assert len(cache_files) == 1

        # A second fit with the same seed produces identical embeddings, so
        # the store must come from the cache without building anything.
        from repro.sampling import BiasedSubgraphBuilder

        def fail_build(self, nodes):
            raise AssertionError("store should have been loaded from cache")

        monkeypatch.setattr(BiasedSubgraphBuilder, "build_batch", fail_build)
        second = BSG4Bot(config)
        second.fit(graph)
        assert sorted(second.store.nodes()) == sorted(first.store.nodes())

    def test_corrupt_store_cache_is_rebuilt(self, tmp_path):
        graph = make_separable_graph(num_nodes=60, num_relations=2, seed=16)
        config = fast_config(max_epochs=3, store_cache_dir=str(tmp_path))
        first = BSG4Bot(config)
        first.fit(graph)
        cache_file = next(tmp_path.glob("store-*.npz"))
        cache_file.write_bytes(b"not a zip archive")
        second = BSG4Bot(config)
        second.fit(graph)  # must rebuild instead of crashing
        assert sorted(second.store.nodes()) == sorted(first.store.nodes())
        # The rebuilt store overwrote the corrupt entry with a loadable one.
        from repro.sampling import SubgraphStore

        restored = SubgraphStore.load(cache_file, graph)
        assert sorted(restored.nodes()) == sorted(first.store.nodes())

    def test_parallel_construction_matches_serial(self):
        graph = make_separable_graph(num_nodes=60, num_relations=2, seed=15)
        serial = BSG4Bot(fast_config(max_epochs=3))
        serial.fit(graph)
        parallel = BSG4Bot(fast_config(max_epochs=3, subgraph_workers=2))
        parallel.fit(graph)
        assert sorted(serial.store.nodes()) == sorted(parallel.store.nodes())
        for node in serial.store.nodes():
            np.testing.assert_array_equal(
                serial.store.get(node).nodes, parallel.store.get(node).nodes
            )


class TestTransferAndAblations:
    def test_transfer_to_unseen_graph(self, fitted_detector):
        _, detector, _ = fitted_detector
        unseen = make_separable_graph(num_nodes=60, num_relations=2, seed=9)
        predictions = detector.predict(unseen)
        assert predictions.shape == (60,)
        accuracy = np.mean(predictions == unseen.labels)
        assert accuracy > 0.6  # transfers the separable decision boundary

    def test_ppr_only_variant_runs(self):
        graph = make_separable_graph(num_nodes=60, seed=7)
        detector = BSG4Bot(fast_config(use_biased_subgraphs=False, max_epochs=5))
        detector.fit(graph)
        assert detector.evaluate(graph)["accuracy"] > 50.0

    def test_mean_pooling_variant_runs(self):
        graph = make_separable_graph(num_nodes=60, seed=7)
        detector = BSG4Bot(fast_config(use_semantic_attention=False, max_epochs=5))
        detector.fit(graph)
        assert detector.model.last_relation_weights is not None

    def test_no_concat_variant_runs(self):
        graph = make_separable_graph(num_nodes=60, seed=7)
        detector = BSG4Bot(fast_config(use_intermediate_concat=False, max_epochs=5))
        detector.fit(graph)
        assert detector.model.final_dim == detector.config.hidden_dim

    def test_invalid_config_rejected_at_construction(self):
        with pytest.raises(ValueError):
            BSG4Bot(BSG4BotConfig(subgraph_k=-1))
