"""Tests for the experiment formatters using hand-built result dictionaries.

The formatters are what the benchmark harness prints, so they must cope with
exactly the dictionaries ``run()`` produces (including missing entries) and
render every row the paper's artifact contains.
"""

from __future__ import annotations

from repro.experiments import fig7, fig8, fig9, fig10, table2, table3, table4, table5


def _metrics(acc: float, f1: float) -> dict:
    return {"accuracy": acc, "f1": f1, "precision": f1, "recall": f1}


class TestTableFormatters:
    def test_table2_formatter_includes_all_models_and_benchmarks(self):
        result = {
            "mlp": {"mgtab": {"accuracy_mean": 84.0, "accuracy_std": 0.5, "f1_mean": 83.0, "f1_std": 0.4}},
            "bsg4bot": {"mgtab": {"accuracy_mean": 90.0, "accuracy_std": 0.3, "f1_mean": 89.0, "f1_std": 0.2}},
        }
        text = table2.format_result(result)
        assert "mlp" in text and "bsg4bot" in text
        assert "90.00(0.3)" in text

    def test_table2_formatter_handles_missing_benchmark(self):
        result = {
            "botmoe": {"twibot-20": {"accuracy_mean": 85.0, "accuracy_std": 1.0, "f1_mean": 86.0, "f1_std": 1.0}},
            "rgt": {"mgtab": {"accuracy_mean": 88.0, "accuracy_std": 1.0, "f1_mean": 87.0, "f1_std": 1.0}},
        }
        text = table2.format_result(result)
        assert "-" in text  # the model x benchmark cell that was not run

    def test_table3_formatter_rows(self):
        result = {
            "gcn": {"time_per_epoch": 1.2, "epochs": 30, "total_time": 36.0, "f1": 70.0, "accuracy": 80.0},
            "bsg4bot": {"time_per_epoch": 1.5, "epochs": 12, "total_time": 18.0, "f1": 75.0, "accuracy": 85.0},
        }
        text = table3.format_result(result)
        assert "time/epoch (s)" in text
        assert "bsg4bot" in text and "12" in text

    def test_table4_formatter_rows(self):
        result = {
            "mgtab": {
                "gcn": _metrics(80.0, 70.0),
                "subgraphs+gcn": _metrics(83.0, 74.0),
                "bsg4bot": _metrics(88.0, 80.0),
            }
        }
        text = table4.format_result(result)
        assert "subgraphs+gcn" in text
        assert "88.00" in text

    def test_table5_formatter_rows(self):
        result = {
            "mgtab": {
                "full": _metrics(90.0, 85.0),
                "mean_pooling": _metrics(88.0, 82.0),
            }
        }
        text = table5.format_result(result)
        assert "full" in text and "mean_pooling" in text


class TestFigureFormatters:
    def test_fig7_formatter_has_fraction_columns(self):
        result = {
            "bsg4bot": {0.1: {"f1": 80.0}, 1.0: {"f1": 88.0}},
            "gcn": {0.1: {"f1": 60.0}, 1.0: {"f1": 75.0}},
        }
        text = fig7.format_result(result)
        assert "10%" in text and "100%" in text
        assert "bsg4bot" in text

    def test_fig8_formatter_groups(self):
        result = {
            "k": 8,
            "num_sampled_nodes": 100,
            "all": {"original": 0.6, "biased_subgraph": 0.65},
            "bot": {"original": 0.12, "biased_subgraph": 0.18},
            "human": {"original": 0.97, "biased_subgraph": 0.97},
        }
        text = fig8.format_result(result)
        assert "bot" in text and "human" in text and "0.180" in text

    def test_fig9_formatter_matrix_and_average(self):
        result = {
            "communities": [0, 1],
            "bsg4bot": {"matrix": [[90.0, 80.0], [78.0, 91.0]], "average": 84.75, "unseen_average": 79.0},
        }
        text = fig9.format_result(result)
        assert "84.75" in text
        assert "unseen" in text

    def test_fig10_formatter_sorted_by_k(self):
        result = {"mgtab": {8: _metrics(85.0, 78.0), 2: _metrics(80.0, 70.0)}}
        text = fig10.format_result(result)
        lines = [line for line in text.splitlines() if line.strip().startswith(("2", "8"))]
        assert lines[0].strip().startswith("2")
