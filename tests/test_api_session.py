"""Tests for ``repro.api.DetectionSession``: serve-many scoring and
incremental invalidation after graph updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.core import BSG4Bot, BSG4BotConfig
from repro.sampling import biased
from tests.conftest import make_separable_graph


def _fit_detector(graph, **config_overrides):
    config = BSG4BotConfig(
        pretrain_epochs=10, hidden_dim=8, pretrain_hidden_dim=8,
        subgraph_k=3, max_epochs=3, min_epochs=1, patience=2, batch_size=16,
    ).with_overrides(**config_overrides)
    detector = BSG4Bot(config)
    detector.fit(graph)
    return detector


@pytest.fixture()
def served():
    """A fresh fitted detector + graph per test (sessions mutate state)."""
    graph = make_separable_graph(num_nodes=60, seed=33)
    return _fit_detector(graph), graph


class TestScoreNodes:
    def test_rows_follow_requested_order(self, served):
        detector, graph = served
        nodes = [11, 3, 27, 5]
        expected = detector.predict_proba_nodes(np.asarray(nodes))
        with api.DetectionSession(detector, graph) as session:
            scores = session.score_nodes(nodes)
            np.testing.assert_array_equal(scores, expected)
            # Request order permutes rows, nothing else (one canonical batch).
            np.testing.assert_array_equal(
                session.score_nodes(nodes[::-1]), scores[::-1]
            )
        # Agreement with the full-graph sweep is approximate only: semantic
        # attention weights depend on batch composition.
        np.testing.assert_allclose(scores, detector.predict_proba(graph)[nodes], atol=0.05)

    def test_only_missing_centers_are_built(self, served):
        detector, graph = served
        session = api.DetectionSession(detector, graph)
        stored = set(detector.store.nodes())
        missing = [n for n in range(graph.num_nodes) if n not in stored][:4]
        known = list(stored)[:6]
        before = session.build_count
        session.score_nodes(known + missing)
        assert session.build_count - before == len(missing)
        # A repeated request builds nothing at all.
        before = session.build_count
        session.score_nodes(known + missing)
        assert session.build_count == before
        session.close()

    def test_empty_request(self, served):
        detector, graph = served
        with api.DetectionSession(detector, graph) as session:
            assert session.score_nodes([]).shape == (0, 2)

    def test_out_of_range_node_rejected(self, served):
        detector, graph = served
        with api.DetectionSession(detector, graph) as session:
            with pytest.raises(ValueError, match="out of range"):
                session.score_nodes([graph.num_nodes + 5])

    def test_predict_nodes_returns_labels(self, served):
        detector, graph = served
        with api.DetectionSession(detector, graph) as session:
            labels = session.predict_nodes([0, 1, 2])
        assert set(np.unique(labels)) <= {0, 1}

    def test_full_graph_baseline_fallback(self, served):
        _, graph = served
        baseline = api.create_detector(
            {"name": "mlp", "scale": None,
             "overrides": {"hidden_dim": 8, "max_epochs": 5, "patience": 2}}
        )
        baseline.fit(graph)
        expected = baseline.predict_proba(graph)
        calls = []
        original = baseline.predict_proba
        baseline.predict_proba = lambda g: calls.append(1) or original(g)
        with api.DetectionSession(baseline, graph) as session:
            probabilities = session.score_nodes([4, 9])
            session.score_nodes([7])  # served from the cached matrix
            assert len(calls) == 1
            # A real mutation drops the cache; the next call recomputes.
            session.update_graph(nodes_changed=[0])
            session.score_nodes([7])
            assert len(calls) == 2
        np.testing.assert_array_equal(probabilities, expected[[4, 9]])


class TestUpdateGraph:
    def test_untouched_entries_survive_update(self, served):
        """The acceptance check: after ``update_graph``, scoring a 10-node
        subset rebuilds only the subgraphs a touched node belongs to."""
        detector, graph = served
        session = api.DetectionSession(detector, graph)
        subset = list(detector.store.nodes())[:10]
        session.score_nodes(subset)  # everything cached now

        src, dst = subset[0], subset[1]
        affected = set(
            detector.store.affected_centers([src, dst]).tolist()
        )
        untouched = [c for c in subset if c not in affected]
        untouched_subgraphs = {c: detector.store.get(c) for c in untouched}

        relation = graph.relation_names[0]
        invalidated = session.update_graph(edges_added={relation: ([src], [dst])})
        assert invalidated == len(affected)
        assert 0 < invalidated < len(detector.store.nodes()) + len(affected)

        before = session.build_count
        session.score_nodes(subset)
        rebuilt = session.build_count - before
        assert rebuilt == len(affected & set(subset))
        assert rebuilt < len(subset)
        # Untouched centers still serve the very same Subgraph objects.
        for center, subgraph in untouched_subgraphs.items():
            assert detector.store.get(center) is subgraph
        session.close()

    def test_new_edge_lands_in_rebuilt_subgraph_candidates(self, served):
        detector, graph = served
        session = api.DetectionSession(detector, graph)
        relation = graph.relation_names[0]
        edges_before = graph.relation(relation).num_edges
        session.update_graph(edges_added={relation: ([0, 1], [2, 3])})
        assert graph.relation(relation).num_edges == edges_before + 2
        session.close()

    def test_feature_update_invalidates_containing_subgraphs(self, served):
        detector, graph = served
        session = api.DetectionSession(detector, graph)
        node = detector.store.nodes()[0]
        graph.features[node] += 0.5
        invalidated = session.update_graph(nodes_changed=[node])
        assert invalidated >= 1
        assert node not in detector.store
        session.close()

    def test_plugin_detector_rebuilds_against_mutated_graph(self):
        graph = make_separable_graph(num_nodes=50, seed=44)
        plugin = api.create_detector(
            {"name": "plugin-gcn", "scale": None,
             "overrides": {"pretrain_epochs": 8, "hidden_dim": 8,
                           "pretrain_hidden_dim": 8, "subgraph_k": 3,
                           "max_epochs": 2, "min_epochs": 1, "patience": 2,
                           "batch_size": 16}}
        )
        plugin.fit(graph)
        session = api.DetectionSession(plugin, graph)
        relation = graph.relation_names[0]
        old_builder = plugin._get_builder()
        symmetric = old_builder._relation_adjacency[relation]
        centers = plugin.store.nodes()
        src, dst = next(
            (a, b)
            for a in centers
            for b in centers
            if a != b and symmetric[a, b] == 0
        )
        untouched = [r for r in graph.relation_names if r != relation]
        untouched_counts = {
            r: old_builder.symmetrization_counts[r] for r in untouched
        }
        invalidated = session.update_graph(edges_added={relation: ([src], [dst])})
        assert invalidated >= 1
        # Rebuilding reuses the cached builder with just the mutated
        # relation re-symmetrized — it sees the new edge (symmetrized, so
        # exactly two new nonzeros for one directed edge) while the other
        # relations keep their adjacencies untouched.
        session.score_nodes([src, dst])
        new_builder = plugin._get_builder()
        assert new_builder is old_builder
        assert new_builder._relation_adjacency[relation].nnz == symmetric.nnz + 2
        for r in untouched:
            assert new_builder.symmetrization_counts[r] == untouched_counts[r]
        session.close()

    def test_noop_update(self, served):
        detector, graph = served
        with api.DetectionSession(detector, graph) as session:
            assert session.update_graph() == 0

    def test_unknown_relation_rejected(self, served):
        detector, graph = served
        with api.DetectionSession(detector, graph) as session:
            with pytest.raises(KeyError, match="unknown relation"):
                session.update_graph(edges_added={"nope": ([0], [1])})

    def test_update_is_atomic_across_relations(self, served):
        detector, graph = served
        relation = graph.relation_names[0]
        edges_before = graph.relation(relation).num_edges
        store_size = len(detector.store)
        with api.DetectionSession(detector, graph) as session:
            with pytest.raises(KeyError, match="unknown relation"):
                session.update_graph(
                    edges_added={relation: ([0], [1]), "bogus": ([2], [3])}
                )
            with pytest.raises(ValueError, match="out of range"):
                session.update_graph(
                    edges_added={relation: ([0], [graph.num_nodes + 1])}
                )
        # The valid first entry must not have been applied or invalidated.
        assert graph.relation(relation).num_edges == edges_before
        assert len(detector.store) == store_size

    def test_empty_update_keeps_builder_cache(self, served):
        detector, graph = served
        builder = detector.builder
        assert builder is not None
        relation = graph.relation_names[0]
        with api.DetectionSession(detector, graph) as session:
            assert session.update_graph(nodes_changed=[]) == 0
            assert session.update_graph(edges_added={relation: ([], [])}) == 0
        assert detector.builder is builder

    def test_untouched_relations_not_resymmetrized(self, served):
        """The per-relation refresh: an edge stream into one relation must
        not re-symmetrize the others (counted by the builder), and the
        builder itself survives the update."""
        detector, graph = served
        builder = detector.builder
        assert builder is not None
        touched, untouched = graph.relation_names[0], graph.relation_names[1]
        counts_before = dict(builder.symmetrization_counts)
        operators_before = dict(builder._push_operators)
        session = api.DetectionSession(detector, graph)
        session.update_graph(edges_added={touched: ([0, 1], [2, 3])})
        assert detector.builder is builder
        assert builder.symmetrization_counts[touched] == counts_before[touched] + 1
        assert builder.symmetrization_counts[untouched] == counts_before[untouched]
        # The untouched relation even keeps its prepared push operator.
        if untouched in operators_before:
            assert builder._push_operators[untouched] is operators_before[untouched]
        assert touched not in builder._push_operators
        # ... and the refreshed adjacency actually contains the new edges.
        assert builder._relation_adjacency[touched][0, 2] == 1.0
        session.close()

    def test_apply_delta_validates_before_mutating(self, served):
        """apply_delta is atomic like update_graph: a bad entry anywhere in
        the delta leaves the graph (features included) untouched."""
        detector, graph = served
        node = int(detector.store.nodes()[0])
        before = graph.features[node].copy()
        store_size = len(detector.store)
        with api.DetectionSession(detector, graph) as session:
            with pytest.raises(KeyError, match="unknown relation"):
                session.apply_delta(
                    edges_added={"bogus": ([0], [1])},
                    features_changed={node: before + 1.0},
                )
            with pytest.raises(ValueError, match="width"):
                session.apply_delta(
                    features_changed={node: np.zeros(graph.num_features + 1)}
                )
            with pytest.raises(ValueError, match="out of range"):
                session.apply_delta(
                    features_changed={graph.num_nodes: before}
                )
        np.testing.assert_array_equal(graph.features[node], before)
        assert len(detector.store) == store_size

    def test_feature_update_patches_embedding_rows(self, served):
        detector, graph = served
        builder = detector.builder
        node = int(detector.store.nodes()[0])
        before = builder.node_embeddings.copy()
        session = api.DetectionSession(detector, graph)
        graph.features[node] += 1.0
        session.update_graph(nodes_changed=[node])
        assert detector.builder is builder  # refreshed in place, not reset
        expected = detector.preclassifier.hidden_representations(
            graph.features[np.asarray([node])]
        )
        np.testing.assert_array_equal(builder.node_embeddings[node], expected[0])
        unchanged = np.ones(graph.num_nodes, dtype=bool)
        unchanged[node] = False
        np.testing.assert_array_equal(
            builder.node_embeddings[unchanged], before[unchanged]
        )
        session.close()


class TestLifecycle:
    def test_context_manager_closes(self, served):
        detector, graph = served
        with api.DetectionSession(detector, graph) as session:
            session.score_nodes([0])
        with pytest.raises(RuntimeError, match="closed"):
            session.score_nodes([0])

    def test_close_is_idempotent_and_releases_pool(self, served):
        detector, graph = served
        session = api.DetectionSession(detector, graph)
        biased.shared_process_pool(1)  # ensure a pool exists
        session.close()
        session.close()
        assert biased._shared_pool is None

    def test_double_close_unlinks_segments_after_worker_death(self, served):
        """The leak guard: shared-memory segments must be unlinked by
        ``close()`` even when pool workers died mid-build, and a second
        ``close()`` must be a clean no-op."""
        import os
        import signal
        from multiprocessing import shared_memory

        detector, graph = served
        session = api.DetectionSession(detector, graph)
        builder = detector.builder
        # Force a pooled build so a payload and worker pool exist.
        missing = [n for n in range(graph.num_nodes) if n not in detector.store][:8]
        builder.build_store(missing, store=detector.store, workers=2)
        payload = builder.share_memory()
        names = [payload.embeddings.name] + [
            shared.indptr.name for shared in payload.sym.values()
        ]
        assert payload.token in biased._shared_payload_registry
        # Kill the workers mid-lifecycle (simulates a crashed build).
        pool = biased._shared_pool
        assert pool is not None
        for process in list(pool._processes.values()):
            os.kill(process.pid, signal.SIGKILL)
        session.close()
        session.close()  # idempotent
        assert biased._shared_pool is None
        assert not biased._shared_payload_registry
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_requires_fitted_detector(self, served):
        _, graph = served
        with pytest.raises(RuntimeError, match="fitted"):
            api.DetectionSession(BSG4Bot(), graph)

    def test_loaded_artifact_serves_in_session(self, served, tmp_path):
        detector, graph = served
        nodes = np.asarray([1, 2, 3])
        expected = detector.predict_proba_nodes(nodes)
        path = api.save_detector(detector, tmp_path / "artifact")
        loaded = api.load_detector(path, graph=graph)
        with api.DetectionSession(loaded, graph) as session:
            np.testing.assert_array_equal(session.score_nodes(nodes), expected)

    def test_shutdown_hook_registered_on_import(self):
        # The shared pool must not rely on sessions alone: importing the
        # module registers an atexit hook as a safety net.  (Checked via the
        # module source — reloading the module to intercept atexit.register
        # would break pickling of its classes for the process-pool path, and
        # CPython's atexit registry cannot be enumerated.)
        import inspect

        source = inspect.getsource(biased)
        assert "atexit.register(shutdown_shared_pool)" in source
