"""Regenerate the adapter fixtures in this directory, deterministically.

Run from anywhere::

    python tests/fixtures/adapters/make_fixtures.py

Each fixture set is a miniature external dataset for one adapter in the CI
``dataset-matrix`` job: big enough to fit + score the tiny detector
configuration, small enough to commit.  Bot features get a mean shift so
training has signal.  Every byte is a pure function of the seeds below —
rerunning must produce identical files.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

HERE = Path(__file__).resolve().parent


def _label_features(rng: np.random.Generator, labels: np.ndarray, dim: int) -> np.ndarray:
    features = rng.standard_normal((labels.shape[0], dim))
    features[labels == 1] += 1.2
    return np.round(features, 4)


def _edges(
    rng: np.random.Generator, labels: np.ndarray, count: int
) -> tuple[np.ndarray, np.ndarray]:
    n = labels.shape[0]
    src = rng.integers(0, n, size=count)
    # Humans prefer humans; bots attach mostly to humans (Figure 1 shape).
    humans = np.flatnonzero(labels == 0)
    dst = rng.integers(0, n, size=count)
    toward_humans = rng.random(count) < np.where(labels[src] == 1, 0.8, 0.7)
    dst[toward_humans] = humans[rng.integers(0, humans.shape[0], size=int(toward_humans.sum()))]
    keep = src != dst
    return src[keep], dst[keep]


def make_csv() -> None:
    rng = np.random.default_rng(1001)
    out = HERE / "csv"
    out.mkdir(exist_ok=True)
    n = 120
    labels = (rng.random(n) < 0.35).astype(int)
    features = _label_features(rng, labels, 8)
    ids = [f"u{i:03d}" for i in range(n)]
    with (out / "nodes.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user_id"] + [f"f{j}" for j in range(8)])
        for i in range(n):
            writer.writerow([ids[i]] + [f"{v}" for v in features[i]])
    with (out / "labels.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["user_id", "is_bot"])
        for i in range(n):
            writer.writerow([ids[i], labels[i]])
    with (out / "edges.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["source", "target", "kind"])
        for kind in ("following", "mention"):
            src, dst = _edges(rng, labels, 420)
            for s, d in zip(src, dst):
                writer.writerow([ids[s], ids[d], kind])


def make_jsonl() -> None:
    rng = np.random.default_rng(2002)
    out = HERE / "jsonl"
    out.mkdir(exist_ok=True)
    n = 100
    labels = (rng.random(n) < 0.3).astype(int)
    features = _label_features(rng, labels, 6)
    keys = [f"x{j}" for j in range(6)]
    with (out / "nodes.jsonl").open("w") as handle:
        for i in range(n):
            record = {
                "id": int(i),
                "label": int(labels[i]),
                "features": {k: float(features[i, j]) for j, k in enumerate(keys)},
            }
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    with (out / "edges.jsonl").open("w") as handle:
        for relation in ("follows", "replies"):
            src, dst = _edges(rng, labels, 360)
            for s, d in zip(src, dst):
                handle.write(
                    json.dumps(
                        {"src": int(s), "dst": int(d), "relation": relation},
                        sort_keys=True,
                    )
                    + "\n"
                )


def make_follower() -> None:
    rng = np.random.default_rng(3003)
    out = HERE / "follower"
    out.mkdir(exist_ok=True)
    n = 90
    labels = (rng.random(n) < 0.35).astype(int)
    ids = [f"acct_{i}" for i in range(n)]
    with (out / "profiles.jsonl").open("w") as handle:
        for i in range(n):
            bot = labels[i] == 1
            record = {
                "id": ids[i],
                "label": int(labels[i]),
                # Bots: young accounts, high status rate, few followers.
                "followers_count": int(rng.poisson(12 if bot else 180)),
                "friends_count": int(rng.poisson(900 if bot else 220)),
                "statuses_count": int(rng.poisson(4000 if bot else 1500)),
                "favourites_count": int(rng.poisson(30 if bot else 600)),
                "listed_count": int(rng.poisson(0 if bot else 4)),
                "account_age_days": int(rng.integers(5, 120) if bot else rng.integers(300, 3000)),
                "verified": bool((not bot) and rng.random() < 0.1),
                "default_profile_image": bool(bot and rng.random() < 0.6),
                "has_url": bool(rng.random() < (0.1 if bot else 0.5)),
                "has_location": bool(rng.random() < (0.2 if bot else 0.7)),
            }
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    for filename in ("following.txt", "followers.txt"):
        src, dst = _edges(rng, labels, 300)
        with (out / filename).open("w") as handle:
            handle.write("# src dst\n")
            for s, d in zip(src, dst):
                handle.write(f"{ids[s]} {ids[d]}\n")


if __name__ == "__main__":
    make_csv()
    make_jsonl()
    make_follower()
    print(f"fixtures regenerated under {HERE}")
