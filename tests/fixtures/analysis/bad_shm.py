"""Known-bad shm lifecycle: created/attached segments with no release path."""

from multiprocessing.shared_memory import SharedMemory

from repro.graph.adjacency import SharedArray


def leak_local(array):
    # BAD: created into a local that never escapes and is never released.
    shared = SharedArray.create(array)
    return array.nbytes


def leak_dropped(size):
    # BAD: created and immediately dropped — nothing can ever release it.
    SharedMemory(create=True, size=size)


class Holder:
    def __init__(self, handle):
        # BAD: attached into an attribute no cleanup-named method touches.
        self._view = handle.attach()

    def rows(self):
        return self._view.shape[0]
