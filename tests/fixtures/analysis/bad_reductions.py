"""Known-bad order-sensitive reductions.  # repro-lint: order-sensitive

Axis reductions over slices/transposes without pinning the memory layout —
the PR 4 bit-identity bug class, opted in via the module pragma above.
"""

import numpy as np


def sliced_sum(matrix, mask):
    # BAD: axis sum over a slice — memory order depends on the producer.
    return matrix[:, mask].sum(axis=1)


def transposed_sum(matrix):
    # BAD: same reduction through the np.sum spelling on a transpose.
    return np.sum(matrix.T, axis=0)


def reduced_view(matrix, shape):
    # BAD: np.add.reduce over a reshape view.
    return np.add.reduce(matrix.reshape(shape), axis=1)
