"""Clean twin of bad_oracle: the fake tests corpus names both halves.

The test harness supplies a corpus mentioning ``fast_sum`` and
``reference_sum`` together, satisfying the contract.
"""


def fast_sum(values):  # oracle: reference_sum
    return sum(values)
