"""Known-bad lock discipline: guarded attributes touched without the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.RLock()
        self._items = []  # guarded-by: _lock
        self._total = 0  # guarded-by: _lock

    def add(self, value):
        # BAD: guarded attributes mutated with no lock held.
        self._items.append(value)
        self._total += value

    def snapshot(self):
        with self._lock:
            items = list(self._items)
        # BAD: second read happens after the lock was released.
        return items, self._total

    def _drain_locked(self):
        return self._items

    def flush(self):
        # BAD: lock-held method called without holding the class lock.
        return self._drain_locked()
