"""Clean twin of bad_reductions.  # repro-lint: order-sensitive

Every reduction either pins its operand's layout or reduces a plain name
whose order is not producer-dependent.
"""

import numpy as np


def sliced_sum(matrix, mask):
    # Pinned: the layout is forced before reducing.
    return np.ascontiguousarray(matrix[:, mask]).sum(axis=1)


def transposed_sum(matrix):
    return np.sum(np.asfortranarray(matrix.T), axis=0)


def plain_sum(matrix):
    # A bare name is not lexically order-sensitive.
    return matrix.sum(axis=1)


def no_axis(matrix, mask):
    # Full reductions are order-fixed by pairwise summation over a flat
    # iteration; only axis= reductions are in scope.
    return matrix[:, mask].sum()
