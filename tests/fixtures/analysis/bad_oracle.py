"""Known-bad oracle coverage: a declared fast path with no pairing test.

The test harness supplies a fake tests corpus that never mentions
``missing_reference`` — so the annotation below must be flagged.
"""


def fast_mul(matrix, vector):  # oracle: missing_reference
    return matrix @ vector
