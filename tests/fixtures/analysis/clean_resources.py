"""Clean twin of bad_resources: every thread/pool reaches a join path."""

import threading
from concurrent.futures import ThreadPoolExecutor

_pool = None


def warm_pool():
    global _pool
    _pool = ThreadPoolExecutor(max_workers=2)
    return _pool is not None


def shutdown_pool():
    global _pool
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None


def scoped_map(func, items):
    # With-managed: the executor shuts itself down on exit.
    with ThreadPoolExecutor(max_workers=2) as pool:
        return list(pool.map(func, items))


def fan_out(target, n):
    # The iteration rule: elements are handed to the loop body for joining.
    threads = [threading.Thread(target=target) for _ in range(n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class Worker:
    def __init__(self, target):
        self._thread = threading.Thread(target=target, daemon=True)
        self._thread.start()

    def close(self):
        self._thread.join(timeout=1.0)
