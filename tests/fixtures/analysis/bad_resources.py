"""Known-bad resource joins: threads/pools with no shutdown path."""

import threading
from concurrent.futures import ThreadPoolExecutor

_pool = None


def warm_pool():
    # BAD: module global pool with no shutdown() call anywhere.
    global _pool
    _pool = ThreadPoolExecutor(max_workers=2)
    return _pool is not None


class Worker:
    def __init__(self, target):
        # BAD: thread stored on self with no join() anywhere in the module.
        self._thread = threading.Thread(target=target, daemon=True)
        self._thread.start()

    def running(self):
        return self._thread.is_alive()
