"""Clean twin of bad_locks: every guarded access is under the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.RLock()
        self._items = []  # guarded-by: _lock
        self._total = 0  # guarded-by: _lock

    def add(self, value):
        with self._lock:
            self._items.append(value)
            self._total += value

    def snapshot(self):
        with self._lock:
            return list(self._items), self._total

    def _drain_locked(self):
        return self._items

    def flush(self):
        with self._lock:
            return self._drain_locked()

    def describe(self):
        """Caller holds ``_lock`` — documented lock-held access is legal."""
        return len(self._items)
