"""Clean twin of bad_shm: every segment has an ownership or release path."""

from contextlib import closing
from multiprocessing.shared_memory import SharedMemory

from repro.graph.adjacency import SharedArray


def transfer_ownership(array):
    # Returned: the caller owns the release.
    return SharedArray.create(array)


def scoped_segment(size):
    # With-managed: the context manager is the release path.
    with closing(SharedMemory(create=True, size=size)) as segment:
        return segment.size


def release_in_place(array):
    shared = SharedArray.create(array)
    shared.unlink()


class Holder:
    def __init__(self, handle):
        self._handle = handle
        self._view = handle.attach()

    def rows(self):
        return self._view.shape[0]

    def close(self):
        self._view.close()
        self._view = None
