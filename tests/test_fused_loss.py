"""Property tests: ``fused_cross_entropy`` is bit-identical to the composed
``cross_entropy(...) + l2_penalty(...)`` expression — same forward value and
the same gradient, exactly, for the logits and every parameter.

Exact ``np.array_equal`` comparisons, no tolerances: the fused loss exists
so the trainer can swap it in without perturbing a single ULP of training.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, cross_entropy, fused_cross_entropy, l2_penalty

LOGIT_SHAPES = st.tuples(st.integers(1, 7), st.integers(2, 5))


def _logits_and_labels(shape):
    rows, classes = shape
    logits = st.lists(
        st.lists(
            st.floats(-30.0, 30.0, allow_nan=False), min_size=classes, max_size=classes
        ),
        min_size=rows,
        max_size=rows,
    ).map(np.array)
    labels = st.lists(
        st.integers(0, classes - 1), min_size=rows, max_size=rows
    ).map(lambda values: np.array(values, dtype=np.int64))
    weight = st.one_of(
        st.none(),
        st.lists(
            st.floats(0.05, 5.0, allow_nan=False), min_size=classes, max_size=classes
        ).map(np.array),
    )
    return st.tuples(logits, labels, weight)


def _parameters(seed, count):
    rng = np.random.default_rng(seed)
    shapes = [(2, 3), (4,), (1, 5)][:count]
    return [
        Tensor(rng.normal(size=shape), requires_grad=True) for shape in shapes
    ]


def _composed(logits_values, labels, weight, parameters, weight_decay):
    logits = Tensor(logits_values, requires_grad=True)
    loss = cross_entropy(logits, labels, weight=weight)
    if parameters:
        loss = loss + l2_penalty(parameters, weight_decay)
    loss.backward()
    return loss, logits


def _fused(logits_values, labels, weight, parameters, weight_decay):
    logits = Tensor(logits_values, requires_grad=True)
    loss = fused_cross_entropy(
        logits, labels, weight=weight, parameters=parameters, weight_decay=weight_decay
    )
    loss.backward()
    return loss, logits


class TestFusedMatchesComposed:
    @given(LOGIT_SHAPES.flatmap(_logits_and_labels))
    @settings(max_examples=60, deadline=None)
    def test_value_and_logit_grad_without_l2(self, drawn):
        logits_values, labels, weight = drawn
        composed_loss, composed_logits = _composed(
            logits_values, labels, weight, [], 0.0
        )
        fused_loss, fused_logits = _fused(logits_values, labels, weight, [], 0.0)
        assert np.array_equal(fused_loss.numpy(), composed_loss.numpy())
        assert np.array_equal(fused_logits.grad, composed_logits.grad)

    @given(
        LOGIT_SHAPES.flatmap(_logits_and_labels),
        st.integers(0, 2**31 - 1),
        st.integers(1, 3),
        st.floats(1e-6, 0.5, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_value_and_all_grads_with_l2(self, drawn, seed, count, weight_decay):
        logits_values, labels, weight = drawn
        composed_params = _parameters(seed, count)
        fused_params = _parameters(seed, count)  # same values, fresh tensors
        composed_loss, composed_logits = _composed(
            logits_values, labels, weight, composed_params, weight_decay
        )
        fused_loss, fused_logits = _fused(
            logits_values, labels, weight, fused_params, weight_decay
        )
        assert np.array_equal(fused_loss.numpy(), composed_loss.numpy())
        assert np.array_equal(fused_logits.grad, composed_logits.grad)
        for composed_param, fused_param in zip(composed_params, fused_params):
            assert np.array_equal(fused_param.grad, composed_param.grad)


class TestFusedEdgeCases:
    def test_no_parameters_is_pure_cross_entropy(self):
        logits_values = np.array([[2.0, -1.0], [0.5, 0.25]])
        labels = np.array([0, 1])
        composed_loss, _ = _composed(logits_values, labels, None, [], 0.0)
        fused_loss, _ = _fused(logits_values, labels, None, [], 0.0)
        assert np.array_equal(fused_loss.numpy(), composed_loss.numpy())

    def test_zero_weight_decay_still_matches(self):
        logits_values = np.array([[1.0, 2.0, 3.0]])
        labels = np.array([2])
        composed_params = _parameters(5, 2)
        fused_params = _parameters(5, 2)
        composed_loss, _ = _composed(logits_values, labels, None, composed_params, 0.0)
        fused_loss, _ = _fused(logits_values, labels, None, fused_params, 0.0)
        assert np.array_equal(fused_loss.numpy(), composed_loss.numpy())
        for composed_param, fused_param in zip(composed_params, fused_params):
            assert np.array_equal(fused_param.grad, composed_param.grad)

    def test_frozen_parameters_get_no_grad(self):
        logits_values = np.array([[1.0, -1.0]])
        labels = np.array([0])
        frozen = Tensor(np.ones((2, 2)), requires_grad=False)
        loss = fused_cross_entropy(
            Tensor(logits_values, requires_grad=True),
            labels,
            parameters=[frozen],
            weight_decay=0.1,
        )
        loss.backward()
        assert frozen.grad is None

    def test_extreme_logits_stay_finite_and_equal(self):
        logits_values = np.array([[700.0, -700.0], [-700.0, 700.0]])
        labels = np.array([1, 0])
        composed_loss, composed_logits = _composed(logits_values, labels, None, [], 0.0)
        fused_loss, fused_logits = _fused(logits_values, labels, None, [], 0.0)
        assert np.isfinite(fused_loss.numpy())
        assert np.array_equal(fused_loss.numpy(), composed_loss.numpy())
        assert np.array_equal(fused_logits.grad, composed_logits.grad)
