"""Tests for the graph neural network layers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import normalized_adjacency
from repro.nn import GATConv, GCNConv, RGCNConv, SAGEConv, SemanticAttention
from repro.tensor import Tensor

RNG = np.random.default_rng(11)


@pytest.fixture
def adjacency():
    dense = np.array(
        [
            [0, 1, 0, 0, 1],
            [1, 0, 1, 0, 0],
            [0, 1, 0, 1, 0],
            [0, 0, 1, 0, 1],
            [1, 0, 0, 1, 0],
        ],
        dtype=float,
    )
    return sp.csr_matrix(dense)


@pytest.fixture
def features():
    return Tensor(RNG.normal(size=(5, 6)), requires_grad=True)


class TestGCNConv:
    def test_output_shape(self, adjacency, features):
        conv = GCNConv(6, 4, np.random.default_rng(0))
        out = conv(features, normalized_adjacency(adjacency))
        assert out.shape == (5, 4)

    def test_gradients_reach_weights_and_inputs(self, adjacency, features):
        conv = GCNConv(6, 4, np.random.default_rng(0))
        out = conv(features, normalized_adjacency(adjacency))
        out.sum().backward()
        assert conv.linear.weight.grad is not None
        assert features.grad is not None

    def test_isolated_node_keeps_self_information(self):
        # Node 2 is isolated; with self-loops its output is its own projection.
        adjacency = sp.csr_matrix(np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]], dtype=float))
        conv = GCNConv(2, 2, np.random.default_rng(0), bias=False)
        x = Tensor(np.array([[1.0, 0.0], [0.0, 1.0], [2.0, 2.0]]))
        out = conv(x, normalized_adjacency(adjacency)).numpy()
        expected_row = np.array([2.0, 2.0]) @ conv.linear.weight.numpy()
        np.testing.assert_allclose(out[2], expected_row, atol=1e-10)

    def test_constant_features_on_regular_graph_stay_constant(self):
        # On a 3-cycle (regular graph) with identical inputs, outputs are identical.
        ring = sp.csr_matrix(np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=float))
        conv = GCNConv(3, 3, np.random.default_rng(0))
        x = Tensor(np.ones((3, 3)))
        out = conv(x, normalized_adjacency(ring)).numpy()
        np.testing.assert_allclose(out[0], out[1], atol=1e-10)
        np.testing.assert_allclose(out[1], out[2], atol=1e-10)


class TestGATConv:
    def test_output_shape(self, adjacency, features):
        conv = GATConv(6, 3, np.random.default_rng(0))
        assert conv(features, adjacency).shape == (5, 3)

    def test_gradients_flow(self, adjacency, features):
        conv = GATConv(6, 3, np.random.default_rng(0))
        conv(features, adjacency).sum().backward()
        assert conv.att_src.grad is not None
        assert conv.att_dst.grad is not None
        assert features.grad is not None

    def test_attention_is_convex_combination(self):
        # With a zero bias and identical neighbour features, the output equals
        # the projected shared feature (attention weights sum to one).
        adjacency = sp.csr_matrix(np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=float))
        conv = GATConv(2, 2, np.random.default_rng(1))
        x = Tensor(np.ones((3, 2)))
        out = conv(x, adjacency).numpy()
        projected = (np.ones((1, 2)) @ conv.linear.weight.numpy()).ravel()
        np.testing.assert_allclose(out[0], projected + conv.bias.numpy(), atol=1e-8)

    def test_handles_graph_without_edges(self):
        empty = sp.csr_matrix((4, 4))
        conv = GATConv(3, 2, np.random.default_rng(0))
        out = conv(Tensor(RNG.normal(size=(4, 3))), empty)
        assert out.shape == (4, 2)
        assert np.all(np.isfinite(out.numpy()))


class TestSAGEConv:
    def test_output_shape(self, adjacency, features):
        conv = SAGEConv(6, 4, np.random.default_rng(0))
        assert conv(features, adjacency).shape == (5, 4)

    def test_isolated_node_uses_zero_neighbour_mean(self):
        adjacency = sp.csr_matrix((3, 3))
        conv = SAGEConv(2, 2, np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(3, 2)))
        out = conv(x, adjacency)
        assert np.all(np.isfinite(out.numpy()))

    def test_gradients_flow(self, adjacency, features):
        conv = SAGEConv(6, 4, np.random.default_rng(0))
        conv(features, adjacency).sum().backward()
        assert conv.linear.weight.grad is not None


class TestRGCNConv:
    def test_output_shape_with_multiple_relations(self, adjacency, features):
        conv = RGCNConv(6, 4, ["a", "b"], np.random.default_rng(0))
        adjacencies = {"a": normalized_adjacency(adjacency), "b": normalized_adjacency(adjacency.T)}
        assert conv(features, adjacencies).shape == (5, 4)

    def test_missing_relation_is_skipped(self, adjacency, features):
        conv = RGCNConv(6, 4, ["a", "b"], np.random.default_rng(0))
        out_partial = conv(features, {"a": normalized_adjacency(adjacency)})
        assert out_partial.shape == (5, 4)

    def test_per_relation_weights_are_distinct_parameters(self):
        conv = RGCNConv(3, 3, ["a", "b"], np.random.default_rng(0))
        assert conv.relation_linears["a"].weight is not conv.relation_linears["b"].weight
        # self-loop + 2 relations (no bias) -> 2 + 2 = 4 parameter tensors.
        assert len(conv.parameters()) == 4

    def test_gradients_flow_to_all_relations(self, adjacency, features):
        conv = RGCNConv(6, 2, ["a", "b"], np.random.default_rng(0))
        adjacencies = {"a": normalized_adjacency(adjacency), "b": normalized_adjacency(adjacency)}
        conv(features, adjacencies).sum().backward()
        assert conv.relation_linears["a"].weight.grad is not None
        assert conv.relation_linears["b"].weight.grad is not None


class TestSemanticAttention:
    def test_weights_sum_to_one(self):
        attention = SemanticAttention(4, 8, np.random.default_rng(0))
        embeddings = [Tensor(RNG.normal(size=(6, 4))) for _ in range(3)]
        fused, weights = attention(embeddings)
        assert fused.shape == (6, 4)
        assert weights.shape == (3, 1)
        assert weights.numpy().sum() == pytest.approx(1.0, abs=1e-9)

    def test_single_relation_gets_weight_one(self):
        attention = SemanticAttention(4, 8, np.random.default_rng(0))
        embeddings = [Tensor(RNG.normal(size=(5, 4)))]
        fused, weights = attention(embeddings)
        assert weights.numpy().ravel()[0] == pytest.approx(1.0)
        np.testing.assert_allclose(fused.numpy(), embeddings[0].numpy(), atol=1e-9)

    def test_identical_relations_get_equal_weights(self):
        attention = SemanticAttention(4, 8, np.random.default_rng(0))
        shared = Tensor(RNG.normal(size=(5, 4)))
        _, weights = attention([shared, shared])
        np.testing.assert_allclose(weights.numpy().ravel(), [0.5, 0.5], atol=1e-9)

    def test_gradients_flow_to_query(self):
        attention = SemanticAttention(4, 8, np.random.default_rng(0))
        embeddings = [Tensor(RNG.normal(size=(5, 4)), requires_grad=True) for _ in range(2)]
        fused, _ = attention(embeddings)
        fused.sum().backward()
        assert attention.query.grad is not None
        assert embeddings[0].grad is not None
