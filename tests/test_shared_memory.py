"""Tests for the shared-memory adjacency transport: SharedArray/SharedCSR
round trips, the builder payload the pool workers attach, and the segment
lifecycle (`shutdown_shared_pool` must never leak `/dev/shm` segments)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import SharedArray, SharedCSR
from repro.sampling import biased
from repro.sampling.biased import BiasedSubgraphBuilder, shutdown_shared_pool
from tests.conftest import make_separable_graph


def _segment_gone(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    segment.close()
    return False


@pytest.fixture(autouse=True)
def _clean_segments():
    """Every test starts and ends with no registered payloads."""
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


class TestSharedArray:
    def test_round_trip_through_pickle(self):
        array = np.arange(24, dtype=np.float64).reshape(4, 6)
        shared = SharedArray.create(array)
        try:
            clone = pickle.loads(pickle.dumps(shared))
            np.testing.assert_array_equal(clone.attach(), array)
            # The pickle carries segment metadata, not the array bytes.
            assert len(pickle.dumps(shared)) < 512
        finally:
            shared.unlink()

    def test_attach_is_zero_copy(self):
        array = np.arange(10, dtype=np.int64)
        shared = SharedArray.create(array)
        try:
            first = pickle.loads(pickle.dumps(shared))
            second = pickle.loads(pickle.dumps(shared))
            view = first.attach()
            view[0] = 999  # visible through every other mapping
            assert second.attach()[0] == 999
        finally:
            shared.unlink()

    def test_zero_size_array_is_inline(self):
        shared = SharedArray.create(np.empty((0, 3), dtype=np.float64))
        assert shared.name is None
        clone = pickle.loads(pickle.dumps(shared))
        assert clone.attach().shape == (0, 3)
        shared.unlink()  # no-op, must not raise

    def test_unlink_is_idempotent(self):
        shared = SharedArray.create(np.ones(5))
        shared.unlink()
        shared.unlink()
        assert _segment_gone(shared.name)


class TestSharedCSR:
    def test_round_trip_preserves_matrix(self):
        rng = np.random.default_rng(0)
        matrix = sp.random(40, 40, density=0.1, random_state=rng.integers(1 << 30)).tocsr()
        shared = SharedCSR.create(matrix)
        try:
            clone = pickle.loads(pickle.dumps(shared))
            attached = clone.attach()
            assert (attached != matrix).nnz == 0
            np.testing.assert_array_equal(attached.indptr, matrix.indptr)
            np.testing.assert_array_equal(attached.indices, matrix.indices)
            np.testing.assert_array_equal(attached.data, matrix.data)
        finally:
            shared.unlink()


class TestBuilderPayload:
    def test_workers_see_identical_adjacency_without_repickling(self):
        """The shared payload replaces the per-shard builder pickle: what a
        worker receives is ~1 KB of segment names, and the builder it
        materializes selects exactly the subgraphs of the in-process one."""
        graph = make_separable_graph(num_nodes=100, seed=7)
        embeddings = np.asarray(graph.features, dtype=np.float64)
        builder = BiasedSubgraphBuilder(graph, embeddings, k=4)
        payload = builder.share_memory()

        wire = pickle.dumps(payload)
        assert len(wire) < 8192
        assert len(pickle.dumps(builder)) > len(wire) * 10

        worker_builder = pickle.loads(wire).materialize()
        for relation in graph.relation_names:
            ours = builder._relation_adjacency[relation]
            theirs = worker_builder._relation_adjacency[relation]
            assert (ours != theirs).nnz == 0
            raw_ours = graph.relation(relation).adjacency()
            raw_theirs = worker_builder.graph.relation(relation).adjacency()
            assert (raw_ours != raw_theirs).nnz == 0
        np.testing.assert_array_equal(worker_builder.node_embeddings, embeddings)

        reference = builder.build_batch(range(20))
        attached = worker_builder.build_batch(range(20))
        for left, right in zip(reference, attached):
            assert left.center == right.center
            np.testing.assert_array_equal(left.nodes, right.nodes)
            for name in left.relation_edges:
                np.testing.assert_array_equal(
                    left.relation_edges[name][0], right.relation_edges[name][0]
                )
                np.testing.assert_array_equal(
                    left.relation_edges[name][1], right.relation_edges[name][1]
                )

    def test_pooled_build_matches_serial(self):
        graph = make_separable_graph(num_nodes=90, seed=5)
        embeddings = np.asarray(graph.features, dtype=np.float64)
        serial = BiasedSubgraphBuilder(graph, embeddings, k=4).build_store(range(40))
        pooled = BiasedSubgraphBuilder(graph, embeddings, k=4).build_store(
            range(40), workers=2
        )
        assert sorted(serial.nodes()) == sorted(pooled.nodes())
        for node in serial.nodes():
            np.testing.assert_array_equal(serial.get(node).nodes, pooled.get(node).nodes)

    def test_share_memory_reuses_payload_until_released(self):
        graph = make_separable_graph(num_nodes=60, seed=1)
        builder = BiasedSubgraphBuilder(graph, np.asarray(graph.features), k=3)
        payload = builder.share_memory()
        assert builder.share_memory() is payload
        builder.release_shared()
        assert payload.token not in biased._shared_payload_registry
        fresh = builder.share_memory()
        assert fresh is not payload
        assert fresh.token in biased._shared_payload_registry

    def test_refresh_releases_stale_payload(self):
        graph = make_separable_graph(num_nodes=60, seed=2)
        builder = BiasedSubgraphBuilder(graph, np.asarray(graph.features), k=3)
        payload = builder.share_memory()
        name = payload.embeddings.name
        relation = graph.relation_names[0]
        graph.add_edges(relation, np.array([0]), np.array([1]))
        builder.refresh_relations([relation])
        assert _segment_gone(name)
        assert builder._shared_state is None


class TestSegmentLifecycle:
    def test_shutdown_unlinks_every_registered_payload(self):
        graph = make_separable_graph(num_nodes=60, seed=3)
        builders = [
            BiasedSubgraphBuilder(graph, np.asarray(graph.features), k=3)
            for _ in range(2)
        ]
        names = []
        for builder in builders:
            payload = builder.share_memory()
            names.append(payload.embeddings.name)
            names.extend(shared.indptr.name for shared in payload.sym.values())
        shutdown_shared_pool()
        assert not biased._shared_payload_registry
        for name in names:
            assert _segment_gone(name)

    def test_share_after_global_shutdown_creates_fresh_segments(self):
        """A builder whose payload was unlinked behind its back (session
        close, global shutdown) must re-share, not hand out dead names."""
        graph = make_separable_graph(num_nodes=60, seed=4)
        builder = BiasedSubgraphBuilder(graph, np.asarray(graph.features), k=3)
        stale = builder.share_memory()
        shutdown_shared_pool()
        fresh = builder.share_memory()
        assert fresh is not stale
        assert not _segment_gone(fresh.embeddings.name)
        # ... and the fresh payload still materializes correctly.
        clone = pickle.loads(pickle.dumps(fresh)).materialize()
        assert clone.graph.num_nodes == graph.num_nodes

    def test_builder_garbage_collection_releases_segments(self):
        import gc

        graph = make_separable_graph(num_nodes=60, seed=6)
        builder = BiasedSubgraphBuilder(graph, np.asarray(graph.features), k=3)
        name = builder.share_memory().embeddings.name
        del builder
        gc.collect()
        assert _segment_gone(name)
        assert not biased._shared_payload_registry
