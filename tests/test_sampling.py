"""Tests for subgraph containers, biased subgraph construction and samplers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preclassifier import PretrainedClassifier
from repro.sampling import (
    BiasedSubgraphBuilder,
    PPRSubgraphBuilder,
    Subgraph,
    collate_subgraphs,
    greedy_partition,
    sample_neighbor_adjacency,
)
from tests.conftest import make_separable_graph


@pytest.fixture(scope="module")
def toy_graph():
    return make_separable_graph(num_nodes=80, num_relations=2, homophily=0.85, seed=2)


@pytest.fixture(scope="module")
def builder(toy_graph):
    # Use raw features as similarity embeddings: classes are separable there.
    return BiasedSubgraphBuilder(toy_graph, toy_graph.features, k=6)


class TestSubgraphContainer:
    def test_center_must_be_first(self):
        with pytest.raises(ValueError):
            Subgraph(center=5, nodes=np.array([1, 5]), relation_edges={})

    def test_num_edges_per_relation(self):
        subgraph = Subgraph(
            center=0,
            nodes=np.array([0, 1, 2]),
            relation_edges={
                "a": (np.array([1, 2]), np.array([0, 0])),
                "b": (np.array([1]), np.array([2])),
            },
        )
        assert subgraph.num_nodes == 3
        assert subgraph.num_edges() == 3
        assert subgraph.num_edges("a") == 2

    def test_relation_adjacency_shape(self):
        subgraph = Subgraph(
            center=0,
            nodes=np.array([0, 3]),
            relation_edges={"a": (np.array([1]), np.array([0]))},
        )
        adjacency = subgraph.relation_adjacency("a")
        assert adjacency.shape == (2, 2)
        assert adjacency[1, 0] == 1.0

    def test_missing_relation_gives_empty_adjacency(self):
        subgraph = Subgraph(center=0, nodes=np.array([0]), relation_edges={})
        assert subgraph.relation_adjacency("missing").nnz == 0

    def test_center_homophily(self):
        labels = np.array([0, 0, 1, 1])
        subgraph = Subgraph(
            center=0,
            nodes=np.array([0, 1, 2]),
            relation_edges={"a": (np.array([1, 2]), np.array([0, 0]))},
        )
        # Center's neighbours are nodes 1 (label 0) and 2 (label 1) -> h = 0.5.
        assert subgraph.center_homophily(labels) == pytest.approx(0.5)


class TestBiasedBuilder:
    def test_subgraph_contains_center_and_respects_k(self, toy_graph, builder):
        subgraph = builder.build(0)
        assert subgraph.center == 0
        assert subgraph.nodes[0] == 0
        # Union over relations: at most 1 + k * num_relations nodes.
        assert subgraph.num_nodes <= 1 + builder.k * toy_graph.num_relations

    def test_star_edges_connect_selected_to_center(self, builder):
        subgraph = builder.build(3)
        for relation in subgraph.relation_edges:
            src, dst = subgraph.relation_edges[relation]
            if len(src):
                # every subgraph keeps at least the star edges into local index 0
                assert (dst == 0).sum() > 0

    def test_original_edges_preserved(self, toy_graph, builder):
        subgraph = builder.build(5)
        for relation, (src, dst) in subgraph.relation_edges.items():
            store = toy_graph.relation(relation)
            original_pairs = set(zip(store.src.tolist(), store.dst.tolist()))
            for s, d in zip(src.tolist(), dst.tolist()):
                if d == 0:
                    continue  # star edges may be synthetic
                original_edge = (int(subgraph.nodes[s]), int(subgraph.nodes[d]))
                assert original_edge in original_pairs

    def test_invalid_parameters_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            BiasedSubgraphBuilder(toy_graph, toy_graph.features, k=0)
        with pytest.raises(ValueError):
            BiasedSubgraphBuilder(toy_graph, toy_graph.features, k=4, mix_lambda=2.0)
        with pytest.raises(ValueError):
            BiasedSubgraphBuilder(toy_graph, toy_graph.features[:5], k=4)

    def test_build_store_covers_requested_nodes(self, toy_graph, builder):
        store = builder.build_store(nodes=[0, 1, 2])
        assert len(store) == 3
        assert 1 in store
        assert store.get(2).center == 2

    def test_biased_subgraphs_raise_homophily_over_ppr(self, toy_graph):
        """The core claim of Figure 8: classifier-guided selection increases
        the center homophily compared to pure PPR selection."""
        biased = BiasedSubgraphBuilder(toy_graph, toy_graph.features, k=6, mix_lambda=0.5)
        ppr_only = PPRSubgraphBuilder(toy_graph, k=6)
        labels = toy_graph.labels
        nodes = np.arange(0, toy_graph.num_nodes, 2)
        biased_h = np.nanmean([biased.build(int(n)).center_homophily(labels) for n in nodes])
        ppr_h = np.nanmean([ppr_only.build(int(n)).center_homophily(labels) for n in nodes])
        assert biased_h >= ppr_h - 0.05

    def test_ppr_variant_ignores_embeddings(self, toy_graph):
        ppr_builder = PPRSubgraphBuilder(toy_graph, k=5)
        assert ppr_builder.mix_lambda == 1.0

    def test_subgraph_with_real_preclassifier_embeddings(self, toy_graph):
        classifier = PretrainedClassifier(toy_graph.num_features, hidden_dim=8, epochs=20)
        classifier.fit_graph(toy_graph)
        embeddings = classifier.hidden_representations(toy_graph.features)
        builder = BiasedSubgraphBuilder(toy_graph, embeddings, k=4)
        subgraph = builder.build(0)
        assert subgraph.num_nodes > 1


class TestCollateAndStore:
    def test_collate_block_diagonal_shapes(self, toy_graph, builder):
        subgraphs = [builder.build(i) for i in range(4)]
        batch = collate_subgraphs(subgraphs, toy_graph)
        total_nodes = sum(s.num_nodes for s in subgraphs)
        assert batch.features.shape == (total_nodes, toy_graph.num_features)
        assert batch.num_centers == 4
        for adjacency in batch.relation_adjacencies.values():
            assert adjacency.shape == (total_nodes, total_nodes)

    def test_collate_center_positions_and_labels(self, toy_graph, builder):
        subgraphs = [builder.build(i) for i in (3, 7)]
        batch = collate_subgraphs(subgraphs, toy_graph)
        assert batch.center_positions[0] == 0
        assert batch.center_positions[1] == subgraphs[0].num_nodes
        np.testing.assert_array_equal(batch.center_nodes, [3, 7])
        np.testing.assert_array_equal(batch.labels, toy_graph.labels[[3, 7]])

    def test_collate_empty_list_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            collate_subgraphs([], toy_graph)

    def test_store_batches_cover_all_nodes(self, toy_graph, builder):
        store = builder.build_store(nodes=range(10))
        seen = []
        for batch in store.batches(list(range(10)), batch_size=4):
            seen.extend(batch.center_nodes.tolist())
        assert sorted(seen) == list(range(10))

    def test_store_batches_shuffled_with_rng(self, toy_graph, builder):
        store = builder.build_store(nodes=range(10))
        ordered = [b.center_nodes.tolist() for b in store.batches(range(10), 10)][0]
        shuffled = [
            b.center_nodes.tolist()
            for b in store.batches(range(10), 10, rng=np.random.default_rng(1))
        ][0]
        assert sorted(ordered) == sorted(shuffled)

    def test_store_average_center_homophily_by_class(self, toy_graph, builder):
        # Include nodes from both halves of the toy graph (labels 0 and 1).
        nodes = list(range(10)) + list(range(40, 50))
        store = builder.build_store(nodes=nodes)
        overall = store.average_center_homophily()
        bots = store.average_center_homophily(label_filter=1)
        humans = store.average_center_homophily(label_filter=0)
        assert 0.0 <= overall <= 1.0
        assert 0.0 <= bots <= 1.0 and 0.0 <= humans <= 1.0

    def test_store_homophily_nan_when_class_absent(self, toy_graph, builder):
        store = builder.build_store(nodes=range(5))  # all label-0 nodes
        assert np.isnan(store.average_center_homophily(label_filter=1))


class TestNeighborSampling:
    def test_fanout_respected(self, toy_graph):
        adjacency = toy_graph.merged_adjacency()
        sampled = sample_neighbor_adjacency(adjacency, fanout=3, rng=np.random.default_rng(0))
        degrees = np.asarray(sampled.sum(axis=1)).ravel()
        assert degrees.max() <= 3

    def test_sampled_edges_are_subset(self, toy_graph):
        adjacency = toy_graph.merged_adjacency()
        sampled = sample_neighbor_adjacency(adjacency, fanout=2, rng=np.random.default_rng(0))
        difference = sampled - adjacency.multiply(sampled)
        assert abs(difference).nnz == 0

    def test_invalid_fanout(self, toy_graph):
        with pytest.raises(ValueError):
            sample_neighbor_adjacency(toy_graph.merged_adjacency(), 0, np.random.default_rng(0))

    def test_empty_graph(self):
        import scipy.sparse as sp

        sampled = sample_neighbor_adjacency(sp.csr_matrix((5, 5)), 3, np.random.default_rng(0))
        assert sampled.nnz == 0


class TestGreedyPartition:
    def test_partition_covers_all_nodes(self, toy_graph):
        partition = greedy_partition(toy_graph.merged_adjacency(), num_parts=4, seed=0)
        assert partition.shape == (toy_graph.num_nodes,)
        assert partition.min() >= 0 and partition.max() < 4

    def test_partition_roughly_balanced(self, toy_graph):
        partition = greedy_partition(toy_graph.merged_adjacency(), num_parts=4, seed=0)
        sizes = np.bincount(partition, minlength=4)
        assert sizes.max() <= 2 * (toy_graph.num_nodes // 4 + 1)

    def test_more_parts_than_nodes(self):
        import scipy.sparse as sp

        partition = greedy_partition(sp.csr_matrix((3, 3)), num_parts=5, seed=0)
        assert partition.shape == (3,)

    def test_invalid_num_parts(self, toy_graph):
        with pytest.raises(ValueError):
            greedy_partition(toy_graph.merged_adjacency(), 0)

    @given(num_parts=st.integers(min_value=1, max_value=6), seed=st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_partition_property_all_assigned(self, num_parts, seed):
        graph = make_separable_graph(num_nodes=40, seed=seed)
        partition = greedy_partition(graph.merged_adjacency(), num_parts, seed=seed)
        assert np.all(partition >= 0)
        assert len(np.unique(partition)) <= num_parts
