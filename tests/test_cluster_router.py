"""Cluster serving tests: shard planning, fan-out/fan-in bit-identity,
delta routing with read-your-writes across shards, clean shutdown, and the
asyncio HTTP front end (admission backpressure included)."""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import api
from repro.core import BSG4Bot, BSG4BotConfig
from repro.graph import HeteroGraph
from repro.sampling import biased
from repro.serving import DetectionService
from repro.serving.cluster import (
    ClusterHTTPServer,
    ShardPlan,
    ShardRouter,
    ShardSpec,
    plan_shards,
)
from tests.conftest import make_separable_graph

GRAPH_SEED = 33
GRAPH_NODES = 60


def _make_graph():
    return make_separable_graph(num_nodes=GRAPH_NODES, seed=GRAPH_SEED)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """One fitted detector persisted once; tests load isolated copies."""
    graph = _make_graph()
    config = BSG4BotConfig(
        pretrain_epochs=10, hidden_dim=8, pretrain_hidden_dim=8,
        subgraph_k=3, max_epochs=3, min_epochs=1, patience=2, batch_size=16,
    )
    detector = BSG4Bot(config)
    detector.fit(graph)
    return api.save_detector(detector, tmp_path_factory.mktemp("cluster") / "artifact")


def _router(artifact, num_shards=2, **kwargs):
    kwargs.setdefault("release_pool_on_close", False)
    return ShardRouter.from_artifact(
        artifact, graph=_make_graph(), num_shards=num_shards, seed=0, **kwargs
    )


def _oracle_session(artifact):
    """A single full-graph session — the bit-identity reference."""
    graph = _make_graph()
    detector = api.load_detector(artifact, graph=graph)
    return api.DetectionSession(detector, graph), graph


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_partition_covers_all_nodes_exactly_once(self, artifact):
        plan = plan_shards(_make_graph(), 3, seed=0, verify=False)
        owned = np.concatenate([spec.owned for spec in plan.shards])
        assert np.array_equal(np.sort(owned), np.arange(GRAPH_NODES))
        for spec in plan.shards:
            assert np.array_equal(plan.ownership[spec.owned], np.full(spec.owned.size, spec.shard_id))
            # Closure contains the owned set and the mask matches the array.
            assert np.isin(spec.owned, spec.closure).all()
            assert np.array_equal(np.flatnonzero(spec.closure_mask), spec.closure)

    def test_local_graphs_keep_full_node_space_and_closure_edges(self, artifact):
        graph = _make_graph()
        plan = plan_shards(graph, 2, seed=0, verify=False)
        for spec in plan.shards:
            local = spec.graph
            assert local.num_nodes == graph.num_nodes
            assert local.relation_names == graph.relation_names
            np.testing.assert_array_equal(local.features, graph.features)
            for name in graph.relation_names:
                full_rel, local_rel = graph.relation(name), local.relation(name)
                # Exactly the closure-incident edge subset survives.
                keep = spec.closure_mask[full_rel.src] | spec.closure_mask[full_rel.dst]
                np.testing.assert_array_equal(local_rel.src, full_rel.src[keep])
                np.testing.assert_array_equal(local_rel.dst, full_rel.dst[keep])

    def test_verified_plan_passes_reverification(self):
        graph = _make_graph()
        plan = plan_shards(graph, 2, seed=0, verify=True)
        assert plan.verified
        plan.verify(graph)  # must not raise

    def test_single_shard_plan_degenerates_to_full_graph(self):
        graph = _make_graph()
        plan = plan_shards(graph, 1, seed=0, verify=True)
        assert plan.num_shards == 1
        assert plan.shards[0].num_owned == GRAPH_NODES
        assert plan.shards[0].graph.num_edges == graph.num_edges

    def test_stats_schema(self):
        plan = plan_shards(_make_graph(), 2, seed=0, verify=False)
        stats = plan.stats()
        assert stats["num_shards"] == 2 and not stats["verified"]
        assert len(stats["owned_sizes"]) == 2
        assert len(stats["halo_hops"]) == 2

    def test_invalid_arguments(self):
        graph = _make_graph()
        with pytest.raises(ValueError):
            plan_shards(graph, 0)
        with pytest.raises(ValueError):
            plan_shards(graph, 2, halo_hops=-1)


# ----------------------------------------------------------------------
# Router: fan-out/fan-in scoring
# ----------------------------------------------------------------------
class TestRouterScoring:
    def test_sharded_waves_bit_identical_to_single_session_oracle(self, artifact):
        """The tentpole contract: every per-shard wave replays bit-for-bit
        through a serial full-graph ``score_nodes`` at the same batching."""
        router = _router(artifact, num_shards=2, record_waves=True,
                         max_batch_size=8, max_wait_ms=5.0)
        results = {}

        def client(node):
            results[node] = router.score([node], timeout=30.0)

        threads = [threading.Thread(target=client, args=(n,)) for n in range(24)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        router.drain()
        oracle, _graph = _oracle_session(artifact)
        waves = 0
        try:
            for service in router.services:
                for wave_nodes, wave_probabilities, _seq in service.wave_log:
                    waves += 1
                    np.testing.assert_array_equal(
                        oracle.score_nodes(wave_nodes), wave_probabilities
                    )
        finally:
            oracle.close(release_pool=False)
            router.close()
        assert waves >= 2  # both shards actually served coalesced waves
        assert len(results) == 24
        assert all(rows.shape == (1, 2) for rows in results.values())

    def test_fan_in_restores_caller_order_across_shards(self, artifact):
        # Deterministic batching: submit with dispatchers stopped, then
        # start them — each shard serves its slice as exactly one wave.
        router = _router(artifact, num_shards=2, autostart=False,
                         max_batch_size=16)
        nodes = [5, 40, 11, 52, 3, 27]
        handle = router.submit(nodes)
        for service in router.services:
            service.start()
        rows = handle.result(30.0)
        assert rows.shape == (len(nodes), 2)
        # Expected: the oracle scores each shard's slice at the same
        # batching, scattered back to the caller's positions.
        owners = router.plan.shard_of(np.asarray(nodes))
        oracle, _graph = _oracle_session(artifact)
        try:
            expected = np.empty_like(rows)
            for shard_id in np.unique(owners):
                positions = np.flatnonzero(owners == shard_id)
                expected[positions] = oracle.score_nodes(
                    np.asarray(nodes)[positions]
                )
            np.testing.assert_array_equal(rows, expected)
        finally:
            oracle.close(release_pool=False)
            router.close()

    def test_empty_and_invalid_requests(self, artifact):
        with _router(artifact, num_shards=2) as router:
            assert router.score([]).shape == (0, 2)
            with pytest.raises(ValueError, match="out of range"):
                router.score([GRAPH_NODES + 7])

    def test_single_shard_router_matches_plain_service(self, artifact):
        nodes = [11, 3, 27, 5]
        with _router(artifact, num_shards=1) as router:
            rows = router.score(nodes)
        graph = _make_graph()
        detector = api.load_detector(artifact, graph=graph)
        with DetectionService(detector, graph, release_pool_on_close=False) as service:
            np.testing.assert_array_equal(service.score(nodes), rows)


# ----------------------------------------------------------------------
# Router: delta fan-out
# ----------------------------------------------------------------------
class TestRouterUpdates:
    def test_feature_update_read_your_writes_across_shards(self, artifact):
        router = _router(artifact, num_shards=2)
        node = 7
        new_row = router.graph.features[node] + 2.0
        sequences = router.submit_update(features_changed={node: new_row.copy()})
        # Feature rows broadcast to every shard's local copy.
        assert set(sequences) == {0, 1}
        handle = router.submit([node])
        rows = handle.result(30.0)
        owner = int(router.plan.ownership[node])
        assert handle.delta_seqs[owner] >= sequences[owner]
        for spec in router.plan.shards:
            np.testing.assert_array_equal(spec.graph.features[node], new_row)
        router.close()
        # Bit-identity survives the delta: a fresh full-graph session that
        # applied the same delta scores the same wave identically.
        oracle, _graph = _oracle_session(artifact)
        try:
            oracle.apply_delta(features_changed={node: new_row.copy()})
            np.testing.assert_array_equal(oracle.score_nodes([node]), rows)
        finally:
            oracle.close(release_pool=False)

    def test_edge_update_lands_on_touched_shards_and_stays_bit_identical(
        self, artifact
    ):
        router = _router(artifact, num_shards=2)
        relation = router.graph.relation_names[0]
        src, dst = 0, 1
        sequences = router.submit_update(edges_added={relation: ([src], [dst])})
        touched = {
            spec.shard_id
            for spec in router.plan.shards
            if spec.closure_mask[src] or spec.closure_mask[dst]
        }
        assert set(sequences) == touched
        rows = router.score([src])
        router.drain()
        # Each touched shard's local graph now holds the edge.
        for spec, service in zip(router.plan.shards, router.services):
            if spec.shard_id in touched:
                rel = service.graph.relation(relation)
                assert np.any((rel.src == src) & (rel.dst == dst))
        router.close()
        oracle, oracle_graph = _oracle_session(artifact)
        try:
            oracle.apply_delta(edges_added={relation: ([src], [dst])})
            np.testing.assert_array_equal(oracle.score_nodes([src]), rows)
        finally:
            oracle.close(release_pool=False)

    def test_invalid_update_rejected_with_nothing_enqueued(self, artifact):
        with _router(artifact, num_shards=2) as router:
            with pytest.raises(KeyError, match="unknown relation"):
                router.submit_update(edges_added={"bogus": ([0], [1])})
            snap = router.snapshot()
            assert snap["cluster_totals"]["deltas_enqueued"] == 0


# ----------------------------------------------------------------------
# Routing logic in isolation (stub services, hand-built plan)
# ----------------------------------------------------------------------
class _StubHandle:
    def __init__(self, rows):
        self._rows = rows
        self.delta_seq = -1

    def result(self, timeout=None):
        return self._rows


class _StubService:
    def __init__(self):
        self.scored = []
        self.updates = []
        self.closed = False
        self._seq = -1

    def submit(self, nodes, trace=None, trace_parent=None):
        # Mirrors DetectionService.submit's signature (the router passes
        # trace kwargs whenever a tracer is armed, e.g. REPRO_TRACE_SAMPLE).
        nodes = np.asarray(nodes)
        self.scored.append(nodes)
        rows = np.stack([nodes.astype(float), np.zeros(nodes.size)], axis=1)
        return _StubHandle(rows)

    def submit_update(self, edges_added=None, features_changed=None):
        self.updates.append((edges_added, features_changed))
        self._seq += 1
        return self._seq

    def drain(self, timeout=None):
        pass

    def close(self, drain=True, timeout=None):
        self.closed = True

    def snapshot(self):
        return {"requests": len(self.scored)}


def _toy_plan():
    """6 nodes, two shards; closures overlap on nodes {2, 3} only."""
    features = np.eye(6)
    relations = {"r": (np.array([0, 2, 4]), np.array([1, 3, 5]))}
    def local(mask):
        keep = mask[relations["r"][0]] | mask[relations["r"][1]]
        return HeteroGraph(
            6, features.copy(), np.zeros(6, dtype=np.int64),
            {"r": (relations["r"][0][keep], relations["r"][1][keep])},
        )
    ownership = np.array([0, 0, 0, 1, 1, 1])
    masks = [
        np.array([True, True, True, True, False, False]),
        np.array([False, False, True, True, True, True]),
    ]
    shards = [
        ShardSpec(
            shard_id=i,
            owned=np.flatnonzero(ownership == i),
            closure=np.flatnonzero(masks[i]),
            halo_hops=1,
            graph=local(masks[i]),
            closure_mask=masks[i],
        )
        for i in range(2)
    ]
    graph = HeteroGraph(6, features, np.zeros(6, dtype=np.int64), relations)
    return ShardPlan(num_shards=2, ownership=ownership, shards=shards, seed=0), graph


class TestRoutingLogic:
    def test_score_routes_by_ownership_and_scatters_in_order(self):
        plan, graph = _toy_plan()
        services = [_StubService(), _StubService()]
        router = ShardRouter(plan, services, graph=graph, release_pool_on_close=False)
        rows = router.score([5, 0, 3, 1])
        # Stub rows carry the node id in column 0 — order must be caller's.
        np.testing.assert_array_equal(rows[:, 0], [5.0, 0.0, 3.0, 1.0])
        np.testing.assert_array_equal(services[0].scored[0], [0, 1])
        np.testing.assert_array_equal(services[1].scored[0], [5, 3])

    def test_edge_delta_reaches_only_closure_incident_shards(self):
        plan, graph = _toy_plan()
        services = [_StubService(), _StubService()]
        router = ShardRouter(plan, services, graph=graph, release_pool_on_close=False)
        # (0, 1): shard 0 only.  (4, 5): shard 1 only.  (2, 3): both.
        assert set(router.submit_update(edges_added={"r": ([0], [1])})) == {0}
        assert set(router.submit_update(edges_added={"r": ([4], [5])})) == {1}
        assert set(router.submit_update(edges_added={"r": ([2], [3])})) == {0, 1}
        assert len(services[0].updates) == 2
        assert len(services[1].updates) == 2
        # The shard sees only its closure-incident edge subset.
        mixed = router.submit_update(edges_added={"r": ([0, 4], [1, 5])})
        assert set(mixed) == {0, 1}
        edges0, _ = services[0].updates[-1]
        np.testing.assert_array_equal(edges0["r"][0], [0])
        edges1, _ = services[1].updates[-1]
        np.testing.assert_array_equal(edges1["r"][0], [4])

    def test_feature_delta_broadcasts_everywhere(self):
        plan, graph = _toy_plan()
        services = [_StubService(), _StubService()]
        router = ShardRouter(plan, services, graph=graph, release_pool_on_close=False)
        sequences = router.submit_update(features_changed={0: np.ones(6)})
        assert set(sequences) == {0, 1}

    def test_mismatched_service_count_rejected(self):
        plan, graph = _toy_plan()
        with pytest.raises(ValueError, match="2 shard"):
            ShardRouter(plan, [_StubService()], graph=graph)

    def test_close_closes_every_shard_and_is_idempotent(self):
        plan, graph = _toy_plan()
        services = [_StubService(), _StubService()]
        router = ShardRouter(plan, services, graph=graph, release_pool_on_close=False)
        router.close()
        router.close()
        assert all(service.closed for service in services)
        with pytest.raises(RuntimeError, match="closed"):
            router.score([0])
        with pytest.raises(RuntimeError, match="closed"):
            router.submit_update(features_changed={0: np.ones(6)})


# ----------------------------------------------------------------------
# Lifecycle / leaks
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_clean_shutdown_leaves_no_threads_pool_or_shm(self, artifact):
        before = set(threading.enumerate())
        router = ShardRouter.from_artifact(
            artifact, graph=_make_graph(), num_shards=2, seed=0,
            release_pool_on_close=True,
        )
        router.score([1, 40])
        router.submit_update(
            features_changed={3: router.graph.features[3] + 1.0}
        )
        router.drain()
        router.close()
        assert router.closed
        for service in router.services:
            assert service.closed
            assert not service._thread.is_alive()
        assert biased._shared_pool is None
        assert not biased._shared_payload_registry
        leftover = set(threading.enumerate()) - before
        assert not leftover, f"live threads after close: {leftover}"

    def test_context_manager(self, artifact):
        with _router(artifact, num_shards=2) as router:
            assert router.score([1]).shape == (1, 2)
        assert router.closed

    def test_snapshot_aggregates_shards(self, artifact):
        with _router(artifact, num_shards=2) as router:
            router.score([1, 40])
            router.drain()
            snap = router.snapshot()
            assert snap["router"]["requests"] == 1
            assert snap["cluster_totals"]["nodes_scored"] == 2
            assert len(snap["shards"]) == 2
            assert snap["plan"]["num_shards"] == 2
            health = router.healthz()
            assert health["status"] == "ok" and health["num_shards"] == 2


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
class _ServerThread:
    """Run one ClusterHTTPServer on a private event loop in a thread."""

    def __init__(self, router, **kwargs):
        self._router = router
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self.port = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10.0), "server failed to start"
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10.0)
        assert not self._thread.is_alive()

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        server = ClusterHTTPServer(self._router, port=0, **self._kwargs)
        await server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.port = server.port
        self._ready.set()
        await self._stop.wait()
        await server.close()

    def request(self, path, body=None, method=None, timeout=30.0):
        url = f"http://127.0.0.1:{self.port}{path}"
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


class _BlockingStubRouter:
    """Router stand-in whose score blocks until released (backpressure tests)."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def submit(self, nodes):
        outer = self

        class Handle:
            delta_seqs = {}

            def result(self, timeout=None):
                outer.entered.set()
                assert outer.release.wait(30.0)
                return np.zeros((len(nodes), 2))

        return Handle()

    def submit_update(self, edges_added=None, features_changed=None):
        return {0: 0}

    def healthz(self):
        return {"status": "ok", "num_shards": 1, "uptime_s": 0.0, "shards": []}

    def snapshot(self):
        return {"router": {}, "cluster_totals": {}, "plan": {}, "shards": []}


class TestHTTPFrontEnd:
    def test_all_four_endpoints_end_to_end(self, artifact):
        with _router(artifact, num_shards=2, max_batch_size=8) as router:
            with _ServerThread(router) as server:
                status, health = server.request("/healthz")
                assert status == 200 and health["status"] == "ok"
                assert health["num_shards"] == 2

                status, scored = server.request("/score", {"nodes": [1, 40, 7]})
                assert status == 200
                rows = np.asarray(scored["probabilities"])
                assert rows.shape == (3, 2)
                np.testing.assert_allclose(rows.sum(axis=1), 1.0, atol=1e-9)

                status, updated = server.request(
                    "/update",
                    {"features_changed": {"3": (router.graph.features[3] + 1.0).tolist()}},
                )
                assert status == 200 and set(updated["shards"]) == {"0", "1"}

                # Read-your-writes through HTTP: the next score's delta_seqs
                # cover the update's sequence numbers.
                status, rescored = server.request("/score", {"nodes": [3]})
                assert status == 200
                owner = str(int(router.plan.ownership[3]))
                assert int(rescored["delta_seqs"][owner]) >= int(updated["shards"][owner])

                status, metrics = server.request("/metrics")
                assert status == 200
                assert metrics["cluster_totals"]["nodes_scored"] >= 4
                assert metrics["admission"]["max_inflight"] > 0

    def test_error_statuses(self, artifact):
        with _router(artifact, num_shards=1) as router:
            with _ServerThread(router) as server:
                assert server.request("/nope")[0] == 404
                assert server.request("/score", method="GET")[0] == 405
                assert server.request("/healthz", {"x": 1})[0] == 405  # POST
                assert server.request("/score", {"nodes": "bogus"})[0] == 400
                status, payload = server.request("/score", {"nodes": [10_000]})
                assert status == 400 and "out of range" in payload["error"]

    def test_admission_queue_saturation_returns_429(self):
        stub = _BlockingStubRouter()
        with _ServerThread(stub, max_inflight=1) as server:
            first = {}

            def blocked_client():
                first["response"] = server.request("/score", {"nodes": [0]})

            thread = threading.Thread(target=blocked_client)
            thread.start()
            try:
                # Wait until the first request holds the only slot...
                assert stub.entered.wait(10.0)
                # ...then the next one must bounce immediately with 429.
                status, payload = server.request("/score", {"nodes": [1]})
                assert status == 429
                assert "admission" in payload["error"]
            finally:
                stub.release.set()
                thread.join(10.0)
            assert first["response"][0] == 200

    def test_oversized_body_rejected_before_buffering(self):
        stub = _BlockingStubRouter()
        stub.release.set()
        with _ServerThread(stub, max_body_bytes=64) as server:
            status, payload = server.request(
                "/score", {"nodes": list(range(1000))}
            )
            assert status == 413 and "cap" in payload["error"]
