"""Integration tests for the experiment harness (tables and figures).

These run the same code paths as the ``benchmarks/`` suite, but at the tiny
scale so the whole file stays fast.  Assertions check structure plus the
qualitative shape each paper artifact claims, where it is cheap to do so.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments import fig2, fig3, fig4, fig8, table1, table2
from repro.experiments.runner import format_table


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5",
            "fig2", "fig3", "fig4", "fig7", "fig8", "fig9", "fig10",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table99")

    def test_every_module_has_run_and_format(self):
        for module in EXPERIMENTS.values():
            assert hasattr(module, "run")
            assert hasattr(module, "format_result")


class TestFormatTable:
    def test_renders_all_rows_and_columns(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, ["a", "b"])
        assert "22" in text and "yy" in text
        assert len(text.splitlines()) == 4


class TestTable1(object):
    def test_statistics_shape(self, tiny_scale):
        result = table1.run(scale=tiny_scale)
        assert set(result) == {"twibot-20", "twibot-22", "mgtab"}
        for stats in result.values():
            assert stats["num_users"] == stats["num_human"] + stats["num_bot"]
            assert stats["num_relations"] in (2, 7)
        assert result["mgtab"]["num_relations"] == 7
        # Class-balance shape from Table I: TwiBot-22 is bot-minority,
        # TwiBot-20 is roughly balanced.
        t22 = result["twibot-22"]
        assert t22["num_bot"] / t22["num_users"] < 0.35
        text = table1.format_result(result)
        assert "mgtab" in text


class TestTable2Subset:
    def test_runs_for_detector_subset(self, tiny_scale):
        result = table2.run(
            benchmarks=("mgtab",), detectors=("mlp", "gcn"), scale=tiny_scale
        )
        assert set(result) == {"mlp", "gcn"}
        metrics = result["mlp"]["mgtab"]
        assert 0.0 <= metrics["accuracy_mean"] <= 100.0
        assert 0.0 <= metrics["f1_mean"] <= 100.0
        text = table2.format_result(result)
        assert "mlp" in text


class TestFigureExperiments:
    def test_fig2_bots_use_fewer_categories(self, tiny_scale):
        result = fig2.run(scale=tiny_scale)
        assert result["bot_mean_categories"] < result["human_mean_categories"]
        assert abs(sum(result["bot_percentage"]) - 1.0) < 1e-6
        assert abs(sum(result["human_percentage"]) - 1.0) < 1e-6
        assert "categories" in fig2.format_result(result)

    def test_fig3_bots_are_more_regular(self, tiny_scale):
        result = fig3.run(scale=tiny_scale)
        assert result["bot_mean_cv"] < result["human_mean_cv"]
        assert len(result["communities"]) >= 1
        series = result["communities"][0]
        assert len(series["bot_series"]) == len(series["human_series"])

    def test_fig4_buckets_cover_test_nodes(self, tiny_scale):
        result = fig4.run(scale=tiny_scale)
        assert 0.0 <= result["graph_homophily"] <= 1.0
        assert len(result["buckets"]) == 4
        total = sum(entry["count"] for entry in result["buckets"].values())
        assert total > 0
        text = fig4.format_result(result)
        assert "GCN" in text

    def test_fig8_homophily_structure(self, tiny_scale):
        result = fig8.run(scale=tiny_scale, max_nodes=120)
        assert set(result) >= {"all", "bot", "human", "k"}
        # At tiny scale the bot-homophily *increase* is too noisy to assert
        # (the bench-scale run checks it); here we check the structural shape:
        # overall homophily does not degrade and humans stay homophilic.
        assert result["all"]["biased_subgraph"] >= result["all"]["original"] - 0.05
        assert result["human"]["biased_subgraph"] > 0.5
        assert 0.0 <= result["bot"]["biased_subgraph"] <= 1.0
        text = fig8.format_result(result)
        assert "bot" in text
