"""Tests for the multi-source (batched) PPR engine."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ppr import approximate_ppr, multi_source_ppr, power_iteration_ppr


def random_graph(num_nodes: int, density: float, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    dense = (rng.random((num_nodes, num_nodes)) < density).astype(float)
    np.fill_diagonal(dense, 0)
    return sp.csr_matrix(dense)


class TestMultiSourcePPR:
    def test_shape_and_row_order(self):
        adjacency = random_graph(20, 0.3, seed=0)
        sources = [5, 2, 11]
        scores = multi_source_ppr(adjacency, sources)
        assert scores.shape == (3, 20)
        for row, source in enumerate(sources):
            dense = scores.getrow(row).toarray().ravel()
            assert dense.argmax() == source

    def test_agrees_with_single_source_push(self):
        """Batched rows stay within the shared epsilon residual bound of the
        queue-based single-source push."""
        adjacency = random_graph(40, 0.15, seed=1)
        sources = np.arange(40)
        scores = multi_source_ppr(adjacency, sources, alpha=0.2, epsilon=1e-5)
        for source in sources:
            estimates = approximate_ppr(adjacency, int(source), alpha=0.2, epsilon=1e-5)
            single = np.zeros(40)
            for node, value in estimates.items():
                single[node] = value
            batched = scores.getrow(source).toarray().ravel()
            assert np.abs(batched - single).max() < 1e-3

    def test_close_to_exact_power_iteration(self):
        adjacency = random_graph(30, 0.2, seed=2)
        scores = multi_source_ppr(adjacency, [0, 7, 19], alpha=0.15, epsilon=1e-7)
        for row, source in enumerate([0, 7, 19]):
            exact = power_iteration_ppr(adjacency, source, alpha=0.15)
            batched = scores.getrow(row).toarray().ravel()
            assert np.abs(batched - exact).max() < 1e-3

    def test_single_source_call_matches_batch_row(self):
        """A 1-source call is bit-identical to the same row of a larger batch
        (rows evolve independently), which is what makes the per-node and
        batched subgraph engines select identical neighbour sets."""
        adjacency = random_graph(25, 0.25, seed=3)
        batch = multi_source_ppr(adjacency, np.arange(25), epsilon=1e-4)
        for source in (0, 9, 24):
            single = multi_source_ppr(adjacency, [source], epsilon=1e-4)
            assert (batch.getrow(source) != single.getrow(0)).nnz == 0

    def test_chunking_does_not_change_results(self):
        adjacency = random_graph(30, 0.2, seed=4)
        whole = multi_source_ppr(adjacency, np.arange(30))
        chunked = multi_source_ppr(adjacency, np.arange(30), chunk_rows=7)
        assert (whole != chunked).nnz == 0

    def test_dangling_mass_returns_to_source(self):
        adjacency = sp.csr_matrix(np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=float))
        scores = multi_source_ppr(adjacency, [0, 1, 2], alpha=0.2, epsilon=1e-9)
        for row in range(3):
            exact = power_iteration_ppr(adjacency, row, alpha=0.2)
            batched = scores.getrow(row).toarray().ravel()
            assert np.abs(batched - exact).max() < 1e-6

    def test_mass_bounded_by_one(self):
        adjacency = random_graph(30, 0.2, seed=5)
        scores = multi_source_ppr(adjacency, np.arange(30), epsilon=1e-5)
        row_sums = np.asarray(scores.sum(axis=1)).ravel()
        assert np.all(row_sums > 0)
        assert np.all(row_sums <= 1.0 + 1e-9)

    def test_disconnected_components_stay_local(self):
        block = np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=float)
        adjacency = sp.block_diag([block, block]).tocsr()
        scores = multi_source_ppr(adjacency, [0], epsilon=1e-8)
        touched = scores.getrow(0).indices
        assert np.all(touched < 3)

    def test_empty_sources(self):
        adjacency = random_graph(10, 0.3, seed=6)
        scores = multi_source_ppr(adjacency, [])
        assert scores.shape == (0, 10)

    def test_prepared_operator_matches_direct_call(self):
        from repro.ppr import PushOperator

        adjacency = random_graph(25, 0.25, seed=8)
        operator = PushOperator(adjacency)
        direct = multi_source_ppr(adjacency, np.arange(25))
        prepared = multi_source_ppr(adjacency, np.arange(25), prepared=operator)
        assert (direct != prepared).nnz == 0

    def test_invalid_arguments_rejected(self):
        adjacency = random_graph(10, 0.3, seed=7)
        with pytest.raises(ValueError):
            multi_source_ppr(adjacency, [0], alpha=1.5)
        with pytest.raises(ValueError):
            multi_source_ppr(adjacency, [0], epsilon=0.0)
        with pytest.raises(ValueError):
            multi_source_ppr(adjacency, [12])
        with pytest.raises(ValueError):
            multi_source_ppr(adjacency, [0], sparse_density=1.5)
        for bad_rows in (0, -1):
            with pytest.raises(ValueError, match="chunk_rows"):
                multi_source_ppr(adjacency, [0], frontier="sparse", chunk_rows=bad_rows)
            with pytest.raises(ValueError, match="chunk_rows"):
                multi_source_ppr(adjacency, [0], frontier="dense", chunk_rows=bad_rows)


class TestColumnSparseResiduals:
    """The column-sparse push rounds must be *bit-identical* to the dense
    ones — the subgraph engines rely on exact agreement between per-node and
    batched sweeps, so mode decisions may never leak into the results."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_forced_sparse_matches_forced_dense(self, seed):
        adjacency = random_graph(50, 0.08, seed=seed)
        sources = np.arange(50)
        dense = multi_source_ppr(adjacency, sources, epsilon=1e-6, sparse_density=0.0)
        sparse = multi_source_ppr(adjacency, sources, epsilon=1e-6, sparse_density=1.0)
        assert (dense != sparse).nnz == 0
        np.testing.assert_array_equal(dense.data, sparse.data)
        np.testing.assert_array_equal(dense.indices, sparse.indices)

    def test_sparse_matches_dense_with_dangling_nodes(self):
        rng = np.random.default_rng(5)
        dense_matrix = (rng.random((40, 40)) < 0.1).astype(float)
        np.fill_diagonal(dense_matrix, 0)
        dense_matrix[rng.choice(40, 6, replace=False)] = 0.0  # dangling rows
        adjacency = sp.csr_matrix(dense_matrix)
        dense = multi_source_ppr(adjacency, np.arange(40), epsilon=1e-7, sparse_density=0.0)
        sparse = multi_source_ppr(adjacency, np.arange(40), epsilon=1e-7, sparse_density=1.0)
        assert (dense != sparse).nnz == 0
        np.testing.assert_array_equal(dense.data, sparse.data)

    def test_auto_mode_matches_dense(self):
        adjacency = random_graph(80, 0.05, seed=9)
        sources = np.arange(80)
        dense = multi_source_ppr(adjacency, sources, epsilon=1e-6, sparse_density=0.0)
        auto = multi_source_ppr(adjacency, sources, epsilon=1e-6)
        assert (dense != auto).nnz == 0
        np.testing.assert_array_equal(dense.data, auto.data)

    def test_mode_independent_of_chunking(self):
        """Sparse-mode decisions are per chunk, yet results must not depend
        on how sources are chunked (rows evolve independently)."""
        adjacency = random_graph(45, 0.1, seed=4)
        whole = multi_source_ppr(adjacency, np.arange(45), sparse_density=1.0)
        chunked = multi_source_ppr(adjacency, np.arange(45), chunk_rows=6, sparse_density=1.0)
        assert (whole != chunked).nnz == 0

    def test_single_row_matches_batch_row_in_sparse_mode(self):
        adjacency = random_graph(30, 0.15, seed=6)
        batch = multi_source_ppr(adjacency, np.arange(30), sparse_density=1.0)
        single = multi_source_ppr(adjacency, [11], sparse_density=1.0)
        assert (batch.getrow(11) != single.getrow(0)).nnz == 0


class TestSparseFrontier:
    """The sparse-frontier residual storage must be *bit-identical* to the
    dense reference path: the frontier only changes where residuals live in
    memory, never the arithmetic performed on them."""

    @pytest.mark.parametrize("alpha", [0.1, 0.15, 0.3])
    @pytest.mark.parametrize("epsilon", [1e-3, 1e-5, 1e-7])
    def test_frontier_matches_dense_across_grid(self, alpha, epsilon):
        adjacency = random_graph(60, 0.08, seed=12)
        sources = np.arange(60)
        dense = multi_source_ppr(
            adjacency, sources, alpha=alpha, epsilon=epsilon, frontier="dense"
        )
        sparse = multi_source_ppr(
            adjacency, sources, alpha=alpha, epsilon=epsilon, frontier="sparse"
        )
        assert (dense != sparse).nnz == 0
        np.testing.assert_array_equal(dense.data, sparse.data)
        np.testing.assert_array_equal(dense.indices, sparse.indices)
        np.testing.assert_array_equal(dense.indptr, sparse.indptr)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_frontier_matches_dense_with_dangling_nodes(self, seed):
        rng = np.random.default_rng(seed)
        dense_matrix = (rng.random((50, 50)) < 0.08).astype(float)
        np.fill_diagonal(dense_matrix, 0)
        dense_matrix[rng.choice(50, 7, replace=False)] = 0.0  # dangling rows
        adjacency = sp.csr_matrix(dense_matrix)
        dense = multi_source_ppr(adjacency, np.arange(50), epsilon=1e-6, frontier="dense")
        sparse = multi_source_ppr(adjacency, np.arange(50), epsilon=1e-6, frontier="sparse")
        assert (dense != sparse).nnz == 0
        np.testing.assert_array_equal(dense.data, sparse.data)

    def test_frontier_independent_of_chunking(self):
        adjacency = random_graph(45, 0.1, seed=4)
        whole = multi_source_ppr(adjacency, np.arange(45), frontier="sparse", chunk_rows=45)
        chunked = multi_source_ppr(adjacency, np.arange(45), frontier="sparse", chunk_rows=7)
        assert (whole != chunked).nnz == 0

    def test_frontier_composes_with_column_sparse_rounds(self):
        """frontier='dense' still runs the column-sparse round gating; all
        three storage/round combinations agree exactly."""
        adjacency = random_graph(80, 0.05, seed=9)
        sources = np.arange(80)
        reference = multi_source_ppr(
            adjacency, sources, frontier="dense", sparse_density=0.0
        )
        gated = multi_source_ppr(adjacency, sources, frontier="dense")
        frontier = multi_source_ppr(adjacency, sources, frontier="sparse")
        assert (reference != gated).nnz == 0
        assert (reference != frontier).nnz == 0

    def test_auto_mode_matches_explicit(self):
        adjacency = random_graph(40, 0.1, seed=3)
        auto = multi_source_ppr(adjacency, np.arange(40))  # small graph -> dense
        explicit = multi_source_ppr(adjacency, np.arange(40), frontier="sparse")
        assert (auto != explicit).nnz == 0

    def test_invalid_frontier_rejected(self):
        adjacency = random_graph(10, 0.3, seed=7)
        with pytest.raises(ValueError, match="frontier"):
            multi_source_ppr(adjacency, [0], frontier="bogus")

    def test_stats_report_sublinear_peak_memory(self):
        """The point of the frontier: the residual block follows the touched
        set, not ``num_nodes`` — on a locally-converging push the sparse
        peak must be far below the dense ``rows x num_nodes`` block."""
        rng = np.random.default_rng(11)
        n = 10_000
        src = rng.integers(0, n, n * 3)
        dst = rng.integers(0, n, n * 3)
        keep = src != dst
        adjacency = sp.coo_matrix(
            (np.ones(int(keep.sum())), (src[keep], dst[keep])), shape=(n, n)
        ).tocsr()
        dense_stats: dict = {}
        sparse_stats: dict = {}
        sources = np.arange(16)
        dense = multi_source_ppr(
            adjacency, sources, epsilon=3e-3, frontier="dense", stats=dense_stats
        )
        sparse = multi_source_ppr(
            adjacency, sources, epsilon=3e-3, frontier="sparse", stats=sparse_stats
        )
        assert (dense != sparse).nnz == 0
        assert dense_stats["frontier"] == "dense"
        assert sparse_stats["frontier"] == "sparse"
        assert sparse_stats["rounds"] > 0
        assert dense_stats["peak_block_floats"] == 2 * sources.size * n
        assert sparse_stats["peak_block_floats"] < dense_stats["peak_block_floats"] / 4

    def test_empty_sources_with_stats(self):
        adjacency = random_graph(10, 0.3, seed=6)
        stats: dict = {}
        scores = multi_source_ppr(adjacency, [], frontier="sparse", stats=stats)
        assert scores.shape == (0, 10)
        assert stats["rounds"] == 0


class TestAdaptiveChunking:
    """``chunk_rows=None`` with the sparse frontier sizes chunks adaptively:
    grow while the predicted block (rows x last touched union) stays under
    the float budget, shrink when it overshoots.  Sources push independently,
    so every policy must stay bit-identical to the fixed 16-row one."""

    def clustered_graph(self, num_cliques: int, clique_size: int) -> sp.csr_matrix:
        """Disconnected cliques: touched unions stay tiny per chunk."""
        block = np.ones((clique_size, clique_size)) - np.eye(clique_size)
        return sp.block_diag([block] * num_cliques).tocsr()

    def test_adaptive_matches_fixed_16(self):
        adjacency = random_graph(60, 0.08, seed=21)
        sources = np.arange(60)
        fixed = multi_source_ppr(
            adjacency, sources, epsilon=1e-6, frontier="sparse", chunk_rows=16
        )
        stats: dict = {}
        adaptive = multi_source_ppr(
            adjacency, sources, epsilon=1e-6, frontier="sparse", stats=stats
        )
        assert (fixed != adaptive).nnz == 0
        np.testing.assert_array_equal(fixed.data, adaptive.data)
        np.testing.assert_array_equal(fixed.indices, adaptive.indices)
        assert sum(stats["chunk_rows"]) == sources.size

    def test_chunks_grow_on_clustered_graph(self):
        from repro.ppr.batch import _FRONTIER_CHUNK_ROWS

        adjacency = self.clustered_graph(num_cliques=200, clique_size=4)
        sources = np.arange(96)
        stats: dict = {}
        adaptive = multi_source_ppr(
            adjacency, sources, epsilon=1e-6, frontier="sparse", stats=stats
        )
        # Tiny unions: the chunk doubles away from the fixed starting size,
        # so the sweep takes fewer chunks than the fixed policy would.
        assert max(stats["chunk_rows"]) > _FRONTIER_CHUNK_ROWS
        assert len(stats["chunk_rows"]) < int(np.ceil(96 / _FRONTIER_CHUNK_ROWS))
        fixed = multi_source_ppr(
            adjacency, sources, epsilon=1e-6, frontier="sparse", chunk_rows=16
        )
        assert (fixed != adaptive).nnz == 0

    def test_chunks_shrink_when_budget_exceeded(self, monkeypatch):
        import repro.ppr.batch as batch_module

        # A well-mixed graph: every chunk's union reaches ~all columns, so a
        # tiny budget must drive the chunk size down to the floor.
        adjacency = random_graph(80, 0.2, seed=22)
        monkeypatch.setattr(batch_module, "_FRONTIER_BLOCK_BUDGET", 64)
        sources = np.arange(80)
        stats: dict = {}
        adaptive = multi_source_ppr(
            adjacency, sources, epsilon=1e-6, frontier="sparse", stats=stats
        )
        assert min(stats["chunk_rows"]) == batch_module._FRONTIER_CHUNK_MIN
        dense = multi_source_ppr(adjacency, sources, epsilon=1e-6, frontier="dense")
        assert (dense != adaptive).nnz == 0

    def test_stats_dict_reuse_resets_chunk_rows(self):
        adjacency = random_graph(40, 0.1, seed=5)
        stats: dict = {}
        multi_source_ppr(adjacency, np.arange(40), frontier="sparse", stats=stats)
        first = list(stats["chunk_rows"])
        multi_source_ppr(adjacency, np.arange(40), frontier="sparse", stats=stats)
        assert stats["chunk_rows"] == first  # no accumulation across calls
        assert sum(stats["chunk_rows"]) == 40

    def test_explicit_chunk_rows_stays_fixed(self):
        adjacency = self.clustered_graph(num_cliques=50, clique_size=4)
        stats: dict = {}
        multi_source_ppr(
            adjacency, np.arange(48), frontier="sparse", chunk_rows=16, stats=stats
        )
        assert stats["chunk_rows"] == [16, 16, 16]
