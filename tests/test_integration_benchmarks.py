"""Cross-module integration tests on the real (tiny) synthetic benchmarks.

These close the loop from raw simulated accounts all the way to detector
metrics, the same path the benchmark harness takes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import get_detector
from repro.core import BSG4Bot, BSG4BotConfig
from repro.core.preclassifier import PretrainedClassifier
from repro.graph.homophily import graph_homophily_ratio
from repro.sampling import BiasedSubgraphBuilder


@pytest.fixture(scope="module")
def fast_config():
    return BSG4BotConfig(
        pretrain_epochs=20,
        pretrain_hidden_dim=16,
        hidden_dim=16,
        subgraph_k=4,
        max_epochs=10,
        patience=4,
        batch_size=32,
        seed=0,
    )


class TestBenchmarkIntegration:
    def test_bsg4bot_beats_chance_on_mgtab(self, tiny_mgtab, fast_config):
        detector = BSG4Bot(fast_config)
        detector.fit(tiny_mgtab.graph)
        metrics = detector.evaluate(tiny_mgtab.graph)
        majority = 100.0 * max(
            1 - tiny_mgtab.graph.labels.mean(), tiny_mgtab.graph.labels.mean()
        )
        assert metrics["accuracy"] >= majority - 15.0
        assert metrics["f1"] > 0.0

    def test_mlp_baseline_on_mgtab(self, tiny_mgtab):
        detector = get_detector("mlp", hidden_dim=16, max_epochs=30, patience=5)
        detector.fit(tiny_mgtab.graph)
        assert detector.evaluate(tiny_mgtab.graph)["accuracy"] > 60.0

    def test_biased_subgraphs_on_real_benchmark_increase_bot_homophily(self, tiny_twibot22):
        graph = tiny_twibot22.graph
        classifier = PretrainedClassifier(graph.num_features, hidden_dim=16, epochs=25)
        classifier.fit_graph(graph)
        embeddings = classifier.hidden_representations(graph.features)
        builder = BiasedSubgraphBuilder(graph, embeddings, k=4)

        from repro.graph.homophily import node_homophily_ratios

        original = node_homophily_ratios(graph.merged_adjacency(), graph.labels)
        bots = np.flatnonzero(graph.labels == 1)[:30]
        original_bot_h = np.nanmean(original[bots])
        subgraph_bot_h = np.nanmean(
            [builder.build(int(b)).center_homophily(graph.labels) for b in bots]
        )
        assert subgraph_bot_h >= original_bot_h - 0.05

    def test_graph_homophily_profiles_match_paper_direction(self, tiny_twibot22, tiny_mgtab):
        from repro.graph.homophily import node_homophily_ratios

        t22 = tiny_twibot22.graph
        ratios = node_homophily_ratios(t22.merged_adjacency(), t22.labels)
        bot_h = np.nanmean(ratios[t22.labels == 1])
        human_h = np.nanmean(ratios[t22.labels == 0])
        # Figure 8 baseline: bots are strongly heterophilic, humans homophilic.
        assert bot_h < 0.5
        assert human_h > 0.6
        # MGTAB graph-level homophily sits in a homophilic regime (paper: 0.65).
        mg = tiny_mgtab.graph
        assert graph_homophily_ratio(mg.merged_adjacency(), mg.labels) > 0.5

    def test_bsg4bot_transfer_between_communities(self, tiny_twibot22, fast_config):
        from repro.datasets.splits import split_masks

        train_graph = tiny_twibot22.community_graph(0)
        train, val, test = split_masks(
            train_graph.num_nodes, seed=0, labels=train_graph.labels
        )
        train_graph.train_mask, train_graph.val_mask, train_graph.test_mask = train, val, test
        detector = BSG4Bot(fast_config)
        detector.fit(train_graph)
        other = tiny_twibot22.community_graph(1)
        predictions = detector.predict(other)
        assert predictions.shape == (other.num_nodes,)
        assert set(np.unique(predictions)) <= {0, 1}
