"""Equivalence, caching and speed tests for the vectorized epoch engine
(flat block-diagonal collation + cross-epoch batch cache)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling import (
    BiasedSubgraphBuilder,
    SubgraphStore,
    collate_many,
    collate_subgraphs,
)
from tests.conftest import make_separable_graph


@pytest.fixture(scope="module")
def hetero_graph():
    return make_separable_graph(num_nodes=110, num_relations=3, homophily=0.7, seed=11)


@pytest.fixture(scope="module")
def store(hetero_graph):
    builder = BiasedSubgraphBuilder(hetero_graph, hetero_graph.features, k=5)
    return builder.build_store(range(hetero_graph.num_nodes))


def assert_same_batch(reference, flat) -> None:
    """Bit-identical SubgraphBatch contents (the acceptance contract)."""
    np.testing.assert_array_equal(reference.features, flat.features)
    np.testing.assert_array_equal(reference.center_positions, flat.center_positions)
    np.testing.assert_array_equal(reference.center_nodes, flat.center_nodes)
    np.testing.assert_array_equal(reference.labels, flat.labels)
    assert set(reference.relation_adjacencies) == set(flat.relation_adjacencies)
    for name, left in reference.relation_adjacencies.items():
        right = flat.relation_adjacencies[name]
        assert left.shape == right.shape
        np.testing.assert_array_equal(left.indptr, right.indptr)
        np.testing.assert_array_equal(left.indices, right.indices)
        np.testing.assert_array_equal(left.data, right.data)


class TestFlatCollationEquivalence:
    def test_matches_reference_across_shuffled_batches(self, hetero_graph, store):
        """Flat collation is bit-identical to ``collate_subgraphs`` —
        features, every relation's indptr/indices/data, center positions
        and labels — across shuffled batch memberships and orders."""
        rng = np.random.default_rng(3)
        for _ in range(6):
            chunk = rng.permutation(hetero_graph.num_nodes)[:41]
            reference = collate_subgraphs(store.subgraphs(chunk), hetero_graph)
            assert_same_batch(reference, collate_many(store, chunk))

    def test_matches_reference_unnormalized(self, hetero_graph, store):
        chunk = np.array([9, 2, 30, 77])
        reference = collate_subgraphs(store.subgraphs(chunk), hetero_graph, normalize=False)
        assert_same_batch(reference, collate_many(store, chunk, normalize=False))

    def test_single_subgraph_batch(self, hetero_graph, store):
        reference = collate_subgraphs(store.subgraphs([4]), hetero_graph)
        assert_same_batch(reference, collate_many(store, [4]))

    def test_empty_batch_rejected(self, store):
        with pytest.raises(ValueError):
            collate_many(store, [])

    def test_missing_center_raises_keyerror(self, store):
        with pytest.raises(KeyError):
            collate_many(store, [10_000])

    def test_pack_extends_after_append(self, hetero_graph):
        """Appending subgraphs reuses the existing flat arrays (the pack is
        extended, not rebuilt from scratch) and collation stays exact."""
        builder = BiasedSubgraphBuilder(hetero_graph, hetero_graph.features, k=5)
        store = builder.build_store(range(20))
        store.collate(range(20))  # builds the pack
        assert store.has_collation_pack()
        before = store._collation_pack(True)
        builder.build_store(range(20, 30), store=store)
        assert not store.has_collation_pack()
        chunk = np.arange(5, 28)
        reference = collate_subgraphs(store.subgraphs(chunk), hetero_graph)
        assert_same_batch(reference, collate_many(store, chunk))
        after = store._collation_pack(True)
        assert after.num_subgraphs == 30
        # The first 20 subgraphs' flat node segment is shared, not recopied.
        np.testing.assert_array_equal(
            after.nodes_flat[: before.nodes_flat.size], before.nodes_flat
        )


class TestBatchCache:
    def test_collate_canonicalizes_and_hits_on_membership(self, store):
        store.cache_hits = store.cache_misses = 0
        first = store.collate([8, 3, 5])
        assert first.center_nodes.tolist() == [3, 5, 8]
        again = store.collate(np.array([5, 8, 3]))
        assert store.cache_hits == 1 and store.cache_misses == 1
        # Hits share the assembled adjacencies; only features are
        # re-gathered (the cache does not hold dense feature blocks).
        for name, adjacency in first.relation_adjacencies.items():
            assert again.relation_adjacencies[name] is adjacency
        assert_same_batch(first, again)

    def test_normalize_flag_keys_separately(self, store):
        normalized = store.collate([1, 2])
        raw = store.collate([1, 2], normalize=False)
        for name, adjacency in normalized.relation_adjacencies.items():
            assert raw.relation_adjacencies[name] is not adjacency

    def test_cache_disabled(self, store):
        one = store.collate([6, 7], use_cache=False)
        two = store.collate([6, 7], use_cache=False)
        assert one is not two
        assert_same_batch(one, two)

    def test_eviction_respects_capacity(self, hetero_graph):
        builder = BiasedSubgraphBuilder(hetero_graph, hetero_graph.features, k=4)
        small = builder.build_store(range(12))
        small.cache_capacity = 2
        small.collate([0, 1])
        small.collate([2, 3])
        small.collate([4, 5])  # evicts [0, 1]
        hits = small.cache_hits
        small.collate([0, 1])
        assert small.cache_hits == hits  # miss: had been evicted
        assert len(small._batch_cache) == 2

    def test_batches_iterate_through_cache(self, hetero_graph, store):
        nodes = np.arange(40)
        store.cache_hits = store.cache_misses = 0
        list(store.batches(nodes, batch_size=16))
        assert store.cache_misses > 0 and store.cache_hits == 0
        list(store.batches(nodes, batch_size=16))
        assert store.cache_hits >= store.cache_misses

    def test_shuffled_epochs_same_membership_hit(self, hetero_graph, store):
        """A re-shuffled epoch whose batch covers the same membership (the
        single-batch regime of small splits) is served from cache."""
        nodes = np.arange(24)
        first = list(store.batches(nodes, batch_size=24, rng=np.random.default_rng(0)))
        second = list(store.batches(nodes, batch_size=24, rng=np.random.default_rng(9)))
        for name, adjacency in first[0].relation_adjacencies.items():
            assert second[0].relation_adjacencies[name] is adjacency
        assert_same_batch(first[0], second[0])

    def test_batches_accept_ndarray_without_copy_roundtrip(self, store):
        seen = []
        for batch in store.batches(np.arange(10), batch_size=4):
            seen.extend(batch.center_nodes.tolist())
        assert sorted(seen) == list(range(10))

    def test_batches_equivalent_to_reference(self, hetero_graph, store):
        """Every yielded batch equals the reference collation of the same
        (canonicalized) membership."""
        rng = np.random.default_rng(5)
        shuffled = rng.permutation(60)
        for start, batch in zip(
            range(0, 60, 13), store.batches(shuffled, 13, use_cache=False)
        ):
            members = np.sort(shuffled[start : start + 13])
            reference = collate_subgraphs(store.subgraphs(members), hetero_graph)
            assert_same_batch(reference, batch)


class TestPositionsOf:
    def test_vectorized_lookup_matches_dict(self, store):
        nodes = np.array([17, 0, 42, 3])
        positions = store.positions_of(nodes)
        ordered = store.subgraphs()
        for node, position in zip(nodes, positions):
            assert ordered[position].center == node

    def test_duplicates_allowed(self, store):
        positions = store.positions_of([5, 5, 5])
        assert len(set(positions.tolist())) == 1

    def test_empty_input(self, store):
        assert store.positions_of([]).size == 0

    def test_missing_raises(self, hetero_graph):
        empty = SubgraphStore(hetero_graph)
        with pytest.raises(KeyError):
            empty.positions_of([0])


class TestCollationSpeed:
    def test_flat_collation_is_faster_at_benchmark_scale(self):
        """Acceptance check: >= 4x over ``collate_subgraphs`` for the same
        shuffled epoch of batches, with bit-identical contents.

        Both paths are warmed first (per-subgraph normalization caches for
        the reference, the flat pack for the engine) so the measurement is
        the steady-state per-epoch assembly cost, and CPU time best-of-3
        keeps it stable on shared machines.
        """
        import time

        graph = make_separable_graph(num_nodes=450, num_relations=2, seed=29)
        builder = BiasedSubgraphBuilder(graph, graph.features, k=8)
        store = builder.build_store(range(graph.num_nodes))
        rng = np.random.default_rng(0)
        epoch = [rng.permutation(graph.num_nodes)[start : start + 64] for start in range(0, 450, 64)]

        reference_batches = [collate_subgraphs(store.subgraphs(c), graph) for c in epoch]
        flat_batches = [collate_many(store, c) for c in epoch]
        for reference, flat in zip(reference_batches, flat_batches):
            assert_same_batch(reference, flat)

        def cpu_time(func):
            best = float("inf")
            for _ in range(3):
                start = time.process_time()
                for _ in range(5):
                    func()
                best = min(best, time.process_time() - start)
            return best

        reference_time = cpu_time(
            lambda: [collate_subgraphs(store.subgraphs(c), graph) for c in epoch]
        )
        flat_time = cpu_time(lambda: [collate_many(store, c) for c in epoch])
        speedup = reference_time / flat_time
        assert speedup >= 4.0, f"flat collation only {speedup:.1f}x faster"
