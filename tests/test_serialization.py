"""Tests for saving/loading model parameters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serialization import load_module_state, save_module_state
from repro.nn import MLPBlock
from repro.tensor import Module, Tensor
from tests.conftest import make_separable_graph


class TestModuleSerialization:
    def test_roundtrip_restores_outputs(self, tmp_path):
        rng = np.random.default_rng(0)
        source = MLPBlock(6, 8, 2, np.random.default_rng(1))
        target = MLPBlock(6, 8, 2, np.random.default_rng(2))
        inputs = Tensor(rng.normal(size=(5, 6)))
        assert not np.allclose(source(inputs).numpy(), target(inputs).numpy())

        path = save_module_state(source, tmp_path / "weights.npz")
        load_module_state(target, path)
        np.testing.assert_allclose(source(inputs).numpy(), target(inputs).numpy())

    def test_save_creates_parent_directories(self, tmp_path):
        model = MLPBlock(3, 4, 2, np.random.default_rng(0))
        path = save_module_state(model, tmp_path / "nested" / "dir" / "w.npz")
        assert path.exists()

    def test_save_empty_module_rejected(self, tmp_path):
        class Empty(Module):
            def forward(self, x):
                return x

        with pytest.raises(ValueError):
            save_module_state(Empty(), tmp_path / "empty.npz")

    def test_load_missing_file_rejected(self, tmp_path):
        model = MLPBlock(3, 4, 2, np.random.default_rng(0))
        with pytest.raises(FileNotFoundError):
            load_module_state(model, tmp_path / "missing.npz")

    def test_load_architecture_mismatch_rejected(self, tmp_path):
        small = MLPBlock(3, 4, 2, np.random.default_rng(0))
        large = MLPBlock(3, 16, 2, np.random.default_rng(0))
        path = save_module_state(small, tmp_path / "small.npz")
        with pytest.raises(ValueError):
            load_module_state(large, path)

    def test_bsg4bot_model_roundtrip(self, tmp_path):
        """Persist a trained BSG4Bot GNN and restore it into a fresh pipeline."""
        from repro.core import BSG4Bot, BSG4BotConfig
        from repro.sampling import collate_subgraphs

        graph = make_separable_graph(num_nodes=60, seed=20)
        config = BSG4BotConfig(
            pretrain_epochs=10, hidden_dim=8, pretrain_hidden_dim=8,
            subgraph_k=3, max_epochs=3, min_epochs=1, patience=2, batch_size=16,
        )
        detector = BSG4Bot(config)
        detector.fit(graph)
        path = save_module_state(detector.model, tmp_path / "bsg4bot.npz")

        clone = BSG4Bot(config)
        clone.fit(graph)  # builds the same architecture with fresh weights
        load_module_state(clone.model, path)

        batch = collate_subgraphs(detector.store.subgraphs(graph.train_indices()[:4]), graph)
        detector.model.eval()
        clone.model.eval()
        np.testing.assert_allclose(
            detector.model(batch).numpy(), clone.model(batch).numpy(), atol=1e-10
        )
