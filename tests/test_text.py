"""Tests for the tokenizer, the pseudo text encoder and K-Means."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import KMeans, PseudoTextEncoder, simple_tokenize
from repro.datasets.topics import TOPIC_KEYWORDS, compose_tweet


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert simple_tokenize("Hello World") == ["hello", "world"]

    def test_keeps_mentions_and_hashtags(self):
        tokens = simple_tokenize("@user check #crypto now!")
        assert "@user" in tokens
        assert "#crypto" in tokens

    def test_strips_punctuation(self):
        assert simple_tokenize("wow!!! really???") == ["wow", "really"]

    def test_empty_string(self):
        assert simple_tokenize("") == []

    def test_numbers_preserved(self):
        assert "2024" in simple_tokenize("season 2024 finale")


class TestPseudoTextEncoder:
    def test_output_dimension(self):
        encoder = PseudoTextEncoder(dim=48)
        assert encoder.encode("hello world").shape == (48,)

    def test_deterministic_across_instances(self):
        a = PseudoTextEncoder(dim=32, seed=1).encode("bitcoin airdrop now")
        b = PseudoTextEncoder(dim=32, seed=1).encode("bitcoin airdrop now")
        np.testing.assert_allclose(a, b)

    def test_seed_changes_embedding(self):
        a = PseudoTextEncoder(dim=32, seed=1).encode("bitcoin airdrop now")
        b = PseudoTextEncoder(dim=32, seed=2).encode("bitcoin airdrop now")
        assert not np.allclose(a, b)

    def test_empty_text_is_zero_vector(self):
        encoder = PseudoTextEncoder(dim=16)
        np.testing.assert_allclose(encoder.encode("!!!"), np.zeros(16))

    def test_embeddings_are_unit_norm(self):
        encoder = PseudoTextEncoder(dim=32)
        vector = encoder.encode("stocks market earnings")
        assert np.linalg.norm(vector) == pytest.approx(1.0, abs=1e-9)

    def test_same_topic_closer_than_different_topic(self):
        encoder = PseudoTextEncoder(dim=64, seed=0)
        rng = np.random.default_rng(0)
        crypto_a = encoder.encode(compose_tweet("crypto", rng))
        crypto_b = encoder.encode(compose_tweet("crypto", rng))
        sports = encoder.encode(compose_tweet("sports", rng))
        same = float(crypto_a @ crypto_b)
        different = float(crypto_a @ sports)
        assert same > different

    def test_encode_batch_shape(self):
        encoder = PseudoTextEncoder(dim=16)
        batch = encoder.encode_batch(["a b c", "d e", "f"])
        assert batch.shape == (3, 16)

    def test_encode_batch_empty(self):
        encoder = PseudoTextEncoder(dim=16)
        assert encoder.encode_batch([]).shape == (0, 16)

    def test_encode_user_averages(self):
        encoder = PseudoTextEncoder(dim=16)
        vector = encoder.encode_user(["hello world", "hello world"])
        np.testing.assert_allclose(vector, encoder.encode("hello world"), atol=1e-12)

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            PseudoTextEncoder(dim=0)


class TestKMeans:
    def test_recovers_separated_blobs(self):
        rng = np.random.default_rng(0)
        blob_a = rng.normal(loc=0.0, scale=0.2, size=(50, 2))
        blob_b = rng.normal(loc=5.0, scale=0.2, size=(50, 2))
        points = np.vstack([blob_a, blob_b])
        assignments = KMeans(n_clusters=2, seed=0).fit_predict(points)
        # All points in each blob share one cluster id.
        assert len(set(assignments[:50])) == 1
        assert len(set(assignments[50:])) == 1
        assert assignments[0] != assignments[-1]

    def test_predict_requires_fit(self):
        with pytest.raises(RuntimeError):
            KMeans(n_clusters=2).predict(np.zeros((3, 2)))

    def test_rejects_more_clusters_than_points(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=10).fit(np.zeros((3, 2)))

    def test_rejects_nonpositive_clusters(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=0)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(60, 3))
        a = KMeans(n_clusters=4, seed=7).fit_predict(points)
        b = KMeans(n_clusters=4, seed=7).fit_predict(points)
        np.testing.assert_array_equal(a, b)

    def test_inertia_decreases_with_more_clusters(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(80, 4))
        few = KMeans(n_clusters=2, seed=0).fit(points)
        many = KMeans(n_clusters=8, seed=0).fit(points)
        assert many.inertia_ <= few.inertia_

    @given(
        n_points=st.integers(min_value=10, max_value=60),
        n_clusters=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_assignment_labels_in_range(self, n_points, n_clusters, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n_points, 3))
        if n_points < n_clusters:
            return
        assignments = KMeans(n_clusters=n_clusters, seed=seed).fit_predict(points)
        assert assignments.shape == (n_points,)
        assert assignments.min() >= 0
        assert assignments.max() < n_clusters

    def test_centroid_count(self):
        rng = np.random.default_rng(3)
        model = KMeans(n_clusters=5, seed=0).fit(rng.normal(size=(40, 2)))
        assert model.centroids.shape == (5, 2)


class TestTopics:
    def test_compose_tweet_contains_topic_keyword(self):
        rng = np.random.default_rng(0)
        for topic in ("crypto", "sports", "news"):
            tweet = compose_tweet(topic, rng)
            assert any(word in tweet for word in TOPIC_KEYWORDS[topic])

    def test_compose_tweet_with_mention(self):
        rng = np.random.default_rng(0)
        tweet = compose_tweet("memes", rng, mention="someone")
        assert tweet.startswith("@someone")
