"""Integration tests for ``repro.serving.DetectionService``: coalesced
scoring, read-your-writes update sequencing, telemetry, and lifecycle."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import api
from repro.core import BSG4Bot, BSG4BotConfig
from repro.sampling import biased
from repro.serving import DeltaLog, DetectionService, ServiceClosed
from tests.conftest import make_separable_graph

GRAPH_SEED = 33
GRAPH_NODES = 60


def _make_graph():
    return make_separable_graph(num_nodes=GRAPH_NODES, seed=GRAPH_SEED)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """One fitted detector persisted once; tests load isolated copies."""
    graph = _make_graph()
    config = BSG4BotConfig(
        pretrain_epochs=10, hidden_dim=8, pretrain_hidden_dim=8,
        subgraph_k=3, max_epochs=3, min_epochs=1, patience=2, batch_size=16,
    )
    detector = BSG4Bot(config)
    detector.fit(graph)
    return api.save_detector(detector, tmp_path_factory.mktemp("serving") / "artifact")


def _fresh(artifact):
    """An isolated (detector, graph) pair — loads are bit-identical."""
    graph = _make_graph()
    return api.load_detector(artifact, graph=graph), graph


def _service(artifact, **kwargs):
    detector, graph = _fresh(artifact)
    kwargs.setdefault("release_pool_on_close", False)
    return DetectionService(detector, graph, **kwargs)


class TestScoring:
    def test_sequential_scores_match_plain_session(self, artifact):
        nodes = [11, 3, 27, 5]
        detector, graph = _fresh(artifact)
        with api.DetectionSession(detector, graph) as session:
            expected = session.score_nodes(nodes)
        with _service(artifact) as service:
            np.testing.assert_array_equal(service.score(nodes), expected)

    def test_concurrent_burst_coalesces_and_slices_match_wave(self, artifact):
        # Deterministic coalescing: enqueue while the dispatcher is not yet
        # running, then start it — all requests must land in one wave.
        service = _service(artifact, autostart=False, record_waves=True,
                           max_batch_size=16)
        handles = [service.submit([node]) for node in (4, 9, 14, 19, 24)]
        service.start()
        rows = [handle.result(30.0) for handle in handles]
        assert all(handle.wave_requests == 5 for handle in handles)
        assert len(service.wave_log) == 1
        wave_nodes, wave_probabilities, _ = service.wave_log[0]
        np.testing.assert_array_equal(wave_nodes, [4, 9, 14, 19, 24])
        # Each caller's rows are exactly their slice of the wave output...
        for index, row in enumerate(rows):
            np.testing.assert_array_equal(row, wave_probabilities[index : index + 1])
        # ...and the wave replays bit-identically through serial scoring.
        detector, graph = _fresh(artifact)
        with api.DetectionSession(detector, graph) as replay:
            np.testing.assert_array_equal(
                replay.score_nodes(wave_nodes), wave_probabilities
            )
        service.close()

    def test_concurrent_threads_all_get_correct_rows(self, artifact):
        service = _service(artifact, max_wait_ms=5.0)
        results: dict = {}

        def client(node):
            results[node] = service.score([node], timeout=30.0)

        threads = [threading.Thread(target=client, args=(n,)) for n in range(24)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.drain()
        snapshot = service.snapshot()
        service.close()
        # Every caller got its own node's row, regardless of wave packing.
        detector, graph = _fresh(artifact)
        with api.DetectionSession(detector, graph) as session:
            for node in range(24):
                expected = session.score_nodes([node])
                # Same node set but possibly different wave composition —
                # identical only when the wave was exactly this request.
                assert results[node].shape == expected.shape
        assert snapshot["requests"] == 24
        assert snapshot["waves"] <= 24

    def test_empty_request_short_circuits(self, artifact):
        with _service(artifact) as service:
            assert service.score([]).shape == (0, 2)
            assert service.snapshot()["requests"] == 0

    def test_invalid_nodes_rejected_at_submit(self, artifact):
        # Validated before entering the queue: the bad producer fails alone
        # and nothing reaches the dispatcher (no wave-mates poisoned).
        with _service(artifact) as service:
            with pytest.raises(ValueError, match="out of range"):
                service.score([10_000])
            assert service.score([1]).shape == (1, 2)
            assert service.snapshot()["errors"] == 0
            assert service.snapshot()["requests"] == 1

    def test_wave_error_propagates_and_service_survives(self, artifact):
        service = _service(artifact)
        original = service.session.score_nodes
        calls = {"count": 0}

        def flaky(nodes):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient scoring failure")
            return original(nodes)

        service.session.score_nodes = flaky
        try:
            with pytest.raises(RuntimeError, match="transient"):
                service.score([1])
            assert service.score([1]).shape == (1, 2)
            assert service.snapshot()["errors"] == 1
        finally:
            service.session.score_nodes = original
            service.close()

    def test_warmup_primes_the_store(self, artifact):
        with _service(artifact) as service:
            elapsed = service.warmup()
            assert elapsed > 0
            store = service.session.store
            built_before = store.build_count
            service.score(store.nodes()[:4])
            assert store.build_count == built_before  # nothing rebuilt


class TestUpdates:
    def test_read_your_writes_feature_update(self, artifact):
        service = _service(artifact)
        node = 7
        new_row = service.graph.features[node] + 2.0
        seq = service.submit_update(features_changed={node: new_row.copy()})
        handle = service.submit([node])
        rows = handle.result(30.0)
        assert handle.delta_seq >= seq
        np.testing.assert_array_equal(service.graph.features[node], new_row)
        service.close()
        # The response equals a fresh session that applied the same delta.
        detector, graph = _fresh(artifact)
        with api.DetectionSession(detector, graph) as session:
            session.apply_delta(features_changed={node: new_row.copy()})
            np.testing.assert_array_equal(session.score_nodes([node]), rows)

    def test_edge_update_lands_in_graph_between_waves(self, artifact):
        with _service(artifact) as service:
            relation = service.graph.relation_names[0]
            before = service.graph.relation(relation).num_edges
            service.submit_update(edges_added={relation: ([0, 1], [2, 3])})
            service.score([0])  # forces application before the wave
            assert service.graph.relation(relation).num_edges == before + 2

    def test_invalid_update_rejected_eagerly(self, artifact):
        with _service(artifact) as service:
            with pytest.raises(KeyError, match="unknown relation"):
                service.submit_update(edges_added={"bogus": ([0], [1])})
            assert service.snapshot()["pending_deltas"] == 0

    def test_drain_applies_deltas_without_score_traffic(self, artifact):
        with _service(artifact) as service:
            node = 3
            new_row = service.graph.features[node] + 1.0
            seq = service.submit_update(features_changed={node: new_row.copy()})
            service.drain()
            assert service.delta_log.applied_seq == seq
            # drain() must not return inside the popped-but-unapplied window:
            # the metric is incremented only after application completed.
            assert service.snapshot()["deltas_applied"] == 1
            np.testing.assert_array_equal(service.graph.features[node], new_row)

    def test_close_flushes_pending_deltas(self, artifact):
        service = _service(artifact)
        node = 5
        new_row = service.graph.features[node] + 1.0
        seq = service.submit_update(features_changed={node: new_row.copy()})
        service.close()
        assert service.delta_log.applied_seq == seq
        np.testing.assert_array_equal(service.graph.features[node], new_row)


class TestDeltaWatermark:
    """Size/age watermark: idle application defers until a bound is hit,
    so pure-update bursts coalesce — but drain/close/waves still force the
    full prefix."""

    def test_log_watermark_due_by_count_age_and_expedite(self):
        clock = [0.0]
        graph = _make_graph()
        log = DeltaLog(
            graph, max_pending=3, max_age_s=10.0, clock=lambda: clock[0]
        )
        relation = graph.relation_names[0]
        assert not log.watermark_due  # empty
        log.append(edges_added={relation: ([0], [1])})
        log.append(edges_added={relation: ([1], [2])})
        assert not log.watermark_due  # 2 < max_pending, age 0 < max_age_s
        clock[0] = 10.0
        assert log.watermark_due  # age bound hit
        clock[0] = 0.0
        log.append(edges_added={relation: ([2], [3])})
        assert log.watermark_due  # size bound hit
        delta = log.drain()
        assert delta.coalesced == 3 and not log.watermark_due
        log.append(edges_added={relation: ([3], [4])})
        assert not log.watermark_due
        log.expedite()
        assert log.watermark_due  # forced (drain/close path)
        log.drain()
        log.append(edges_added={relation: ([4], [5])})
        assert not log.watermark_due  # expedite does not outlive the drain

    def test_eager_default_is_due_immediately(self):
        graph = _make_graph()
        log = DeltaLog(graph)
        log.append(features_changed={0: graph.features[0] + 1.0})
        assert log.watermark_due

    def test_service_defers_pure_updates_until_count_watermark(self, artifact):
        import time as _time

        with _service(artifact, delta_max_pending=2, delta_max_age_s=60.0) as service:
            relation = service.graph.relation_names[0]
            service.submit_update(edges_added={relation: ([0], [1])})
            # Below both watermarks: the idle dispatcher must NOT apply it.
            _time.sleep(0.2)
            assert service.snapshot()["deltas_applied"] == 0
            assert service.snapshot()["pending_deltas"] == 1
            # Second delta hits max_pending: both apply as one coalesced pass.
            service.submit_update(edges_added={relation: ([1], [2])})
            deadline = _time.monotonic() + 10.0
            while service.snapshot()["deltas_applied"] < 2:
                assert _time.monotonic() < deadline, "watermark never fired"
                _time.sleep(0.01)
            assert service.snapshot()["pending_deltas"] == 0

    def test_waves_still_apply_deferred_deltas_first(self, artifact):
        # Read-your-writes is never deferred: a score forces the pending
        # prefix regardless of the watermark.
        with _service(artifact, delta_max_pending=100, delta_max_age_s=60.0) as service:
            node = 7
            new_row = service.graph.features[node] + 2.0
            seq = service.submit_update(features_changed={node: new_row.copy()})
            handle = service.submit([node])
            handle.result(30.0)
            assert handle.delta_seq >= seq
            np.testing.assert_array_equal(service.graph.features[node], new_row)

    def test_drain_expedites_past_the_age_watermark(self, artifact):
        with _service(artifact, delta_max_pending=100, delta_max_age_s=60.0) as service:
            node = 3
            new_row = service.graph.features[node] + 1.0
            seq = service.submit_update(features_changed={node: new_row.copy()})
            service.drain(timeout=10.0)  # must not wait out max_age_s
            assert service.delta_log.applied_seq == seq
            np.testing.assert_array_equal(service.graph.features[node], new_row)

    def test_close_flushes_watermarked_backlog(self, artifact):
        service = _service(artifact, delta_max_pending=100, delta_max_age_s=60.0)
        node = 5
        new_row = service.graph.features[node] + 1.0
        seq = service.submit_update(features_changed={node: new_row.copy()})
        service.close()
        assert service.delta_log.applied_seq == seq


class TestInterleavingProperty:
    """Satellite acceptance: replay a random schedule of deltas and score
    requests and check every response against a from-scratch session that
    applied the same delta prefix."""

    @pytest.mark.parametrize("schedule_seed", [0, 1])
    def test_random_schedule_matches_fresh_session_at_same_prefix(
        self, artifact, schedule_seed
    ):
        rng = np.random.default_rng(100 + schedule_seed)
        service = _service(artifact)
        graph = service.graph
        deltas = []      # the submitted deltas, in sequence order
        responses = []   # (nodes, delta_seq, probabilities)
        for _ in range(14):
            action = rng.random()
            if action < 0.3:  # add 1-2 random edges to a random relation
                relation = graph.relation_names[int(rng.integers(len(graph.relation_names)))]
                count = int(rng.integers(1, 3))
                src = rng.integers(0, graph.num_nodes, count)
                dst = rng.integers(0, graph.num_nodes, count)
                delta = {"edges_added": {relation: (src.copy(), dst.copy())}}
                service.submit_update(**delta)
                deltas.append(delta)
            elif action < 0.5:  # rewrite a random node's features
                node = int(rng.integers(graph.num_nodes))
                row = rng.normal(size=graph.num_features)
                delta = {"features_changed": {node: row.copy()}}
                service.submit_update(**delta)
                deltas.append(delta)
            else:  # score a random node subset
                nodes = np.unique(rng.integers(0, graph.num_nodes, int(rng.integers(1, 5))))
                handle = service.submit(nodes)
                rows = handle.result(30.0)
                responses.append((nodes, handle.delta_seq, rows))
        service.drain()
        service.close()
        assert responses, "schedule produced no score requests"

        for nodes, delta_seq, rows in responses:
            detector, fresh_graph = _fresh(artifact)
            with api.DetectionSession(detector, fresh_graph) as session:
                for delta in deltas[: delta_seq + 1]:
                    session.apply_delta(**delta)
                np.testing.assert_array_equal(session.score_nodes(nodes), rows)


class TestLifecycle:
    def test_close_is_idempotent_and_releases_everything(self, artifact):
        detector, graph = _fresh(artifact)
        service = DetectionService(detector, graph)  # default: release pool
        service.score([0, 1])
        biased.shared_process_pool(1)  # ensure a pool exists to release
        thread = service._thread
        service.close()
        service.close()
        assert not thread.is_alive()
        assert biased._shared_pool is None
        assert not biased._shared_payload_registry
        with pytest.raises(ServiceClosed):
            service.score([0])
        with pytest.raises(ServiceClosed):
            service.submit_update(features_changed={0: graph.features[0]})
        with pytest.raises(RuntimeError, match="closed"):
            service.session.score_nodes([0])

    def test_close_tears_down_even_when_drain_fails(self, artifact):
        service = _service(artifact)
        service.score([0])
        # Simulate a delta-application failure recorded by the dispatcher:
        # close() re-raises it from drain(), but teardown must still run.
        service._delta_error = RuntimeError("injected delta failure")
        with pytest.raises(RuntimeError, match="injected"):
            service.close()
        assert not service._thread.is_alive()
        with pytest.raises(RuntimeError, match="closed"):
            service.session.score_nodes([0])
        service.close()  # still idempotent afterwards

    def test_context_manager(self, artifact):
        with _service(artifact) as service:
            assert service.score([2]).shape == (1, 2)
        assert service.closed
        assert not service._thread.is_alive()

    def test_close_without_start_rejects_backlog(self, artifact):
        service = _service(artifact, autostart=False)
        handle = service.submit([1])
        service.close()
        with pytest.raises(Exception):
            handle.result(1.0)

    def test_from_artifact_with_graph(self, artifact):
        graph = _make_graph()
        with DetectionService.from_artifact(
            artifact, graph=graph, release_pool_on_close=False
        ) as service:
            assert service.score([4]).shape == (1, 2)

    def test_from_artifact_without_provenance_raises(self, artifact):
        with pytest.raises(ValueError, match="provenance"):
            DetectionService.from_artifact(artifact)

    def test_snapshot_schema(self, artifact):
        with _service(artifact, record_waves=True) as service:
            service.score([0, 1, 2])
            service.submit_update(
                features_changed={0: service.graph.features[0] + 0.5}
            )
            service.drain()
            snapshot = service.snapshot()
        for key in (
            "requests", "nodes_scored", "waves", "wave_nodes", "batch_occupancy",
            "requests_per_wave", "deltas_enqueued", "deltas_applied",
            "subgraphs_invalidated", "errors", "request_latency", "queue_wait",
            "model_time", "replay_hits", "replay_misses",
            "detector", "graph", "uptime_s", "pending_requests", "pending_deltas",
            "applied_delta_seq", "tail_delta_seq", "store_size",
            "store_cache_hits", "store_cache_misses", "subgraphs_built",
            "max_batch_size", "max_wait_ms",
        ):
            assert key in snapshot, key
        assert snapshot["requests"] == 1
        assert snapshot["nodes_scored"] == 3
        assert snapshot["deltas_applied"] == 1
        assert snapshot["request_latency"]["count"] == 1
        # Every executed wave lands one model_time sample and one replay
        # hit-or-miss tally (the first wave of a fresh session is a miss).
        assert snapshot["model_time"]["count"] == snapshot["waves"]
        assert (
            snapshot["replay_hits"] + snapshot["replay_misses"] == snapshot["waves"]
        )
        assert snapshot["replay_misses"] >= 1
        for key in ("p50_s", "p90_s", "p99_s", "mean_s"):
            assert snapshot["model_time"][key] >= 0.0
        import json

        json.dumps(snapshot)  # must stay JSON-serializable for the CLI
