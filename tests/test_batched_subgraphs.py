"""Equivalence, regression and serialization tests for the batched
subgraph-construction engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling import (
    BiasedSubgraphBuilder,
    PPRSubgraphBuilder,
    Subgraph,
    SubgraphStore,
)
from tests.conftest import make_separable_graph


@pytest.fixture(scope="module")
def hetero_graph():
    """Seeded random heterogeneous graph (3 relations, mixed homophily)."""
    return make_separable_graph(num_nodes=120, num_relations=3, homophily=0.7, seed=17)


@pytest.fixture(scope="module")
def builder(hetero_graph):
    return BiasedSubgraphBuilder(hetero_graph, hetero_graph.features, k=6)


def assert_same_subgraph(a: Subgraph, b: Subgraph) -> None:
    assert a.center == b.center
    np.testing.assert_array_equal(a.nodes, b.nodes)
    assert set(a.relation_edges) == set(b.relation_edges)
    for relation in a.relation_edges:
        left = a.relation_adjacency(relation)
        right = b.relation_adjacency(relation)
        assert (left != right).nnz == 0


class TestBatchedEquivalence:
    def test_batched_matches_per_node_build(self, hetero_graph, builder):
        """The batched engine selects the same per-relation node sets (and
        therefore the same edges) as the per-node ``build`` path."""
        nodes = np.arange(hetero_graph.num_nodes)
        batched = builder.build_batch(nodes)
        for node, subgraph in zip(nodes, batched):
            assert_same_subgraph(builder.build(int(node)), subgraph)

    def test_ppr_only_variant_matches(self, hetero_graph):
        ppr_builder = PPRSubgraphBuilder(hetero_graph, k=5)
        nodes = np.arange(0, hetero_graph.num_nodes, 3)
        for node, subgraph in zip(nodes, ppr_builder.build_batch(nodes)):
            assert_same_subgraph(ppr_builder.build(int(node)), subgraph)

    def test_batch_of_one(self, builder):
        assert_same_subgraph(builder.build(4), builder.build_batch([4])[0])

    def test_empty_batch(self, builder):
        assert builder.build_batch([]) == []

    def test_duplicate_frontier_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.build_batch([1, 2, 1])

    def test_store_methods_agree(self, hetero_graph, builder):
        nodes = list(range(0, 40))
        sequential = builder.build_store(nodes, method="sequential")
        batched = builder.build_store(nodes, method="batched")
        assert sorted(sequential.nodes()) == sorted(batched.nodes())
        for node in nodes:
            assert_same_subgraph(sequential.get(node), batched.get(node))

    def test_process_pool_path_agrees(self, hetero_graph, builder):
        nodes = list(range(0, 30))
        serial = builder.build_store(nodes)
        parallel = builder.build_store(nodes, workers=2)
        for node in nodes:
            assert_same_subgraph(serial.get(node), parallel.get(node))

    def test_invalid_method_rejected(self, builder):
        with pytest.raises(ValueError):
            builder.build_store([0], method="magic")


class TestBuildStoreRegression:
    def test_passed_empty_store_is_extended_not_discarded(self, hetero_graph, builder):
        """Regression: an *empty* passed-in store is falsy (``__len__``) and
        used to be silently replaced by a fresh store."""
        store = SubgraphStore(hetero_graph)
        result = builder.build_store([0, 1, 2], store=store)
        assert result is store
        assert len(store) == 3

    def test_existing_entries_are_not_rebuilt(self, hetero_graph, builder):
        store = SubgraphStore(hetero_graph)
        sentinel = builder.build(0)
        store.add(sentinel)
        result = builder.build_store([0, 1], store=store)
        assert result.get(0) is sentinel
        assert 1 in result

    def test_duplicate_nodes_deduplicated(self, hetero_graph, builder):
        store = builder.build_store([3, 3, 4, 4, 3])
        assert sorted(store.nodes()) == [3, 4]


class TestStoreSerialization:
    def test_roundtrip(self, tmp_path, hetero_graph, builder):
        store = builder.build_store(range(25))
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = SubgraphStore.load(path, hetero_graph)
        assert sorted(loaded.nodes()) == sorted(store.nodes())
        for node in store.nodes():
            assert_same_subgraph(store.get(node), loaded.get(node))

    def test_roundtrip_empty_store(self, tmp_path, hetero_graph):
        store = SubgraphStore(hetero_graph)
        path = tmp_path / "empty.npz"
        store.save(path)
        loaded = SubgraphStore.load(path, hetero_graph)
        assert len(loaded) == 0

    def test_loaded_store_batches_like_original(self, tmp_path, hetero_graph, builder):
        store = builder.build_store(range(12))
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = SubgraphStore.load(path, hetero_graph)
        original = next(iter(store.batches(range(12), batch_size=12)))
        restored = next(iter(loaded.batches(range(12), batch_size=12)))
        np.testing.assert_allclose(original.features, restored.features)
        for relation in original.relation_adjacencies:
            delta = (
                original.relation_adjacencies[relation]
                - restored.relation_adjacencies[relation]
            )
            assert abs(delta).max() < 1e-12

    def test_roundtrip_persists_normalized_blocks(
        self, tmp_path, hetero_graph, builder, monkeypatch
    ):
        """save/load carries the normalized collation pack, so a loaded store
        collates its first epoch without re-normalizing anything."""
        store = builder.build_store(range(15))
        expected = store.collate(range(15))
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = SubgraphStore.load(path, hetero_graph)
        assert loaded.has_collation_pack(normalize=True)

        def fail(*args, **kwargs):  # pragma: no cover - only on regression
            raise AssertionError("loaded store re-normalized a subgraph")

        monkeypatch.setattr(Subgraph, "normalized_relation_adjacency", fail)
        restored = loaded.collate(range(15))
        np.testing.assert_array_equal(expected.features, restored.features)
        for relation, left in expected.relation_adjacencies.items():
            right = restored.relation_adjacencies[relation]
            np.testing.assert_array_equal(left.indptr, right.indptr)
            np.testing.assert_array_equal(left.indices, right.indices)
            np.testing.assert_array_equal(left.data, right.data)

    def test_legacy_file_without_normalized_blocks_loads(
        self, tmp_path, hetero_graph, builder
    ):
        """Pre-epoch-engine archives (no ``norm_*`` arrays) still load; the
        pack is then rebuilt lazily on first collation."""
        store = builder.build_store(range(8))
        path = tmp_path / "store.npz"
        store.save(path, include_normalized=False)
        loaded = SubgraphStore.load(path, hetero_graph)
        assert not loaded.has_collation_pack(normalize=True)
        batch = loaded.collate(range(8))
        expected = store.collate(range(8))
        for relation, left in expected.relation_adjacencies.items():
            right = batch.relation_adjacencies[relation]
            np.testing.assert_array_equal(left.data, right.data)


class TestSharedWorkerPool:
    def test_pool_reused_across_build_store_calls(self, hetero_graph, builder):
        from repro.sampling import biased

        biased.shutdown_shared_pool()
        builder.build_store(range(0, 12), workers=2)
        first = biased._shared_pool
        assert first is not None
        builder.build_store(range(12, 24), workers=2)
        assert biased._shared_pool is first

    def test_pool_grows_for_more_workers(self, hetero_graph, builder):
        from repro.sampling import biased

        biased.shutdown_shared_pool()
        pool = biased.shared_process_pool(1)
        grown = biased.shared_process_pool(2)
        assert grown is not pool
        assert biased.shared_process_pool(1) is grown  # never shrinks
        biased.shutdown_shared_pool()
        assert biased._shared_pool is None

    def test_invalid_worker_count_rejected(self):
        from repro.sampling import biased

        with pytest.raises(ValueError):
            biased.shared_process_pool(0)


class TestBatchedSpeed:
    def test_batched_engine_is_faster_at_benchmark_scale(self):
        """Acceptance check: >= 5x over the per-node path, same selections.

        CPU time and best-of-3 keep the measurement stable when the suite
        shares the machine with other work.
        """
        import time

        graph = make_separable_graph(num_nodes=450, num_relations=2, seed=23)
        builder = BiasedSubgraphBuilder(graph, graph.features, k=8)
        nodes = np.arange(graph.num_nodes)

        def cpu_time(func):
            best = float("inf")
            result = None
            for _ in range(3):
                start = time.process_time()
                result = func()
                best = min(best, time.process_time() - start)
            return best, result

        per_node_time, per_node = cpu_time(
            lambda: [builder.build(int(node)) for node in nodes]
        )
        batched_time, batched = cpu_time(lambda: builder.build_batch(nodes))

        for left, right in zip(per_node, batched):
            assert_same_subgraph(left, right)
        speedup = per_node_time / batched_time
        assert speedup >= 5.0, f"batched engine only {speedup:.1f}x faster"
