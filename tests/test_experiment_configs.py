"""Fast tests for experiment-harness configuration logic (no training)."""

from __future__ import annotations

import pytest

from repro.core import BSG4Bot
from repro.core.base import BotDetector
from repro.experiments import table1, table3, table5
from repro.experiments.runner import (
    CORE_DETECTORS,
    TABLE2_DETECTORS,
    build_benchmark,
    make_detector,
)
from repro.experiments.settings import MEDIUM, SMALL


class TestScales:
    def test_small_and_medium_presets(self):
        assert SMALL.users_for("twibot-22") < MEDIUM.users_for("twibot-22")
        assert MEDIUM.seeds >= SMALL.seeds

    def test_unknown_benchmark_key_raises(self):
        with pytest.raises(KeyError):
            SMALL.users_for("weibo")

    def test_scale_is_frozen(self):
        with pytest.raises(Exception):
            SMALL.max_epochs = 5  # type: ignore[misc]


class TestRunnerHelpers:
    def test_table2_covers_all_thirteen_models(self):
        assert len(TABLE2_DETECTORS) == 13
        assert TABLE2_DETECTORS[-1] == "bsg4bot"
        assert set(CORE_DETECTORS) <= set(TABLE2_DETECTORS)

    def test_make_detector_applies_scale_budget(self, tiny_scale):
        detector = make_detector("gcn", scale=tiny_scale)
        assert detector.max_epochs == tiny_scale.max_epochs
        assert detector.hidden_dim == tiny_scale.hidden_dim

    def test_make_detector_bsg4bot_config(self, tiny_scale):
        detector = make_detector("bsg4bot", scale=tiny_scale, subgraph_k=3)
        assert isinstance(detector, BSG4Bot)
        assert detector.config.subgraph_k == 3
        assert detector.config.max_epochs == tiny_scale.max_epochs

    def test_make_detector_returns_detector_interface(self, tiny_scale):
        for name in ("mlp", "slimg", "botmoe"):
            assert isinstance(make_detector(name, scale=tiny_scale), BotDetector)

    def test_build_benchmark_respects_scale_users(self, tiny_scale):
        benchmark = build_benchmark("mgtab", scale=tiny_scale, seed=1)
        assert benchmark.graph.num_nodes == tiny_scale.users_for("mgtab")


class TestTableConfigLogic:
    def test_table1_paper_statistics_recorded(self):
        assert table1.PAPER_STATISTICS["twibot-22"]["users"] == 1_000_000
        assert table1.PAPER_STATISTICS["mgtab"]["relations"] == 7

    def test_table3_paper_reference_contains_bsg4bot(self):
        assert "bsg4bot" in table3.PAPER_TABLE3
        per_epoch, epochs, total_hours = table3.PAPER_TABLE3["bsg4bot"]
        assert epochs == 67

    def test_table5_ablation_overrides(self, tiny_scale):
        def config_for(ablation):
            overrides = table5._ABLATION_OVERRIDES.get(ablation, {})
            return make_detector("bsg4bot", scale=tiny_scale, **overrides).config

        full = config_for("full")
        assert full.use_biased_subgraphs and full.use_semantic_attention
        assert config_for("ppr_subgraphs").use_biased_subgraphs is False
        assert config_for("wo_intermediate_concat").use_intermediate_concat is False
        assert config_for("mean_pooling").use_semantic_attention is False

    def test_table5_benchmark_for_feature_ablations(self, tiny_scale):
        without_category = table5._benchmark_for_ablation(
            "mgtab", "wo_category_feature", tiny_scale, seed=0
        )
        assert "category" not in without_category.feature_pipeline.feature_names
        without_temporal = table5._benchmark_for_ablation(
            "mgtab", "wo_temporal_feature", tiny_scale, seed=0
        )
        assert "temporal" not in without_temporal.feature_pipeline.feature_names

    def test_table5_unknown_ablation_rejected(self, tiny_scale):
        with pytest.raises(KeyError):
            table5.run(benchmarks=("mgtab",), ablations=("quantum",), scale=tiny_scale)

    def test_table5_full_feature_set_untouched(self, tiny_scale):
        full = table5._benchmark_for_ablation("mgtab", "full", tiny_scale, seed=0)
        assert {"category", "temporal"} <= set(full.feature_pipeline.feature_names)
