"""Gradient correctness tests for the autograd engine.

Every differentiable operation is checked against central finite differences
on small random inputs.  These tests are the foundation the model-level tests
rely on: if they pass, any training failure is a modelling problem rather
than a calculus bug.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import (
    Tensor,
    concat,
    gather_rows,
    leaky_relu,
    log_softmax,
    matmul,
    relu,
    scatter_add,
    sigmoid,
    softmax,
    spmm,
    stack,
    tanh,
)
from repro.tensor.tensor import dropout

RNG = np.random.default_rng(7)


def numeric_grad(func, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued function."""
    grad = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = func(value)
        flat[index] = original - eps
        lower = func(value)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * eps)
    return grad


def check_unary(op, value: np.ndarray, atol: float = 1e-5) -> None:
    tensor_value = Tensor(value.copy(), requires_grad=True)
    output = op(tensor_value)
    loss = (output * output).sum()
    loss.backward()

    def scalar(v):
        return float((op(Tensor(v)).numpy() ** 2).sum())

    expected = numeric_grad(scalar, value.copy())
    np.testing.assert_allclose(tensor_value.grad, expected, atol=atol)


class TestElementwiseOps:
    def test_add_broadcast_gradients(self):
        a = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        ((a + b) * (a + b)).sum().backward()
        assert a.grad.shape == (4, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, (2 * (a.data + b.data)).sum(axis=0), atol=1e-8)

    def test_mul_gradients(self):
        a = Tensor(RNG.normal(size=(5,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(5,)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)

    def test_sub_and_neg(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 5.0]), requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [-1.0, -1.0])

    def test_div_gradients(self):
        a = RNG.uniform(1.0, 2.0, size=(3, 2))
        b = RNG.uniform(1.0, 2.0, size=(3, 2))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        (ta / tb).sum().backward()
        np.testing.assert_allclose(ta.grad, 1.0 / b, atol=1e-8)
        np.testing.assert_allclose(tb.grad, -a / b**2, atol=1e-8)

    def test_pow_gradient(self):
        value = RNG.uniform(0.5, 2.0, size=(4,))
        t = Tensor(value.copy(), requires_grad=True)
        (t**3).sum().backward()
        np.testing.assert_allclose(t.grad, 3 * value**2, atol=1e-8)

    def test_pow_rejects_non_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0, 2.0]) ** np.array([1.0, 2.0])

    def test_rsub_and_rdiv(self):
        t = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        out = (1.0 - t) + (8.0 / t)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, -1.0 - 8.0 / t.data**2)

    @pytest.mark.parametrize("op", [relu, tanh, sigmoid])
    def test_activation_gradients(self, op):
        check_unary(op, RNG.normal(size=(6, 4)))

    def test_leaky_relu_gradient(self):
        check_unary(lambda x: leaky_relu(x, 0.1), RNG.normal(size=(5, 3)))

    def test_exp_log_gradients(self):
        check_unary(lambda x: x.exp(), RNG.normal(size=(4, 2)))
        check_unary(lambda x: x.log(), RNG.uniform(0.5, 2.0, size=(4, 2)))

    def test_clip_gradient_masks_outside_range(self):
        t = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        t = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((3, 4)))

    def test_sum_axis_keepdims(self):
        t = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        (t.sum(axis=1, keepdims=True) * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((3, 4), 2.0))

    def test_mean_gradient(self):
        t = Tensor(RNG.normal(size=(5,)), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full(5, 0.2))

    def test_mean_axis(self):
        t = Tensor(RNG.normal(size=(2, 4)), requires_grad=True)
        t.mean(axis=0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 4), 0.5))

    def test_max_gradient_routes_to_argmax(self):
        t = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_max_gradient_splits_ties(self):
        t = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])


class TestMatmulAndSparse:
    def test_matmul_gradients(self):
        a = RNG.normal(size=(4, 3))
        b = RNG.normal(size=(3, 5))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        matmul(ta, tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones((4, 5)) @ b.T, atol=1e-8)
        np.testing.assert_allclose(tb.grad, a.T @ np.ones((4, 5)), atol=1e-8)

    def test_matmul_operator(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3, 2)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 2)

    def test_spmm_matches_dense(self):
        dense_adj = (RNG.random((6, 6)) < 0.4).astype(float)
        sparse_adj = sp.csr_matrix(dense_adj)
        x = RNG.normal(size=(6, 3))
        tx = Tensor(x.copy(), requires_grad=True)
        out = spmm(sparse_adj, tx)
        np.testing.assert_allclose(out.numpy(), dense_adj @ x, atol=1e-10)
        out.sum().backward()
        np.testing.assert_allclose(tx.grad, dense_adj.T @ np.ones((6, 3)), atol=1e-10)

    def test_spmm_no_grad_for_constant_input(self):
        sparse_adj = sp.eye(3, format="csr")
        out = spmm(sparse_adj, Tensor(np.ones((3, 2))))
        assert out.requires_grad is False


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        t = Tensor(RNG.normal(size=(2, 6)), requires_grad=True)
        t.reshape(3, 4).sum().backward()
        assert t.grad.shape == (2, 6)

    def test_transpose_gradient(self):
        t = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        (t.T * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 3), 2.0))

    def test_getitem_row_gradient(self):
        t = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        t[np.array([0, 2, 2])].sum().backward()
        expected = np.zeros((5, 3))
        expected[0] = 1.0
        expected[2] = 2.0
        np.testing.assert_allclose(t.grad, expected)

    def test_concat_gradient_split(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 3.0))
        np.testing.assert_allclose(b.grad, np.full((2, 2), 3.0))

    def test_stack_gradient(self):
        a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_gather_rows_gradient_accumulates(self):
        t = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
        gather_rows(t, np.array([1, 1, 3])).sum().backward()
        expected = np.zeros((4, 2))
        expected[1] = 2.0
        expected[3] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_scatter_add_forward_and_gradient(self):
        src = Tensor(np.array([[1.0], [2.0], [3.0]]), requires_grad=True)
        out = scatter_add(src, np.array([0, 0, 1]), num_segments=2)
        np.testing.assert_allclose(out.numpy(), [[3.0], [3.0]])
        (out * np.array([[2.0], [5.0]])).sum().backward()
        np.testing.assert_allclose(src.grad, [[2.0], [2.0], [5.0]])


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self):
        t = Tensor(RNG.normal(size=(4, 6)))
        np.testing.assert_allclose(softmax(t, axis=-1).numpy().sum(axis=1), np.ones(4), atol=1e-12)

    def test_softmax_gradient_matches_numeric(self):
        value = RNG.normal(size=(3, 4))

        def scalar(v):
            out = softmax(Tensor(v), axis=-1).numpy()
            return float((out**2).sum())

        t = Tensor(value.copy(), requires_grad=True)
        out = softmax(t, axis=-1)
        (out * out).sum().backward()
        np.testing.assert_allclose(t.grad, numeric_grad(scalar, value.copy()), atol=1e-5)

    def test_log_softmax_gradient_matches_numeric(self):
        value = RNG.normal(size=(3, 3))

        def scalar(v):
            out = log_softmax(Tensor(v), axis=-1).numpy()
            return float((out**2).sum())

        t = Tensor(value.copy(), requires_grad=True)
        out = log_softmax(t, axis=-1)
        (out * out).sum().backward()
        np.testing.assert_allclose(t.grad, numeric_grad(scalar, value.copy()), atol=1e-5)

    def test_log_softmax_is_log_of_softmax(self):
        t = Tensor(RNG.normal(size=(5, 3)))
        np.testing.assert_allclose(
            log_softmax(t).numpy(), np.log(softmax(t).numpy()), atol=1e-10
        )


class TestDropoutAndGraphMechanics:
    def test_dropout_eval_is_identity(self):
        rng = np.random.default_rng(0)
        t = Tensor(RNG.normal(size=(10, 10)))
        out = dropout(t, 0.5, rng, training=False)
        np.testing.assert_allclose(out.numpy(), t.numpy())

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        t = Tensor(np.ones((200, 200)))
        out = dropout(t, 0.3, rng, training=True)
        assert abs(out.numpy().mean() - 1.0) < 0.05

    def test_dropout_zero_rate_is_identity(self):
        rng = np.random.default_rng(0)
        t = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
        out = dropout(t, 0.0, rng, training=True)
        assert out is t

    def test_backward_requires_scalar(self):
        t = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_gradient_accumulates_across_backward_calls(self):
        t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (t * 2).sum().backward()
        (t * 3).sum().backward()
        np.testing.assert_allclose(t.grad, [5.0, 5.0])

    def test_zero_grad_clears(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_detach_cuts_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        detached = t.detach()
        assert detached.requires_grad is False
        (detached * 3).sum().backward()
        assert t.grad is None

    def test_diamond_graph_gradient(self):
        # y = (x*2) + (x*3): gradient must combine both paths.
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x * 2 + x * 3
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_shared_subexpression_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        shared = x * x
        (shared + shared).sum().backward()
        np.testing.assert_allclose(x.grad, [8.0])
