"""Observability tests: trace sampling/retention/span trees, the metrics
registry with Prometheus exposition (render + strict validation), histogram
bucket accessors and cluster-level bucket-merge aggregation, the trace CLI,
and end-to-end propagation of one request id across a sharded HTTP cluster."""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import api, cli
from repro.core import BSG4Bot, BSG4BotConfig
from repro.obs import (
    ROOT_SPAN_ID,
    MetricFamily,
    MetricsRegistry,
    Tracer,
    activate_trace,
    current_trace,
    merge_buckets,
    mint_request_id,
    phase_span,
    read_traces,
    render_prometheus,
    render_waterfall,
    span,
    summarize_traces,
    validate_exposition,
)
from repro.obs.trace import add_ambient_span
from repro.serving.cluster import ShardRouter
from repro.serving.metrics import (
    LatencyHistogram,
    ServingMetrics,
    aggregate_latency,
    aggregate_serving_metrics,
    percentile_from_buckets,
)
from tests.conftest import make_separable_graph
from tests.test_cluster_router import _ServerThread

GRAPH_SEED = 33
GRAPH_NODES = 60


# ----------------------------------------------------------------------
# Latency histogram accessors
# ----------------------------------------------------------------------
class TestLatencyHistogram:
    def test_buckets_are_cumulative_and_end_at_inf(self):
        histogram = LatencyHistogram()
        for seconds in (0.0001, 0.001, 0.001, 0.5):
            histogram.observe(seconds)
        buckets = histogram.buckets()
        bounds = [bound for bound, _ in buckets]
        counts = [count for _, count in buckets]
        assert math.isinf(bounds[-1])
        assert bounds[:-1] == sorted(bounds[:-1])
        assert counts == sorted(counts)  # cumulative: non-decreasing
        assert counts[-1] == histogram.count == 4

    def test_observe_rejects_nan_and_negative(self):
        histogram = LatencyHistogram()
        with pytest.raises(ValueError):
            histogram.observe(float("nan"))
        with pytest.raises(ValueError):
            histogram.observe(-0.001)
        assert histogram.count == 0  # rejected samples leave no trace

    def test_percentile_from_buckets_matches_histogram(self):
        histogram = LatencyHistogram()
        rng = np.random.default_rng(11)
        for seconds in rng.uniform(1e-4, 2.0, size=300):
            histogram.observe(float(seconds))
        buckets = histogram.buckets()
        for quantile in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert percentile_from_buckets(
                buckets, quantile, histogram.max_s
            ) == pytest.approx(histogram.percentile(quantile))


# ----------------------------------------------------------------------
# Cluster aggregation: bucket-merge percentiles, counter sums
# ----------------------------------------------------------------------
class TestAggregation:
    def test_cluster_p99_merges_buckets_not_max_of_p99s(self):
        # A lightly loaded slow shard must not dominate the cluster p99:
        # 198 fast samples on shard A, 2 slow ones on shard B.  max-of-p99s
        # reports ~1s; the merged distribution's p99 is still fast.
        fast, slow = LatencyHistogram(), LatencyHistogram()
        for _ in range(198):
            fast.observe(0.001)
        for _ in range(2):
            slow.observe(1.0)
        merged = aggregate_latency([fast, slow])
        max_of_p99s = max(fast.percentile(0.99), slow.percentile(0.99))
        assert max_of_p99s == pytest.approx(1.0)
        assert merged["p99_s"] < 0.01 < max_of_p99s
        # The merged estimate equals what one histogram over all samples says.
        combined = LatencyHistogram()
        for _ in range(198):
            combined.observe(0.001)
        for _ in range(2):
            combined.observe(1.0)
        assert merged["p99_s"] == pytest.approx(combined.percentile(0.99))
        assert merged["count"] == 200
        assert merged["max_s"] == pytest.approx(1.0)

    def test_aggregate_serving_metrics_sums_counters_and_recomputes_rates(self):
        first, second = ServingMetrics(), ServingMetrics()
        first.increment("requests", 3)
        first.increment("waves", 2)
        first.increment("wave_nodes", 8)
        second.increment("requests", 1)
        second.increment("waves", 1)
        second.increment("wave_nodes", 4)
        first.request_latency.observe(0.002)
        second.request_latency.observe(0.004)
        totals = aggregate_serving_metrics([first, second])
        assert totals["requests"] == 4
        assert totals["waves"] == 3
        assert totals["batch_occupancy"] == pytest.approx(12 / 3)
        assert totals["requests_per_wave"] == pytest.approx(4 / 3)
        assert totals["request_latency"]["count"] == 2
        assert totals["request_latency"]["min_s"] == pytest.approx(0.002)
        assert totals["request_latency"]["max_s"] == pytest.approx(0.004)

    def test_merge_buckets_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            merge_buckets([[(0.1, 1), (math.inf, 1)], [(0.2, 1), (math.inf, 1)]])


# ----------------------------------------------------------------------
# Tracer: sampling, retention, ring buffer, dump
# ----------------------------------------------------------------------
class TestTracer:
    def test_sampling_is_deterministic_under_fixed_seed(self):
        ids = [f"req-{index:04d}" for index in range(200)]
        first = [Tracer(0.5, seed=7).sampled(request_id) for request_id in ids]
        second = [Tracer(0.5, seed=7).sampled(request_id) for request_id in ids]
        assert first == second  # same seed, same decisions — across instances
        assert any(first) and not all(first)  # rate 0.5 keeps a strict subset
        other_seed = [Tracer(0.5, seed=8).sampled(request_id) for request_id in ids]
        assert other_seed != first

    def test_sample_rate_bounds(self):
        assert all(Tracer(1.0).sampled(mint_request_id()) for _ in range(20))
        tracer = Tracer(0.0)
        assert not tracer.enabled
        assert tracer.start_trace("noop") is None
        with pytest.raises(ValueError):
            Tracer(1.5)

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(1.0, capacity=2)
        for name in ("first", "second", "third"):
            tracer.finish_trace(tracer.start_trace(name))
        stats = tracer.stats()
        assert stats["started"] == 3 and stats["kept"] == 3
        assert stats["evicted"] == 1 and stats["buffered"] == 2
        names = [trace["name"] for trace in tracer.recent()]
        assert names == ["third", "second"]  # most recent first; oldest gone
        assert [trace["name"] for trace in tracer.recent(limit=1)] == ["third"]

    def test_slow_trace_dumped_as_jsonl(self, tmp_path):
        dump = tmp_path / "slow.jsonl"
        # sample_rate=0 with a zero slow threshold: kept (and dumped)
        # purely via the always-keep-slow policy.
        tracer = Tracer(0.0, slow_threshold_s=0.0, dump_path=str(dump))
        assert tracer.enabled
        trace = tracer.start_trace("slow-req", request_id="deadbeef00000000")
        assert trace is not None and not trace.sampled
        trace.add_span("work", trace.started_at, 0.001, step="one")
        assert tracer.finish_trace(trace)
        fast_tracer = Tracer(0.5, seed=0, dump_path=str(dump))
        unsampled = [
            request_id
            for request_id in (f"probe-{index}" for index in range(64))
            if not fast_tracer.sampled(request_id)
        ]
        # Unsampled + not slow: dropped, and never written to the dump.
        assert not fast_tracer.finish_trace(
            fast_tracer.start_trace("fast-req", request_id=unsampled[0])
        )
        loaded = read_traces(str(dump))
        assert len(loaded) == 1
        assert loaded[0]["request_id"] == "deadbeef00000000"
        assert loaded[0]["slow"] is True
        assert [span_dict["name"] for span_dict in loaded[0]["spans"]] == [
            "slow-req",
            "work",
        ]
        assert loaded[0]["spans"][1]["attributes"] == {"step": "one"}

    def test_from_env_disabled_unless_armed(self):
        assert Tracer.from_env({}) is None
        assert Tracer.from_env({"REPRO_TRACE_SAMPLE": "0"}) is None
        armed = Tracer.from_env(
            {"REPRO_TRACE_SAMPLE": "1.0", "REPRO_TRACE_BUFFER": "17"}
        )
        assert armed is not None and armed.enabled and armed.capacity == 17
        slow_only = Tracer.from_env({"REPRO_TRACE_SLOW_MS": "250"})
        assert slow_only is not None
        assert slow_only.slow_threshold_s == pytest.approx(0.25)


# ----------------------------------------------------------------------
# Ambient (contextvar) spans — the training/ingest propagation style
# ----------------------------------------------------------------------
class TestAmbientSpans:
    def test_nested_spans_record_parent_links(self):
        tracer = Tracer(1.0)
        trace = tracer.start_trace("fit")
        with activate_trace(trace):
            assert current_trace() is trace
            with span("outer", phase="pretrain") as outer_id:
                with span("inner"):
                    pass
                add_ambient_span("late", trace.started_at, 0.001, cache="hit")
        assert current_trace() is None
        tracer.finish_trace(trace)
        spans = {item["name"]: item for item in trace.to_dict()["spans"]}
        assert spans["outer"]["parent_id"] == ROOT_SPAN_ID
        assert spans["inner"]["parent_id"] == outer_id
        assert spans["late"]["parent_id"] == outer_id  # ambient parent
        assert spans["outer"]["attributes"] == {"phase": "pretrain"}
        assert spans["late"]["attributes"] == {"cache": "hit"}

    def test_span_helpers_are_noops_without_a_trace(self):
        with span("orphan") as span_id:
            assert span_id is None
        add_ambient_span("orphan", 0.0, 0.0)  # must not raise
        with activate_trace(None) as trace:
            assert trace is None

    def test_phase_span_accumulates_phase_times(self):
        phase_times = {}
        with phase_span("construction", phase_times):
            pass
        first = phase_times["construction"]
        with phase_span("construction", phase_times):
            pass
        assert phase_times["construction"] > first  # += — not overwrite
        tracer = Tracer(1.0)
        trace = tracer.start_trace("fit")
        with activate_trace(trace):
            with phase_span("training", phase_times, epochs=3):
                pass
        names = [item["name"] for item in trace.to_dict()["spans"]]
        assert "training" in names and "training" in phase_times


# ----------------------------------------------------------------------
# Metrics registry + Prometheus exposition
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_owned_counter_get_or_create_and_kind_conflict(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help")
        assert registry.counter("repro_test_total") is counter
        counter.inc()
        counter.inc(2.0)
        assert counter.value == pytest.approx(3.0)
        with pytest.raises(ValueError):
            counter.inc(-1.0)
        with pytest.raises(ValueError):
            registry.gauge("repro_test_total")

    def test_callback_gauge_reads_live_value(self):
        registry = MetricsRegistry()
        values = {"workers": 4.0}
        registry.gauge("repro_test_workers", fn=lambda: values["workers"])
        assert registry.collect()[0].samples == [({}, 4.0)]
        values["workers"] = 7.0
        assert registry.collect()[0].samples == [({}, 7.0)]

    def test_duplicate_counter_samples_merge_at_scrape(self):
        registry = MetricsRegistry()
        family = lambda: [  # noqa: E731 - tiny test collector
            MetricFamily("repro_dup_total", "counter", "d", [({}, 2.0)])
        ]
        registry.register("a", family)
        registry.register("b", family)
        families = registry.collect()
        assert len(families) == 1
        assert families[0].samples == [({}, 4.0)]
        validate_exposition(registry.prometheus_text())

    def test_prometheus_text_passes_strict_validation(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_requests_total", "Requests.").inc(5)
        registry.gauge("repro_test_depth", "Depth.").set(2.5)
        metrics = ServingMetrics()
        metrics.increment("requests")
        metrics.request_latency.observe(0.003)
        metrics.queue_wait.observe(0.001)
        metrics.model_time.observe(0.002)
        registry.register("shard", lambda: metrics.metric_families({"shard": "0"}))
        text = registry.prometheus_text()
        kinds = validate_exposition(text)
        assert kinds["repro_test_requests_total"] == "counter"
        assert kinds["repro_test_depth"] == "gauge"
        assert kinds["repro_serving_request_latency_seconds"] == "histogram"
        assert 'shard="0"' in text
        assert render_prometheus(registry.collect()) == text

    @pytest.mark.parametrize(
        "bad_text",
        [
            "repro_orphan_total 1\n",  # sample with no preceding # TYPE
            "# TYPE repro_h histogram\n"  # buckets not cumulative
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\nrepro_h_count 3\n",
            "# TYPE repro_h histogram\n"  # _count disagrees with +Inf
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\nrepro_h_count 4\n",
            "# TYPE repro_h histogram\n"  # missing the +Inf bucket
            'repro_h_bucket{le="0.1"} 1\n'
            "repro_h_sum 1\nrepro_h_count 1\n",
            "# TYPE repro_c counter\nrepro_c 1\nrepro_c 2\n",  # duplicate sample
            "# TYPE repro_g gauge\nrepro_g{le=} 1\n",  # malformed labels
        ],
    )
    def test_validation_rejects_malformed_expositions(self, bad_text):
        with pytest.raises(ValueError):
            validate_exposition(bad_text)


# ----------------------------------------------------------------------
# Trace dump rendering + CLI
# ----------------------------------------------------------------------
class TestTraceRendering:
    def _dumped_trace(self, tmp_path):
        dump = tmp_path / "traces.jsonl"
        tracer = Tracer(1.0, slow_threshold_s=0.0, dump_path=str(dump))
        trace = tracer.start_trace("score", request_id="cafe000000000000")
        parent = trace.add_span("wave", trace.started_at, 0.004)
        trace.add_span(
            "model_forward", trace.started_at, 0.002, parent_id=parent, mode="replay"
        )
        tracer.finish_trace(trace)
        return dump

    def test_waterfall_shows_hierarchy_and_attributes(self, tmp_path):
        dump = self._dumped_trace(tmp_path)
        rendered = render_waterfall(read_traces(str(dump))[0])
        assert "score" in rendered and "model_forward" in rendered
        assert "mode=replay" in rendered
        summary = summarize_traces(read_traces(str(dump)))
        assert "cafe000000000000" in summary  # the trace is accounted for

    def test_cli_renders_dump(self, tmp_path, capsys):
        dump = self._dumped_trace(tmp_path)
        assert cli.main(["trace", str(dump)]) == 0
        output = capsys.readouterr().out
        assert "score" in output and "model_forward" in output

    def test_cli_reports_empty_dump(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert cli.main(["trace", str(empty)]) == 1
        assert "no traces" in capsys.readouterr().out.lower()


# ----------------------------------------------------------------------
# End-to-end: one HTTP request, one trace, every shard leg
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """One fitted detector persisted once (same recipe as the cluster tests)."""
    graph = make_separable_graph(num_nodes=GRAPH_NODES, seed=GRAPH_SEED)
    config = BSG4BotConfig(
        pretrain_epochs=10, hidden_dim=8, pretrain_hidden_dim=8,
        subgraph_k=3, max_epochs=3, min_epochs=1, patience=2, batch_size=16,
    )
    detector = BSG4Bot(config)
    detector.fit(graph)
    return api.save_detector(detector, tmp_path_factory.mktemp("obs") / "artifact")


def _raw_request(port, path, body=None, headers=None, method=None, timeout=30.0):
    """urllib round-trip that also returns the response headers and raw body."""
    url = f"http://127.0.0.1:{port}{path}"
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _span_index(trace_dict):
    return {item["span_id"]: item for item in trace_dict["spans"]}


def _assert_containment(trace_dict, epsilon=0.005):
    """Every child span must lie inside its parent's [offset, offset+duration]."""
    by_id = _span_index(trace_dict)
    for item in trace_dict["spans"]:
        parent_id = item["parent_id"]
        if parent_id is None:
            continue
        parent = by_id[parent_id]
        assert item["offset_s"] >= parent["offset_s"] - epsilon, item["name"]
        assert (
            item["offset_s"] + item["duration_s"]
            <= parent["offset_s"] + parent["duration_s"] + epsilon
        ), item["name"]


class TestClusterTracePropagation:
    def test_one_request_yields_one_trace_covering_every_shard(self, artifact):
        tracer = Tracer(1.0)
        registry = MetricsRegistry()
        router = ShardRouter.from_artifact(
            artifact,
            graph=make_separable_graph(num_nodes=GRAPH_NODES, seed=GRAPH_SEED),
            num_shards=2, seed=0, release_pool_on_close=False,
            tracer=tracer, registry=registry,
        )
        request_id = "feedc0de00000001"
        try:
            # Nodes picked from each shard's owned set: the request must fan out.
            nodes = [int(spec.owned[0]) for spec in router.plan.shards]
            nodes += [int(spec.owned[-1]) for spec in router.plan.shards]
            with _ServerThread(router) as server:
                status, headers, body = _raw_request(
                    server.port, "/score", body={"nodes": nodes},
                    headers={"X-Repro-Request-Id": request_id},
                )
                assert status == 200
                assert headers.get("X-Repro-Request-Id") == request_id
                answer = json.loads(body)
                assert answer["request_id"] == request_id

                status, _headers, body = _raw_request(server.port, "/traces")
                assert status == 200
                listing = json.loads(body)
                assert listing["enabled"] is True
                assert listing["stats"]["kept"] == 1
                traces = [
                    trace for trace in listing["traces"]
                    if trace["request_id"] == request_id
                ]
                assert len(traces) == 1  # ONE trace covers the whole fan-out
                trace = traces[0]

                names = [item["name"] for item in trace["spans"]]
                assert names[0] == "http_score"
                for required in ("admission", "route", "queue_wait", "wave",
                                 "wave_collate", "model_forward"):
                    assert required in names, required
                legs = [
                    item for item in trace["spans"] if item["name"] == "shard_leg"
                ]
                assert {leg["attributes"]["shard"] for leg in legs} == {0, 1}
                _assert_containment(trace)
                # queue_wait/wave spans hang off their shard's leg, not the root.
                leg_ids = {leg["span_id"] for leg in legs}
                for item in trace["spans"]:
                    if item["name"] in ("queue_wait", "wave"):
                        assert item["parent_id"] in leg_ids

                # /traces honours ?limit= without erroring on junk.
                status, _headers, body = _raw_request(
                    server.port, "/traces?limit=0"
                )
                assert status == 200 and json.loads(body)["traces"] == []

                # Prometheus exposition via content negotiation, strictly parsed.
                status, headers, body = _raw_request(
                    server.port, "/metrics", headers={"Accept": "text/plain"},
                )
                assert status == 200
                assert headers.get("Content-Type", "").startswith("text/plain")
                text = body.decode("utf-8")
                kinds = validate_exposition(text)
                assert kinds["repro_cluster_requests_total"] == "counter"
                assert kinds["repro_serving_request_latency_seconds"] == "histogram"
                assert 'shard="0"' in text and 'shard="1"' in text

                # JSON /metrics carries the bucket-merged cluster totals.
                status, _headers, body = _raw_request(server.port, "/metrics")
                snapshot = json.loads(body)
                totals = snapshot["cluster_totals"]
                assert totals["requests"] >= 1
                assert totals["request_latency"]["count"] >= 1

            # snapshot() reports the same single-aggregation-path totals.
            totals = router.snapshot()["cluster_totals"]
            per_shard = sum(
                service.metrics.request_latency.count for service in router.services
            )
            assert totals["request_latency"]["count"] == per_shard >= 1
        finally:
            router.close()

    def test_router_minted_trace_finishes_at_fan_in(self, artifact):
        tracer = Tracer(1.0)
        router = ShardRouter.from_artifact(
            artifact,
            graph=make_separable_graph(num_nodes=GRAPH_NODES, seed=GRAPH_SEED),
            num_shards=2, seed=0, release_pool_on_close=False,
            tracer=tracer, registry=MetricsRegistry(),
        )
        try:
            nodes = np.array(
                [int(spec.owned[0]) for spec in router.plan.shards], dtype=np.int64
            )
            handle = router.submit(nodes)
            probabilities = handle.result()
            assert probabilities.shape == (nodes.size, 2)
        finally:
            router.close()
        # No HTTP front door: the router owned the trace and finished it
        # exactly once when the last leg resolved.
        assert tracer.stats()["kept"] == 1
        trace = tracer.recent()[0]
        names = [item["name"] for item in trace["spans"]]
        assert names[0] == "score"
        assert names.count("shard_leg") == 2
        _assert_containment(trace)
