"""Tests for the heterogeneous graph container and adjacency utilities."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    HeteroGraph,
    RelationStore,
    add_self_loops,
    normalized_adjacency,
    row_normalized_adjacency,
    to_symmetric,
)


def small_graph() -> HeteroGraph:
    """5-node, 2-relation graph used throughout these tests."""
    features = np.arange(15, dtype=float).reshape(5, 3)
    labels = np.array([0, 0, 1, 1, 0])
    relations = {
        "follow": (np.array([0, 1, 2, 3]), np.array([1, 0, 3, 2])),
        "mention": (np.array([0, 4]), np.array([2, 2])),
    }
    return HeteroGraph(
        num_nodes=5,
        features=features,
        labels=labels,
        relations=relations,
        train_mask=np.array([True, True, True, False, False]),
        val_mask=np.array([False, False, False, True, False]),
        test_mask=np.array([False, False, False, False, True]),
        name="toy",
    )


class TestRelationStore:
    def test_adjacency_shape_and_binary(self):
        store = RelationStore("r", np.array([0, 0, 1]), np.array([1, 1, 2]), num_nodes=3)
        adjacency = store.adjacency()
        assert adjacency.shape == (3, 3)
        # Duplicate edge (0, 1) is collapsed to a single binary entry.
        assert adjacency[0, 1] == 1.0
        assert store.num_edges == 3

    def test_neighbors(self):
        store = RelationStore("r", np.array([0, 0, 2]), np.array([1, 2, 0]), num_nodes=3)
        assert set(store.out_neighbors(0)) == {1, 2}
        assert set(store.in_neighbors(0)) == {2}

    def test_degrees(self):
        store = RelationStore("r", np.array([0, 0, 1]), np.array([1, 2, 2]), num_nodes=3)
        np.testing.assert_allclose(store.degrees("out"), [2, 1, 0])
        np.testing.assert_allclose(store.degrees("in"), [0, 1, 2])

    def test_degrees_invalid_direction(self):
        store = RelationStore("r", np.array([0]), np.array([1]), num_nodes=2)
        with pytest.raises(ValueError):
            store.degrees("sideways")

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError):
            RelationStore("r", np.array([0]), np.array([5]), num_nodes=3)

    def test_rejects_negative_edges(self):
        with pytest.raises(ValueError):
            RelationStore("r", np.array([-1]), np.array([0]), num_nodes=3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            RelationStore("r", np.array([0, 1]), np.array([1]), num_nodes=3)


class TestHeteroGraph:
    def test_basic_properties(self):
        graph = small_graph()
        assert graph.num_features == 3
        assert graph.num_relations == 2
        assert graph.relation_names == ["follow", "mention"]
        assert graph.num_edges == 6

    def test_masks_and_indices(self):
        graph = small_graph()
        np.testing.assert_array_equal(graph.train_indices(), [0, 1, 2])
        np.testing.assert_array_equal(graph.val_indices(), [3])
        np.testing.assert_array_equal(graph.test_indices(), [4])

    def test_class_counts_and_statistics(self):
        graph = small_graph()
        assert graph.class_counts() == {0: 3, 1: 2}
        stats = graph.statistics()
        assert stats["num_users"] == 5
        assert stats["num_bot"] == 2
        assert stats["num_relations"] == 2

    def test_feature_shape_validation(self):
        with pytest.raises(ValueError):
            HeteroGraph(3, np.zeros((2, 4)), np.zeros(3), {})

    def test_label_shape_validation(self):
        with pytest.raises(ValueError):
            HeteroGraph(3, np.zeros((3, 4)), np.zeros(2), {})

    def test_mask_length_validation(self):
        with pytest.raises(ValueError):
            HeteroGraph(3, np.zeros((3, 2)), np.zeros(3), {}, train_mask=np.array([True]))

    def test_merged_adjacency_symmetric_binary(self):
        graph = small_graph()
        merged = graph.merged_adjacency(symmetric=True)
        assert (merged != merged.T).nnz == 0
        assert set(np.unique(merged.data)) == {1.0}

    def test_merged_adjacency_empty_relations(self):
        graph = HeteroGraph(3, np.zeros((3, 2)), np.zeros(3), {})
        merged = graph.merged_adjacency()
        assert merged.nnz == 0

    def test_node_subgraph_remaps_edges(self):
        graph = small_graph()
        sub = graph.node_subgraph([2, 3])
        assert sub.num_nodes == 2
        follow = sub.relation("follow")
        # Original edges 2->3 and 3->2 survive with remapped endpoints.
        assert follow.num_edges == 2
        assert set(zip(follow.src.tolist(), follow.dst.tolist())) == {(0, 1), (1, 0)}
        np.testing.assert_array_equal(sub.labels, [1, 1])

    def test_node_subgraph_drops_outside_edges(self):
        graph = small_graph()
        sub = graph.node_subgraph([0, 2])
        assert sub.relation("follow").num_edges == 0
        assert sub.relation("mention").num_edges == 1

    def test_with_features_replaces_matrix_only(self):
        graph = small_graph()
        new_features = np.zeros((5, 10))
        copy = graph.with_features(new_features)
        assert copy.num_features == 10
        assert copy.num_edges == graph.num_edges
        np.testing.assert_array_equal(copy.labels, graph.labels)

    def test_repr_contains_name(self):
        assert "toy" in repr(small_graph())


class TestAdjacencyNormalisation:
    def setup_method(self):
        self.adjacency = sp.csr_matrix(
            np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=float)
        )

    def test_to_symmetric(self):
        symmetric = to_symmetric(self.adjacency)
        assert (symmetric != symmetric.T).nnz == 0
        assert symmetric[1, 0] == 1.0

    def test_add_self_loops(self):
        looped = add_self_loops(self.adjacency)
        np.testing.assert_allclose(looped.diagonal(), np.ones(3))

    def test_add_self_loops_idempotent_on_values(self):
        looped = add_self_loops(add_self_loops(self.adjacency))
        assert looped.max() == 1.0

    def test_normalized_adjacency_row_sums(self):
        symmetric = to_symmetric(self.adjacency)
        normalized = normalized_adjacency(symmetric)
        # Symmetric normalisation of a connected graph keeps values in (0, 1].
        assert normalized.data.max() <= 1.0 + 1e-12
        assert (normalized != normalized.T).nnz == 0

    def test_row_normalized_rows_sum_to_one(self):
        normalized = row_normalized_adjacency(self.adjacency)
        sums = np.asarray(normalized.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, np.ones(3), atol=1e-12)

    def test_row_normalized_without_self_loops_handles_isolated(self):
        normalized = row_normalized_adjacency(self.adjacency, self_loops=False)
        sums = np.asarray(normalized.sum(axis=1)).ravel()
        # Node 2 has no out-edges: its row stays all-zero instead of NaN.
        np.testing.assert_allclose(sums, [1.0, 1.0, 0.0], atol=1e-12)

    def test_normalized_adjacency_isolated_node(self):
        isolated = sp.csr_matrix((3, 3))
        normalized = normalized_adjacency(isolated, self_loops=False)
        assert np.all(np.isfinite(normalized.toarray()))
