"""Tests for the twelve baseline detectors and the plugin wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BiasedSubgraphPluginDetector,
    available_detectors,
    get_detector,
)
from repro.core import BSG4Bot, BSG4BotConfig
from tests.conftest import make_separable_graph

FAST_KWARGS = dict(hidden_dim=12, max_epochs=15, patience=4, seed=0)

ALL_BASELINES = [
    "roberta",
    "mlp",
    "gcn",
    "gat",
    "graphsage",
    "clustergcn",
    "slimg",
    "botrgcn",
    "rgt",
    "botmoe",
    "h2gcn",
    "gprgnn",
]


@pytest.fixture(scope="module")
def toy_graph():
    return make_separable_graph(num_nodes=90, num_relations=2, homophily=0.85, seed=10)


class TestRegistry:
    def test_all_paper_baselines_available(self):
        names = set(available_detectors())
        assert set(ALL_BASELINES) <= names
        assert "bsg4bot" in names

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_detector("random-forest")

    def test_registry_instantiates_fresh_objects(self):
        assert get_detector("gcn") is not get_detector("gcn")

    def test_bsg4bot_built_through_registry(self):
        detector = get_detector("bsg4bot")
        assert isinstance(detector, BSG4Bot)


class TestBaselineFitPredict:
    @pytest.mark.parametrize("name", ALL_BASELINES)
    def test_detector_learns_separable_graph(self, name, toy_graph):
        detector = get_detector(name, **FAST_KWARGS)
        history = detector.fit(toy_graph)
        assert history.num_epochs >= 1
        probabilities = detector.predict_proba(toy_graph)
        assert probabilities.shape == (toy_graph.num_nodes, 2)
        np.testing.assert_allclose(
            probabilities.sum(axis=1), np.ones(toy_graph.num_nodes), atol=1e-6
        )
        metrics = detector.evaluate(toy_graph)
        # The toy graph is very separable: every detector must beat chance.
        assert metrics["accuracy"] > 60.0

    @pytest.mark.parametrize("name", ["gcn", "botrgcn"])
    def test_detectors_transfer_to_new_graph(self, name, toy_graph):
        detector = get_detector(name, **FAST_KWARGS)
        detector.fit(toy_graph)
        unseen = make_separable_graph(num_nodes=50, num_relations=2, seed=11)
        predictions = detector.predict(unseen)
        assert predictions.shape == (50,)

    def test_predict_before_fit_raises(self, toy_graph):
        with pytest.raises(RuntimeError):
            get_detector("gcn", **FAST_KWARGS).predict_proba(toy_graph)

    def test_roberta_uses_fewer_features_than_mlp(self, tiny_mgtab):
        roberta = get_detector("roberta", **FAST_KWARGS)
        mlp = get_detector("mlp", **FAST_KWARGS)
        graph = tiny_mgtab.graph
        roberta_matrix = roberta._feature_matrix(graph)
        mlp_matrix = mlp._feature_matrix(graph)
        assert roberta_matrix.shape[1] < mlp_matrix.shape[1]

    def test_history_contains_epoch_times(self, toy_graph):
        detector = get_detector("gcn", **FAST_KWARGS)
        history = detector.fit(toy_graph)
        assert len(history.epoch_times) == history.num_epochs
        assert history.total_time > 0


class TestHeterophilyShape:
    def test_mlp_competitive_with_gcn_on_heterophilic_graph(self, heterophilic_graph):
        """The Section II-C observation: on heterophilic structure a feature
        MLP does not fall behind a vanilla GCN by any meaningful margin
        (on real benchmarks it actually wins; on this tiny toy graph we only
        require it to stay within a few points)."""
        mlp = get_detector("mlp", **FAST_KWARGS)
        gcn = get_detector("gcn", **FAST_KWARGS)
        mlp.fit(heterophilic_graph)
        gcn.fit(heterophilic_graph)
        mlp_acc = mlp.evaluate(heterophilic_graph)["accuracy"]
        gcn_acc = gcn.evaluate(heterophilic_graph)["accuracy"]
        assert mlp_acc >= gcn_acc - 10.0


class TestPluginDetector:
    def test_plugin_backbones_run(self, toy_graph):
        config = BSG4BotConfig(
            pretrain_epochs=15, hidden_dim=12, pretrain_hidden_dim=12,
            subgraph_k=4, max_epochs=8, patience=3, batch_size=32,
        )
        for backbone in ("gcn", "gat", "botrgcn"):
            detector = BiasedSubgraphPluginDetector(backbone=backbone, config=config)
            detector.fit(toy_graph)
            metrics = detector.evaluate(toy_graph)
            assert metrics["accuracy"] > 60.0

    def test_plugin_name_reflects_backbone(self):
        assert "GCN" in BiasedSubgraphPluginDetector("gcn").name
        assert "BotRGCN" in BiasedSubgraphPluginDetector("botrgcn").name

    def test_plugin_unknown_backbone_rejected(self):
        with pytest.raises(KeyError):
            BiasedSubgraphPluginDetector("transformer")

    def test_plugin_requires_training_graph_for_prediction(self, toy_graph):
        config = BSG4BotConfig(
            pretrain_epochs=5, hidden_dim=8, pretrain_hidden_dim=8,
            subgraph_k=3, max_epochs=2, patience=2, batch_size=32,
        )
        detector = BiasedSubgraphPluginDetector("gcn", config=config)
        detector.fit(toy_graph)
        other = make_separable_graph(num_nodes=30, seed=12)
        with pytest.raises(ValueError):
            detector.predict_proba(other)
