"""Hypothesis property tests for the autograd engine.

These complement the example-based gradient checks in
``test_tensor_autograd.py`` with invariants that must hold for arbitrary
shapes and values: softmax normalisation, gradient shape preservation,
linearity of the backward pass, and agreement between analytic gradients and
finite differences on randomly drawn inputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, concat, log_softmax, matmul, softmax

SHAPES = st.tuples(st.integers(1, 6), st.integers(1, 6))


def arrays(shape, lo=-5.0, hi=5.0):
    rows, cols = shape
    return st.lists(
        st.lists(st.floats(lo, hi, allow_nan=False), min_size=cols, max_size=cols),
        min_size=rows,
        max_size=rows,
    ).map(np.array)


class TestSoftmaxProperties:
    @given(SHAPES.flatmap(arrays))
    @settings(max_examples=40, deadline=None)
    def test_rows_sum_to_one_and_positive(self, values):
        probabilities = softmax(Tensor(values), axis=-1).numpy()
        np.testing.assert_allclose(probabilities.sum(axis=-1), 1.0, atol=1e-9)
        assert np.all(probabilities >= 0)

    @given(SHAPES.flatmap(arrays), st.floats(-10.0, 10.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_shift_invariance(self, values, shift):
        base = softmax(Tensor(values), axis=-1).numpy()
        shifted = softmax(Tensor(values + shift), axis=-1).numpy()
        np.testing.assert_allclose(base, shifted, atol=1e-9)

    @given(SHAPES.flatmap(arrays))
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_upper_bounded_by_zero(self, values):
        log_probs = log_softmax(Tensor(values), axis=-1).numpy()
        assert np.all(log_probs <= 1e-12)


class TestGradientProperties:
    @given(SHAPES.flatmap(arrays))
    @settings(max_examples=40, deadline=None)
    def test_gradient_shape_matches_input(self, values):
        t = Tensor(values, requires_grad=True)
        (softmax(t) * t).sum().backward()
        assert t.grad.shape == values.shape
        assert np.all(np.isfinite(t.grad))

    @given(SHAPES.flatmap(arrays))
    @settings(max_examples=40, deadline=None)
    def test_sum_gradient_is_ones(self, values):
        t = Tensor(values, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(values))

    @given(SHAPES.flatmap(arrays), st.floats(-3.0, 3.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_backward_is_linear_in_scale(self, values, scale):
        first = Tensor(values, requires_grad=True)
        (first * 1.0).sum().backward()
        second = Tensor(values, requires_grad=True)
        (second * scale).sum().backward()
        np.testing.assert_allclose(second.grad, scale * first.grad, atol=1e-9)

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_matmul_gradient_matches_finite_difference(self, n, k, m, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, k))
        b = rng.normal(size=(k, m))
        weights = rng.normal(size=(n, m))
        ta = Tensor(a.copy(), requires_grad=True)
        (matmul(ta, Tensor(b)) * Tensor(weights)).sum().backward()
        expected = weights @ b.T
        np.testing.assert_allclose(ta.grad, expected, atol=1e-8)

    @given(SHAPES.flatmap(arrays), SHAPES.flatmap(arrays))
    @settings(max_examples=30, deadline=None)
    def test_concat_gradient_partitions(self, left, right):
        if left.shape[0] != right.shape[0]:
            right = np.resize(right, (left.shape[0], right.shape[1]))
        a = Tensor(left, requires_grad=True)
        b = Tensor(right, requires_grad=True)
        concat([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones_like(left))
        np.testing.assert_allclose(b.grad, np.ones_like(right))
