"""Concurrency stress tests: ``SubgraphStore.collate`` and
``DetectionSession.score_nodes`` under many threads must produce results
bit-identical to serial execution of the same calls."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import api
from repro.core import BSG4Bot, BSG4BotConfig
from tests.conftest import make_separable_graph

GRAPH_SEED = 21
NUM_THREADS = 8
ROUNDS = 6


def _make_graph():
    return make_separable_graph(num_nodes=60, seed=GRAPH_SEED)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    graph = _make_graph()
    config = BSG4BotConfig(
        pretrain_epochs=10, hidden_dim=8, pretrain_hidden_dim=8,
        subgraph_k=3, max_epochs=3, min_epochs=1, patience=2, batch_size=16,
    )
    detector = BSG4Bot(config)
    detector.fit(graph)
    return api.save_detector(detector, tmp_path_factory.mktemp("stress") / "artifact")


def _fresh(artifact):
    graph = _make_graph()
    return api.load_detector(artifact, graph=graph), graph


def _run_threads(worker, count=NUM_THREADS):
    errors: list = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as error:  # noqa: BLE001 — re-raised below
            errors.append(error)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def _assert_batches_equal(left, right):
    np.testing.assert_array_equal(left.features, right.features)
    np.testing.assert_array_equal(left.center_positions, right.center_positions)
    np.testing.assert_array_equal(left.center_nodes, right.center_nodes)
    np.testing.assert_array_equal(left.labels, right.labels)
    assert left.relation_adjacencies.keys() == right.relation_adjacencies.keys()
    for name, adjacency in left.relation_adjacencies.items():
        other = right.relation_adjacencies[name]
        np.testing.assert_array_equal(adjacency.indptr, other.indptr)
        np.testing.assert_array_equal(adjacency.indices, other.indices)
        np.testing.assert_array_equal(adjacency.data, other.data)


class TestConcurrentCollate:
    def test_concurrent_collate_bit_identical_to_serial(self, artifact):
        detector, _ = _fresh(artifact)
        store = detector.store
        rng = np.random.default_rng(0)
        centers = np.asarray(store.nodes())
        memberships = [
            np.sort(rng.choice(centers, size=int(rng.integers(2, 12)), replace=False))
            for _ in range(NUM_THREADS * ROUNDS)
        ]
        # Serial reference on an identical store loaded from the artifact.
        reference_detector, _ = _fresh(artifact)
        reference = [
            reference_detector.store.collate(nodes) for nodes in memberships
        ]

        results: dict = {}

        def worker(index):
            for round_index in range(ROUNDS):
                position = index * ROUNDS + round_index
                results[position] = store.collate(memberships[position])
                if round_index == ROUNDS // 2 and index == 0:
                    # Drop the packs mid-flight: concurrent collates must
                    # transparently rebuild them without corruption.
                    store.clear_caches()

        _run_threads(worker)
        for position, batch in results.items():
            _assert_batches_equal(batch, reference[position])

    def test_concurrent_collate_with_cache_disabled(self, artifact):
        detector, _ = _fresh(artifact)
        store = detector.store
        nodes = np.sort(np.asarray(store.nodes())[:8])
        reference = store.collate(nodes, use_cache=False)
        results: dict = {}

        def worker(index):
            results[index] = store.collate(nodes, use_cache=False)

        _run_threads(worker)
        for batch in results.values():
            _assert_batches_equal(batch, reference)


class TestConcurrentScoreNodes:
    def test_concurrent_score_nodes_bit_identical_to_serial(self, artifact):
        """The satellite acceptance test: N threads scoring disjoint request
        sequences — including centers missing from the store, which force
        builds through the builder — get scores bit-identical to running
        the same sequences serially."""
        rng = np.random.default_rng(1)
        request_lists = [
            [
                np.unique(rng.integers(0, 60, int(rng.integers(1, 6))))
                for _ in range(ROUNDS)
            ]
            for _ in range(NUM_THREADS)
        ]

        serial_detector, serial_graph = _fresh(artifact)
        with api.DetectionSession(serial_detector, serial_graph) as session:
            expected = [
                [session.score_nodes(nodes) for nodes in per_thread]
                for per_thread in request_lists
            ]

        concurrent_detector, concurrent_graph = _fresh(artifact)
        session = api.DetectionSession(concurrent_detector, concurrent_graph)
        results: dict = {}

        def worker(index):
            results[index] = [
                session.score_nodes(nodes) for nodes in request_lists[index]
            ]

        try:
            _run_threads(worker)
        finally:
            session.close(release_pool=False)
        for index in range(NUM_THREADS):
            for round_index in range(ROUNDS):
                np.testing.assert_array_equal(
                    results[index][round_index], expected[index][round_index]
                )

    def test_concurrent_scores_interleaved_with_updates(self, artifact):
        """Scores and updates racing from different threads must match *some*
        serial interleaving: every response equals the fresh-session score
        at whichever update prefix the session had applied."""
        detector, graph = _fresh(artifact)
        session = api.DetectionSession(detector, graph)
        node = 9
        original = graph.features[node].copy()
        shifted = original + 3.0
        scores: list = []

        def scorer(index):
            for _ in range(ROUNDS):
                scores.append(session.score_nodes([node]))

        def updater(index):
            session.apply_delta(features_changed={node: shifted})

        threads = [threading.Thread(target=scorer, args=(i,)) for i in range(3)]
        threads.append(threading.Thread(target=updater, args=(3,)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        session.close(release_pool=False)

        before_detector, before_graph = _fresh(artifact)
        with api.DetectionSession(before_detector, before_graph) as reference:
            value_before = reference.score_nodes([node])
        after_detector, after_graph = _fresh(artifact)
        with api.DetectionSession(after_detector, after_graph) as reference:
            reference.apply_delta(features_changed={node: shifted})
            value_after = reference.score_nodes([node])
        for row in scores:
            assert np.array_equal(row, value_before) or np.array_equal(row, value_after)


def _replay_buffer_ids(engine):
    """ids of every preallocated replay buffer an engine owns."""
    buffers = set()
    if engine is None:
        return buffers
    for compiled in engine._compiled.values():
        for value in compiled._values:
            if value.kind == "buffer":
                buffers.add(id(value.buffer))
    return buffers


class TestConcurrentReplaySessions:
    def test_sessions_never_share_replay_buffers(self, artifact):
        """Two sessions scoring the same nodes concurrently each trace their
        own compiled schedules: distinct engines, disjoint buffer storage,
        and scores bit-identical to a serial session's."""
        serial_detector, serial_graph = _fresh(artifact)
        nodes = [np.array([1, 2, 3]), np.array([10]), np.arange(8)]
        with api.DetectionSession(serial_detector, serial_graph) as session:
            expected = [session.score_nodes(batch) for batch in nodes]
            expected = expected + expected  # warm pass replays, must agree

        detector, graph = _fresh(artifact)
        sessions = [api.DetectionSession(detector, graph) for _ in range(2)]
        results: dict = {}

        def worker(index):
            session = sessions[index % 2]
            results[index] = [session.score_nodes(batch) for batch in nodes + nodes]

        try:
            _run_threads(worker, count=4)
        finally:
            engines = [session._replay_engine for session in sessions]
            for session in sessions:
                session.close(release_pool=False)

        for rows in results.values():
            for produced, reference in zip(rows, expected):
                np.testing.assert_array_equal(produced, reference)
        assert engines[0] is not None and engines[1] is not None
        assert engines[0] is not engines[1]
        left, right = _replay_buffer_ids(engines[0]), _replay_buffer_ids(engines[1])
        assert left and right
        assert left.isdisjoint(right), "sessions share mutable replay buffers"
