"""Unit tests for the perf gate's comparison logic (no benchmarks run)."""

from __future__ import annotations

import json

from benchmarks.perf_gate import check, check_relative, load_baseline, merge_baseline

THRESHOLDS = {
    "metrics": {
        "sweep_s": {"max": 2.0},
        "speedup": {"min": 4.0},
    }
}


class TestAbsoluteCheck:
    def test_passes_within_bounds(self):
        assert check({"sweep_s": 1.0, "speedup": 5.0}, THRESHOLDS, 1.5) == []

    def test_tolerance_scales_max_but_not_min(self):
        # 2.9 < 2.0 * 1.5 passes; a ratio below its floor fails regardless.
        assert check({"sweep_s": 2.9, "speedup": 5.0}, THRESHOLDS, 1.5) == []
        failures = check({"sweep_s": 1.0, "speedup": 3.9}, THRESHOLDS, 1.5)
        assert len(failures) == 1 and "speedup" in failures[0]

    def test_missing_metric_fails(self):
        failures = check({"sweep_s": 1.0}, THRESHOLDS, 1.5)
        assert len(failures) == 1 and "missing" in failures[0]


class TestRelativeCheck:
    BASELINE = {"sweep_s": 1.0, "speedup": 6.0}

    def test_passes_within_relative_tolerance(self):
        metrics = {"sweep_s": 1.4, "speedup": 4.5}
        assert check_relative(metrics, self.BASELINE, THRESHOLDS, 1.6) == []

    def test_wall_clock_growth_beyond_tolerance_fails(self):
        failures = check_relative(
            {"sweep_s": 1.7, "speedup": 6.0}, self.BASELINE, THRESHOLDS, 1.6
        )
        assert len(failures) == 1 and "sweep_s" in failures[0]

    def test_ratio_shrink_beyond_tolerance_fails(self):
        failures = check_relative(
            {"sweep_s": 1.0, "speedup": 3.0}, self.BASELINE, THRESHOLDS, 1.6
        )
        assert len(failures) == 1 and "speedup" in failures[0]

    def test_metric_absent_from_baseline_is_skipped(self):
        # A newly added benchmark has no baseline yet: the absolute bounds
        # cover it, the relative pass must not fail it.
        assert check_relative(
            {"sweep_s": 1.0, "speedup": 6.0, "new_metric": 9.9},
            {"speedup": 6.0},
            {"metrics": {**THRESHOLDS["metrics"], "new_metric": {"max": 1.0}}},
            1.6,
        ) == []


class TestMergeBaseline:
    def test_keeps_best_per_direction(self):
        # Slower wall-clock and worse ratio: the stored best must not loosen.
        merged = merge_baseline(
            {"sweep_s": 1.3, "speedup": 5.0}, {"sweep_s": 1.0, "speedup": 6.0}, THRESHOLDS
        )
        assert merged == {"sweep_s": 1.0, "speedup": 6.0}

    def test_improvements_ratchet_in(self):
        merged = merge_baseline(
            {"sweep_s": 0.8, "speedup": 7.0}, {"sweep_s": 1.0, "speedup": 6.0}, THRESHOLDS
        )
        assert merged == {"sweep_s": 0.8, "speedup": 7.0}

    def test_slow_drift_accumulates_against_rolling_best(self):
        # The scenario the rolling best exists for: +50% per run passes a
        # 1.6x per-run check forever if the baseline follows along; against
        # the rolling best the second step already fails.
        baseline = {"sweep_s": 1.0, "speedup": 6.0}
        step_one = {"sweep_s": 1.5, "speedup": 6.0}
        assert check_relative(step_one, baseline, THRESHOLDS, 1.6) == []
        baseline = merge_baseline(step_one, baseline, THRESHOLDS)
        step_two = {"sweep_s": 2.25, "speedup": 6.0}
        assert check_relative(step_two, baseline, THRESHOLDS, 1.6) != []

    def test_new_metrics_pass_through(self):
        merged = merge_baseline(
            {"sweep_s": 1.2, "speedup": 6.5, "fresh": 3.0},
            {"sweep_s": 1.0},
            THRESHOLDS,
        )
        assert merged["fresh"] == 3.0 and merged["speedup"] == 6.5
        assert merged["sweep_s"] == 1.0


class TestLoadBaseline:
    def test_reads_metrics_from_result_file(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"metrics": {"sweep_s": 1.25}}))
        assert load_baseline(path) == {"sweep_s": 1.25}

    def test_missing_file_yields_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_corrupt_file_yields_empty(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{ truncated")
        assert load_baseline(path) == {}

    def test_wrong_shape_yields_empty(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"metrics": [1, 2, 3]}))
        assert load_baseline(path) == {}
