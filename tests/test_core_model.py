"""Tests for the pre-trained classifier, BSG4Bot model and configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BSG4BotConfig, BSG4BotModel, PretrainedClassifier
from repro.sampling import BiasedSubgraphBuilder, collate_subgraphs
from tests.conftest import make_separable_graph


@pytest.fixture(scope="module")
def toy_graph():
    return make_separable_graph(num_nodes=60, num_relations=2, seed=4)


@pytest.fixture(scope="module")
def toy_batch(toy_graph):
    builder = BiasedSubgraphBuilder(toy_graph, toy_graph.features, k=4)
    subgraphs = [builder.build(i) for i in range(6)]
    return collate_subgraphs(subgraphs, toy_graph)


class TestConfig:
    def test_defaults_are_valid(self):
        BSG4BotConfig().validate()

    def test_with_overrides_returns_copy(self):
        config = BSG4BotConfig()
        changed = config.with_overrides(subgraph_k=32)
        assert changed.subgraph_k == 32
        assert config.subgraph_k == 16

    @pytest.mark.parametrize(
        "field,value",
        [
            ("subgraph_k", 0),
            ("mix_lambda", 1.5),
            ("num_layers", 0),
            ("hidden_dim", 0),
            ("dropout", 1.0),
            ("batch_size", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            BSG4BotConfig(**{field: value}).validate()


class TestPretrainedClassifier:
    def test_learns_separable_features(self, toy_graph):
        classifier = PretrainedClassifier(toy_graph.num_features, hidden_dim=16, epochs=40)
        history = classifier.fit_graph(toy_graph)
        assert history.best_val_score > 0.8
        predictions = classifier.predict(toy_graph.features)
        train_idx = toy_graph.train_indices()
        accuracy = np.mean(predictions[train_idx] == toy_graph.labels[train_idx])
        assert accuracy > 0.85

    def test_hidden_representations_shape(self, toy_graph):
        classifier = PretrainedClassifier(toy_graph.num_features, hidden_dim=12, epochs=5)
        classifier.fit_graph(toy_graph)
        hidden = classifier.hidden_representations(toy_graph.features)
        assert hidden.shape == (toy_graph.num_nodes, 12)

    def test_predict_proba_rows_sum_to_one(self, toy_graph):
        classifier = PretrainedClassifier(toy_graph.num_features, hidden_dim=8, epochs=5)
        classifier.fit_graph(toy_graph)
        probabilities = classifier.predict_proba(toy_graph.features)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(toy_graph.num_nodes), atol=1e-9)

    def test_similar_nodes_have_similar_hidden_vectors(self, toy_graph):
        """Hidden-space cosine similarity (Eq. 6) separates the two classes."""
        classifier = PretrainedClassifier(toy_graph.num_features, hidden_dim=16, epochs=40)
        classifier.fit_graph(toy_graph)
        hidden = classifier.hidden_representations(toy_graph.features)
        normed = hidden / (np.linalg.norm(hidden, axis=1, keepdims=True) + 1e-12)
        labels = toy_graph.labels
        same = normed[labels == 1] @ normed[labels == 1].T
        cross = normed[labels == 1] @ normed[labels == 0].T
        assert same.mean() > cross.mean()


class TestBSG4BotModel:
    def test_forward_shapes(self, toy_graph, toy_batch):
        model = BSG4BotModel(
            in_features=toy_graph.num_features,
            hidden_dim=8,
            relation_names=toy_graph.relation_names,
            num_layers=2,
        )
        logits = model(toy_batch)
        assert logits.shape == (toy_batch.num_centers, 2)

    def test_intermediate_concat_changes_dimension(self, toy_graph):
        with_concat = BSG4BotModel(
            toy_graph.num_features, 8, toy_graph.relation_names, num_layers=2,
            use_intermediate_concat=True,
        )
        without_concat = BSG4BotModel(
            toy_graph.num_features, 8, toy_graph.relation_names, num_layers=2,
            use_intermediate_concat=False,
        )
        assert with_concat.final_dim == 8 * 3
        assert without_concat.final_dim == 8

    def test_relation_weights_sum_to_one(self, toy_graph, toy_batch):
        model = BSG4BotModel(
            toy_graph.num_features, 8, toy_graph.relation_names, num_layers=1
        )
        model.eval()
        model(toy_batch)
        weights = model.last_relation_weights
        assert weights.shape == (len(toy_graph.relation_names),)
        assert weights.sum() == pytest.approx(1.0, abs=1e-9)

    def test_mean_pooling_uses_uniform_weights(self, toy_graph, toy_batch):
        model = BSG4BotModel(
            toy_graph.num_features, 8, toy_graph.relation_names, num_layers=1,
            use_semantic_attention=False,
        )
        model.eval()
        model(toy_batch)
        np.testing.assert_allclose(model.last_relation_weights, [0.5, 0.5])

    def test_gradients_reach_all_parameter_groups(self, toy_graph, toy_batch):
        from repro.tensor import cross_entropy

        model = BSG4BotModel(
            toy_graph.num_features, 8, toy_graph.relation_names, num_layers=2
        )
        logits = model(toy_batch)
        loss = cross_entropy(logits, toy_batch.labels)
        loss.backward()
        named = model.named_parameters()
        with_grad = [name for name, param in named.items() if param.grad is not None]
        assert "input_transform.weight" in with_grad
        assert any(name.startswith("relation_convs") for name in with_grad)
        assert any(name.startswith("semantic_attention") for name in with_grad)
        assert "classifier.weight" in with_grad

    def test_invalid_layer_count(self, toy_graph):
        with pytest.raises(ValueError):
            BSG4BotModel(toy_graph.num_features, 8, toy_graph.relation_names, num_layers=0)

    def test_eval_mode_is_deterministic(self, toy_graph, toy_batch):
        model = BSG4BotModel(
            toy_graph.num_features, 8, toy_graph.relation_names, num_layers=2, dropout=0.5
        )
        model.eval()
        first = model(toy_batch).numpy()
        second = model(toy_batch).numpy()
        np.testing.assert_allclose(first, second)

    def test_train_mode_dropout_is_stochastic(self, toy_graph, toy_batch):
        model = BSG4BotModel(
            toy_graph.num_features, 8, toy_graph.relation_names, num_layers=2, dropout=0.5
        )
        model.train()
        first = model(toy_batch).numpy()
        second = model(toy_batch).numpy()
        assert not np.allclose(first, second)
