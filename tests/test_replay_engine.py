"""Capture-and-replay inference engine: bit-identity, buckets, fallbacks.

Every assertion here is exact (``np.array_equal``, no tolerances): the
engine's contract is that ``ReplayEngine.forward_proba`` is bit-identical
to its oracle ``eager_forward_proba`` — a compiled schedule that drifts by
one ULP must never serve traffic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.core import BSG4Bot, BSG4BotConfig
from repro.tensor import Tensor, concat, inference_mode, is_inference, softmax
from repro.tensor.replay import (
    ReplayEngine,
    bucket_key,
    eager_forward_proba,
    trace_forward_proba,
)
from tests.conftest import make_separable_graph

GRAPH_SEED = 33


def _make_graph():
    return make_separable_graph(num_nodes=60, seed=GRAPH_SEED)


@pytest.fixture(scope="module")
def detector():
    graph = _make_graph()
    config = BSG4BotConfig(
        pretrain_epochs=10, hidden_dim=8, pretrain_hidden_dim=8,
        subgraph_k=3, max_epochs=3, min_epochs=1, patience=2, batch_size=16,
    )
    fitted = BSG4Bot(config)
    fitted.fit(graph)
    # Pre-build every subgraph so tests can collate arbitrary node sets.
    fitted.predict_proba_nodes(np.arange(graph.num_nodes))
    return fitted


def _batch(detector, nodes):
    nodes = np.asarray(nodes, dtype=np.int64)
    detector.predict_proba_nodes(nodes)  # builds any missing subgraphs
    return detector.store.collate(nodes)


class TestReplayBitIdentity:
    @pytest.mark.parametrize("size", [1, 3, 7, 16])
    def test_trace_then_replay_bit_identical(self, detector, size):
        rng = np.random.default_rng(size)
        batch = _batch(detector, rng.choice(60, size=size, replace=False))
        engine = ReplayEngine()
        reference = eager_forward_proba(detector.model, batch)
        cold = engine.forward_proba(detector.model, batch)  # traces + compiles
        warm = engine.forward_proba(detector.model, batch)  # replays
        assert np.array_equal(cold, reference)
        assert np.array_equal(warm, reference)
        assert not engine.disabled

    def test_second_call_hits_the_bucket(self, detector):
        batch = _batch(detector, [0, 1, 2])
        engine = ReplayEngine()
        engine.forward_proba(detector.model, batch)
        stats = engine.consume_stats()
        assert stats["replay_misses"] == 1 and stats["replay_hits"] == 0
        engine.forward_proba(detector.model, batch)
        stats = engine.consume_stats()
        assert stats["replay_misses"] == 0 and stats["replay_hits"] == 1
        assert stats["model_s"] > 0.0

    def test_same_bucket_smaller_batch_replays(self, detector):
        # A smaller batch landing in an already-compiled bucket must replay
        # through the sliced buffers bit-identically, not retrace.
        big = _batch(detector, list(range(16)))
        engine = ReplayEngine()
        engine.forward_proba(detector.model, big)
        small = _batch(detector, [40, 41, 42])
        if bucket_key(small) == bucket_key(big):
            reference = eager_forward_proba(detector.model, small)
            replayed = engine.forward_proba(detector.model, small)
            assert np.array_equal(replayed, reference)
            assert engine.consume_stats()["replay_hits"] >= 1

    def test_replayed_output_is_a_private_copy(self, detector):
        batch = _batch(detector, [3, 4])
        engine = ReplayEngine()
        engine.forward_proba(detector.model, batch)
        first = engine.forward_proba(detector.model, batch)
        snapshot = first.copy()
        second = engine.forward_proba(detector.model, batch)
        assert first is not second
        second[...] = -1.0  # scribbling on one result must not reach the other
        assert np.array_equal(first, snapshot)


class TestBuckets:
    def test_eviction_at_capacity(self, detector):
        # Center counts 1 / 20 / 40 land in distinct (pow2) center buckets;
        # with room for two, the third trace evicts the oldest.
        engine = ReplayEngine(max_buckets=2)
        sizes = [[0], list(range(20)), list(range(40))]
        batches = [_batch(detector, nodes) for nodes in sizes]
        assert len({bucket_key(b) for b in batches}) == 3
        for batch in batches:
            engine.forward_proba(detector.model, batch)
        stats = engine.consume_stats()
        assert stats["replay_misses"] == 3
        assert stats["replay_evictions"] == 1
        assert len(engine._compiled) == 2
        # The evicted (oldest) bucket retraces; the survivors replay.
        engine.forward_proba(detector.model, batches[0])
        assert engine.consume_stats()["replay_misses"] == 1

    def test_lru_order_refreshes_on_hit(self, detector):
        engine = ReplayEngine(max_buckets=2)
        a = _batch(detector, [0])
        b = _batch(detector, list(range(20)))
        c = _batch(detector, list(range(40)))
        engine.forward_proba(detector.model, a)
        engine.forward_proba(detector.model, b)
        engine.forward_proba(detector.model, a)  # refresh a → b is now oldest
        engine.forward_proba(detector.model, c)  # evicts b
        engine.consume_stats()
        engine.forward_proba(detector.model, a)
        assert engine.consume_stats()["replay_hits"] == 1


class TestFallbacks:
    def test_unsupported_trace_disables_capture(self, detector):
        class _SymbolicConcatModel:
            def eval(self):
                pass

            def __call__(self, batch):
                x = Tensor(batch.features)
                # Concat along the symbolic node axis is not replayable.
                return concat([x, x], axis=0)

        model = _SymbolicConcatModel()
        batch = _batch(detector, [5, 6])
        engine = ReplayEngine()
        reference = eager_forward_proba(model, batch)
        produced = engine.forward_proba(model, batch)
        assert np.array_equal(produced, reference)
        assert engine.disabled
        assert engine.consume_stats()["replay_misses"] == 1
        # Once disabled the engine serves eager output, never retracing.
        again = engine.forward_proba(model, batch)
        assert np.array_equal(again, reference)
        stats = engine.consume_stats()
        assert stats["replay_misses"] == 0 and stats["replay_hits"] == 0
        assert stats["model_s"] > 0.0

    def test_second_model_stays_eager(self, detector):
        engine = ReplayEngine()
        batch = _batch(detector, [7, 8])
        engine.forward_proba(detector.model, batch)
        other = BSG4Bot(BSG4BotConfig(
            pretrain_epochs=5, hidden_dim=8, pretrain_hidden_dim=8,
            subgraph_k=3, max_epochs=2, min_epochs=1, patience=2, batch_size=16,
        ))
        other.fit(_make_graph())
        other.predict_proba_nodes(np.array([7, 8]))
        engine.consume_stats()
        produced = engine.forward_proba(other.model, batch)
        assert np.array_equal(produced, eager_forward_proba(other.model, batch))
        stats = engine.consume_stats()
        assert stats["replay_hits"] == 0 and stats["replay_misses"] == 0
        assert not engine.disabled  # the first model's buckets stay usable

    def test_capture_disabled_engine_still_times(self, detector):
        engine = ReplayEngine(capture=False)
        batch = _batch(detector, [9])
        produced = engine.forward_proba(detector.model, batch)
        assert np.array_equal(produced, eager_forward_proba(detector.model, batch))
        stats = engine.consume_stats()
        assert stats["model_s"] > 0.0
        assert stats["replay_hits"] == 0 and stats["replay_misses"] == 0


class TestSessionIntegration:
    def test_replay_session_matches_replay_off_session(self, detector):
        graph = _make_graph()
        nodes = [2, 11, 23, 42]
        with api.DetectionSession(detector, graph, use_replay=True) as session:
            replayed_cold = session.score_nodes(nodes)
            replayed_warm = session.score_nodes(nodes)
            stats = session.consume_replay_stats()
        with api.DetectionSession(detector, graph, use_replay=False) as eager:
            reference = eager.score_nodes(nodes)
            eager_stats = eager.consume_replay_stats()
        assert np.array_equal(replayed_cold, reference)
        assert np.array_equal(replayed_warm, reference)
        assert stats["replay_hits"] >= 1
        assert eager_stats["replay_hits"] == 0 and eager_stats["replay_misses"] == 0
        assert eager_stats["model_s"] > 0.0

    def test_env_kill_switch(self, detector, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY", "0")
        graph = _make_graph()
        with api.DetectionSession(detector, graph) as session:
            scores = session.score_nodes([1, 2])
            stats = session.consume_replay_stats()
        assert scores.shape == (2, 2)
        assert stats["replay_misses"] == 0 and stats["replay_hits"] == 0


class TestInferenceSemantics:
    def test_inference_mode_bit_identical_and_graphless(self, detector):
        batch = _batch(detector, [10, 11, 12])
        model = detector.model
        model.eval()
        plain = softmax(model(batch), axis=-1)
        with inference_mode():
            assert is_inference()
            graphless = softmax(model(batch), axis=-1)
        assert not is_inference()
        assert np.array_equal(plain.numpy(), graphless.numpy())
        assert plain._parents  # the autograd path builds a graph...
        assert not graphless._parents  # ...the inference path must not
        assert graphless._backward is None

    def test_trace_forward_matches_eager(self, detector):
        batch = _batch(detector, [13, 14])
        tape, traced = trace_forward_proba(detector.model, batch)
        assert np.array_equal(traced, eager_forward_proba(detector.model, batch))
        assert tape.steps  # the trace actually recorded the forward

    def test_detach_shares_storage_by_default(self):
        source = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        view = source.detach()
        view.data[0, 0] = 99.0
        assert source.data[0, 0] == 99.0  # shared storage, documented default

    def test_detach_copy_is_isolated(self):
        source = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        isolated = source.detach(copy=True)
        isolated.data[0, 0] = 99.0
        assert source.data[0, 0] == 0.0
        assert not isolated.requires_grad
