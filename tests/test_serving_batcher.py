"""Unit tests for the serving building blocks: the micro-batching scheduler,
the delta log, and the telemetry primitives (no trained model involved)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serving import (
    BatcherClosed,
    DeltaLog,
    LatencyHistogram,
    MicroBatcher,
    ServingMetrics,
)
from tests.conftest import make_separable_graph


class TestMicroBatcher:
    def test_single_request_round_trip(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=1.0)
        request = batcher.submit([3, 1, 2])
        wave = batcher.next_wave(poll_timeout=0.5)
        assert [r is request for r in wave] == [True]
        np.testing.assert_array_equal(request.nodes, [3, 1, 2])
        assert request.started_at is not None
        request._resolve(np.zeros((3, 2)))
        assert request.result(1.0).shape == (3, 2)

    def test_concurrent_burst_coalesces_into_one_wave(self):
        batcher = MicroBatcher(max_batch_size=10, max_wait_ms=50.0)
        requests = [batcher.submit([index]) for index in range(5)]
        wave = batcher.next_wave(poll_timeout=0.5)
        assert wave == requests  # FIFO order preserved

    def test_wave_splits_at_max_batch_size(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_ms=50.0)
        requests = [batcher.submit([0, 1]) for _ in range(3)]
        first = batcher.next_wave(poll_timeout=0.5)
        second = batcher.next_wave(poll_timeout=0.5)
        assert first == requests[:2]  # 4 node rows fill the wave
        assert second == requests[2:]

    def test_oversized_request_ships_alone(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_ms=50.0)
        big = batcher.submit(list(range(10)))
        small = batcher.submit([0])
        assert batcher.next_wave(poll_timeout=0.5) == [big]
        assert batcher.next_wave(poll_timeout=0.5) == [small]

    def test_empty_queue_polls_out(self):
        batcher = MicroBatcher()
        assert batcher.next_wave(poll_timeout=0.01) == []

    def test_straggler_joins_during_linger(self):
        batcher = MicroBatcher(max_batch_size=10, max_wait_ms=250.0)
        first = batcher.submit([0])

        def straggler():
            batcher.submit([1])

        timer = threading.Timer(0.01, straggler)
        timer.start()
        try:
            wave = batcher.next_wave(poll_timeout=0.5)
        finally:
            timer.cancel()
        assert len(wave) == 2 and wave[0] is first

    def test_close_rejects_new_submissions(self):
        batcher = MicroBatcher()
        batcher.close()
        with pytest.raises(BatcherClosed):
            batcher.submit([0])

    def test_close_keeps_pending_dispatchable_by_default(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=50.0)
        request = batcher.submit([0])
        batcher.close()
        assert batcher.next_wave(poll_timeout=0.1) == [request]
        assert batcher.next_wave(poll_timeout=0.1) == []

    def test_close_reject_pending_fails_waiters(self):
        batcher = MicroBatcher()
        request = batcher.submit([0])
        batcher.close(reject_pending=True)
        with pytest.raises(BatcherClosed):
            request.result(0.5)
        assert batcher.pending == 0

    def test_result_timeout(self):
        batcher = MicroBatcher()
        request = batcher.submit([0])
        with pytest.raises(TimeoutError):
            request.result(0.01)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_ms=-1.0)


class TestAdaptiveWait:
    """Per-wave linger adaptation: full waves shrink it, sparse waves grow it."""

    def _drain_one_wave(self, batcher):
        wave = batcher.next_wave(poll_timeout=0.5)
        assert wave
        return wave

    def test_disabled_by_default_and_wait_stays_fixed(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_ms=8.0)
        assert not batcher.adaptive_wait
        for _ in range(4):
            batcher.submit([0])
        self._drain_one_wave(batcher)
        assert batcher.current_wait_ms == pytest.approx(8.0)

    def test_full_waves_halve_toward_zero(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_ms=8.0, adaptive_wait=True)
        waits = [batcher.current_wait_ms]
        for _ in range(3):
            for _ in range(4):
                batcher.submit([0])
            self._drain_one_wave(batcher)
            waits.append(batcher.current_wait_ms)
        assert waits == [pytest.approx(w) for w in (8.0, 4.0, 2.0, 1.0)]
        assert all(w > 0.0 for w in waits)  # approaches 0, never reaches it

    def test_sparse_waves_grow_back_to_the_cap(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=8.0, adaptive_wait=True)
        # Decay first: three full waves.
        for _ in range(3):
            for _ in range(8):
                batcher.submit([0])
            self._drain_one_wave(batcher)
        decayed = batcher.current_wait_ms
        assert decayed == pytest.approx(1.0)
        # Sparse traffic (single-node waves) doubles back up, capped.
        for _ in range(6):
            batcher.submit([0])
            self._drain_one_wave(batcher)
        assert batcher.current_wait_ms == pytest.approx(8.0)

    def test_intermediate_wave_leaves_wait_unchanged(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=8.0, adaptive_wait=True)
        for _ in range(8):
            batcher.submit([0])
        self._drain_one_wave(batcher)  # full -> halved
        assert batcher.current_wait_ms == pytest.approx(4.0)
        # 5 of 8 rows: more than half, less than full — no adjustment.
        batcher.submit([0, 1, 2, 3, 4])
        self._drain_one_wave(batcher)
        assert batcher.current_wait_ms == pytest.approx(4.0)

    def test_growth_recovers_from_deep_decay(self):
        batcher = MicroBatcher(max_batch_size=2, max_wait_ms=8.0, adaptive_wait=True)
        # Decay far below the restart floor (max_wait / 64).
        for _ in range(12):
            batcher.submit([0, 1])
            self._drain_one_wave(batcher)
        assert batcher.current_wait_ms < 8.0 / 64.0
        batcher.submit([0])
        self._drain_one_wave(batcher)  # sparse: restarts from the floor
        assert batcher.current_wait_ms == pytest.approx(2 * 8.0 / 64.0)

    def test_wave_composition_unchanged_by_adaptation(self):
        # Same submissions, adaptive on/off: the realized waves are the same
        # FIFO prefixes (the policy moves only the linger deadline, which a
        # pre-filled queue never reaches).
        for adaptive in (False, True):
            batcher = MicroBatcher(
                max_batch_size=4, max_wait_ms=50.0, adaptive_wait=adaptive
            )
            requests = [batcher.submit([0, 1]) for _ in range(3)]
            assert batcher.next_wave(poll_timeout=0.5) == requests[:2]
            assert batcher.next_wave(poll_timeout=0.5) == requests[2:]


class TestDeltaLog:
    @pytest.fixture()
    def graph(self):
        return make_separable_graph(num_nodes=30, seed=7)

    def test_sequences_increment(self, graph):
        log = DeltaLog(graph)
        relation = graph.relation_names[0]
        assert log.tail_seq == -1
        assert log.append(edges_added={relation: ([0], [1])}) == 0
        assert log.append(features_changed={2: graph.features[2] + 1.0}) == 1
        assert log.tail_seq == 1
        assert log.pending == 2
        assert log.applied_seq == -1

    def test_validation_rejects_without_enqueueing(self, graph):
        log = DeltaLog(graph)
        relation = graph.relation_names[0]
        with pytest.raises(KeyError, match="unknown relation"):
            log.append(edges_added={"bogus": ([0], [1])})
        with pytest.raises(ValueError, match="same length"):
            log.append(edges_added={relation: ([0, 1], [2])})
        with pytest.raises(ValueError, match="out of range"):
            log.append(edges_added={relation: ([0], [graph.num_nodes])})
        with pytest.raises(ValueError, match="out of range"):
            log.append(features_changed={graph.num_nodes: np.zeros(graph.num_features)})
        with pytest.raises(ValueError, match="width"):
            log.append(features_changed={0: np.zeros(graph.num_features + 1)})
        assert log.pending == 0 and log.tail_seq == -1

    def test_drain_coalesces_in_log_order(self, graph):
        log = DeltaLog(graph)
        rel_a, rel_b = graph.relation_names[:2]
        row_first = np.full(graph.num_features, 1.0)
        row_last = np.full(graph.num_features, 2.0)
        log.append(edges_added={rel_a: ([0], [1])}, features_changed={5: row_first})
        log.append(edges_added={rel_a: ([2], [3]), rel_b: ([4], [5])})
        log.append(features_changed={5: row_last})
        delta = log.drain()
        assert delta.seq == 2 and delta.coalesced == 3
        np.testing.assert_array_equal(delta.edges_added[rel_a][0], [0, 2])
        np.testing.assert_array_equal(delta.edges_added[rel_a][1], [1, 3])
        np.testing.assert_array_equal(delta.edges_added[rel_b][0], [4])
        np.testing.assert_array_equal(delta.features_changed[5], row_last)
        assert log.pending == 0
        assert log.drain() is None
        log.mark_applied(delta.seq)
        assert log.applied_seq == 2

    def test_empty_edge_lists_are_dropped(self, graph):
        log = DeltaLog(graph)
        relation = graph.relation_names[0]
        log.append(edges_added={relation: ([], [])})
        delta = log.drain()
        assert delta.edges_added == {} and delta.num_edges == 0

    def test_closed_log_refuses_appends_but_drains_pending(self, graph):
        log = DeltaLog(graph)
        relation = graph.relation_names[0]
        log.append(edges_added={relation: ([0], [1])})
        log.close()
        with pytest.raises(RuntimeError, match="closed"):
            log.append(edges_added={relation: ([2], [3])})
        delta = log.drain()
        assert delta is not None and delta.seq == 0


class TestLatencyHistogram:
    def test_empty_snapshot(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["count"] == 0 and snapshot["p99_s"] == 0.0

    def test_percentiles_ordered_and_bounded(self):
        histogram = LatencyHistogram()
        rng = np.random.default_rng(0)
        samples = rng.exponential(0.01, size=500)
        for sample in samples:
            histogram.observe(sample)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 500
        assert snapshot["min_s"] <= snapshot["p50_s"] <= snapshot["p90_s"]
        assert snapshot["p90_s"] <= snapshot["p99_s"] <= snapshot["max_s"] * 1.26 + 1e-9
        assert snapshot["mean_s"] == pytest.approx(samples.mean())

    def test_percentile_estimate_within_bucket_resolution(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.observe(0.010)
        # Geometric buckets: the estimate may overshoot by one bucket (~26%).
        assert 0.010 <= histogram.percentile(0.5) <= 0.013

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)


class TestServingMetrics:
    def test_snapshot_occupancy(self):
        metrics = ServingMetrics()
        metrics.increment("requests", 6)
        metrics.increment("waves", 2)
        metrics.increment("wave_nodes", 6)
        snapshot = metrics.snapshot({"extra_field": 1})
        assert snapshot["batch_occupancy"] == 3.0
        assert snapshot["requests_per_wave"] == 3.0
        assert snapshot["extra_field"] == 1

    def test_snapshot_with_no_waves(self):
        snapshot = ServingMetrics().snapshot()
        assert snapshot["batch_occupancy"] == 0.0
        assert snapshot["requests_per_wave"] == 0.0
