"""Tests for the api-facing CLI subcommands (fit / score / run --output)."""

from __future__ import annotations

import json

import pytest

import repro
import repro.cli as cli
from repro.cli import build_parser, main
from repro.experiments.report import render_results_dir
from repro.experiments.settings import ExperimentScale

TINY = ExperimentScale(
    name="cli-tiny",
    benchmark_users={"twibot-20": 80, "twibot-22": 100, "mgtab": 80},
    tweets_per_user=4,
    max_epochs=3,
    patience=2,
    pretrain_epochs=8,
    hidden_dim=8,
    subgraph_k=3,
    batch_size=32,
)


class TestVersionAndListing:
    def test_version_flag_prints_package_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_detectors_subcommand_lists_registry(self, capsys):
        assert main(["detectors"]) == 0
        output = capsys.readouterr().out
        assert "bsg4bot" in output
        assert "plugin-gcn" in output

    def test_override_parser(self):
        args = build_parser().parse_args(
            ["fit", "mgtab", "--output", "x",
             "--override", "subgraph_k=8", "--override", "use_semantic_attention=false",
             "--override", "store_cache_dir=/tmp/c"]
        )
        assert dict(args.overrides) == {
            "subgraph_k": 8,
            "use_semantic_attention": False,
            "store_cache_dir": "/tmp/c",
        }

    def test_bad_override_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit", "mgtab", "--output", "x", "--override", "nokey"])


class TestRunOutput:
    def test_run_writes_report_compatible_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(cli._SCALES, "small", TINY)
        assert main(["run", "fig3", "--output", str(tmp_path)]) == 0
        path = tmp_path / "fig3.json"
        assert path.exists()
        with open(path) as handle:
            json.load(handle)  # valid JSON
        # The report command renders what run wrote (closing the loop).
        assert "fig3" in render_results_dir(tmp_path)
        assert "result written" in capsys.readouterr().out


class TestFitScore:
    def test_fit_then_score_roundtrip(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setitem(cli._SCALES, "small", TINY)
        artifact = tmp_path / "artifact"
        assert main(
            ["fit", "mgtab", "--output", str(artifact),
             "--override", "min_epochs=1", "--override", "batch_cache_size=8"]
        ) == 0
        assert (artifact / "manifest.json").exists()
        capsys.readouterr()

        assert main(["score", str(artifact), "--nodes", "0,3,7"]) == 0
        output = capsys.readouterr().out
        assert "p(bot)" in output
        assert "3 nodes scored" in output
