"""Tests for the command-line interface and the results-report renderer."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.experiments import fig2, fig10, table1
from repro.experiments.report import format_report, load_results, render_results_dir


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_subcommand_validates_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table99"])

    def test_run_subcommand_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.scale == "small"
        assert args.seed == 0

    def test_report_subcommand_collects_experiments(self):
        args = build_parser().parse_args(
            ["report", "some/dir", "--experiment", "fig2", "--experiment", "fig3"]
        )
        assert args.experiments == ["fig2", "fig3"]


class TestCliCommands:
    def test_benchmarks_command_prints_table(self, capsys, monkeypatch):
        # Avoid building full-size benchmarks inside the CLI test.
        from repro.experiments.settings import ExperimentScale
        import repro.cli as cli

        tiny = ExperimentScale(
            name="cli-tiny",
            benchmark_users={"twibot-20": 80, "twibot-22": 80, "mgtab": 80},
            tweets_per_user=4,
        )
        monkeypatch.setattr(cli, "SMALL", tiny)
        assert main(["benchmarks"]) == 0
        output = capsys.readouterr().out
        assert "mgtab" in output
        assert "# users" in output

    def test_run_command_runs_fig3(self, capsys, monkeypatch):
        from repro.experiments.settings import ExperimentScale
        import repro.cli as cli

        tiny = ExperimentScale(
            name="cli-tiny",
            benchmark_users={"twibot-20": 80, "twibot-22": 100, "mgtab": 80},
            tweets_per_user=4,
        )
        monkeypatch.setitem(cli._SCALES, "small", tiny)
        assert main(["run", "fig3"]) == 0
        output = capsys.readouterr().out
        assert "coefficient of variation" in output

    def test_report_command_missing_directory(self):
        with pytest.raises(FileNotFoundError):
            main(["report", "/nonexistent/results/dir"])


class TestReport:
    @pytest.fixture
    def results_dir(self, tmp_path, tiny_scale) -> Path:
        directory = tmp_path / "results"
        directory.mkdir()
        result = table1.run(scale=tiny_scale)
        with open(directory / "table1.json", "w") as handle:
            json.dump(result, handle, default=float)
        # An unknown file should simply be ignored.
        with open(directory / "notes.json", "w") as handle:
            json.dump({"hello": 1}, handle)
        return directory

    def test_load_results_filters_unknown_files(self, results_dir):
        results = load_results(results_dir)
        assert set(results) == {"table1"}

    def test_format_report_renders_known_and_missing(self, results_dir):
        results = load_results(results_dir)
        text = format_report(results, ["table1", "fig2"])
        assert "== table1 ==" in text
        assert "(no saved result)" in text

    def test_render_results_dir_end_to_end(self, results_dir):
        text = render_results_dir(results_dir)
        assert "mgtab" in text

    def test_fig10_keys_normalised_from_json(self, tmp_path):
        # Simulate the JSON round-trip: integer k values become strings.
        raw = {
            "mgtab": {
                "4": {"accuracy": 80.0, "f1": 70.0},
                "8": {"accuracy": 82.0, "f1": 72.0},
            }
        }
        directory = tmp_path / "results"
        directory.mkdir()
        with open(directory / "fig10.json", "w") as handle:
            json.dump(raw, handle)
        text = render_results_dir(directory)
        assert "fig10" in text and "k" in text

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path / "does-not-exist")
