"""Tests for exact and approximate personalized PageRank."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ppr import approximate_ppr, power_iteration_ppr, topk_ppr_neighbors


def ring_graph(num_nodes: int) -> sp.csr_matrix:
    src = np.arange(num_nodes)
    dst = (src + 1) % num_nodes
    data = np.ones(num_nodes)
    return sp.coo_matrix((data, (src, dst)), shape=(num_nodes, num_nodes)).tocsr()


def random_graph(num_nodes: int, density: float, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    dense = (rng.random((num_nodes, num_nodes)) < density).astype(float)
    np.fill_diagonal(dense, 0)
    return sp.csr_matrix(dense)


class TestPowerIterationPPR:
    def test_distribution_sums_to_one(self):
        adjacency = random_graph(12, 0.3, seed=0)
        scores = power_iteration_ppr(adjacency, 0, alpha=0.2)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(scores >= 0)

    def test_start_node_has_largest_score(self):
        adjacency = random_graph(15, 0.2, seed=1)
        scores = power_iteration_ppr(adjacency, 3, alpha=0.3)
        assert scores.argmax() == 3

    def test_higher_alpha_concentrates_on_start(self):
        adjacency = random_graph(15, 0.3, seed=2)
        low = power_iteration_ppr(adjacency, 0, alpha=0.1)
        high = power_iteration_ppr(adjacency, 0, alpha=0.6)
        assert high[0] > low[0]

    def test_symmetric_ring_gives_symmetric_scores(self):
        adjacency = ring_graph(6)
        symmetric = (adjacency + adjacency.T).tocsr()
        scores = power_iteration_ppr(symmetric, 0, alpha=0.2)
        # Nodes equidistant from the start have equal scores on a ring.
        assert scores[1] == pytest.approx(scores[5], abs=1e-8)
        assert scores[2] == pytest.approx(scores[4], abs=1e-8)

    def test_dangling_node_handled(self):
        adjacency = sp.csr_matrix(np.array([[0, 1], [0, 0]], dtype=float))
        scores = power_iteration_ppr(adjacency, 0, alpha=0.2)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)

    def test_invalid_alpha_rejected(self):
        adjacency = ring_graph(4)
        with pytest.raises(ValueError):
            power_iteration_ppr(adjacency, 0, alpha=1.5)

    def test_invalid_start_node_rejected(self):
        with pytest.raises(ValueError):
            power_iteration_ppr(ring_graph(4), 10)


class TestApproximatePPR:
    def test_close_to_power_iteration(self):
        adjacency = random_graph(25, 0.25, seed=3)
        exact = power_iteration_ppr(adjacency, 0, alpha=0.2)
        approx = approximate_ppr(adjacency, 0, alpha=0.2, epsilon=1e-6)
        approx_vector = np.zeros(25)
        for node, score in approx.items():
            approx_vector[node] = score
        # The push method underestimates by at most the residual mass.
        assert np.abs(exact - approx_vector).max() < 0.02

    def test_mass_bounded_by_one(self):
        adjacency = random_graph(30, 0.2, seed=4)
        approx = approximate_ppr(adjacency, 5, alpha=0.15, epsilon=1e-5)
        assert 0 < sum(approx.values()) <= 1.0 + 1e-9

    def test_start_node_dominates(self):
        adjacency = random_graph(30, 0.15, seed=5)
        approx = approximate_ppr(adjacency, 7, alpha=0.3, epsilon=1e-5)
        assert max(approx, key=approx.get) == 7

    def test_locality_on_disconnected_components(self):
        # Two disconnected triangles: scores never leak across components.
        block = np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=float)
        adjacency = sp.block_diag([block, block]).tocsr()
        approx = approximate_ppr(adjacency, 0, alpha=0.2, epsilon=1e-8)
        assert all(node < 3 for node in approx)

    def test_isolated_start_node(self):
        adjacency = sp.csr_matrix((4, 4))
        approx = approximate_ppr(adjacency, 2, alpha=0.2, epsilon=1e-4)
        assert set(approx) <= {2}

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            approximate_ppr(ring_graph(4), 0, epsilon=0.0)

    @given(seed=st.integers(0, 500), start=st.integers(0, 19))
    @settings(max_examples=20, deadline=None)
    def test_scores_nonnegative_property(self, seed, start):
        adjacency = random_graph(20, 0.2, seed=seed)
        approx = approximate_ppr(adjacency, start, alpha=0.2, epsilon=1e-4)
        assert all(score >= 0 for score in approx.values())


class TestTopKNeighbors:
    def test_returns_at_most_k(self):
        adjacency = random_graph(40, 0.3, seed=6)
        nodes, scores = topk_ppr_neighbors(adjacency, 0, k=5, epsilon=1e-5)
        assert len(nodes) <= 5
        assert len(nodes) == len(scores)

    def test_excludes_start_node_by_default(self):
        adjacency = random_graph(20, 0.4, seed=7)
        nodes, _ = topk_ppr_neighbors(adjacency, 3, k=10, epsilon=1e-5)
        assert 3 not in nodes

    def test_include_start_flag(self):
        adjacency = random_graph(20, 0.4, seed=8)
        nodes, _ = topk_ppr_neighbors(adjacency, 3, k=30, epsilon=1e-5, include_start=True)
        assert 3 in nodes

    def test_scores_sorted_descending(self):
        adjacency = random_graph(30, 0.3, seed=9)
        _, scores = topk_ppr_neighbors(adjacency, 0, k=10, epsilon=1e-6)
        assert np.all(np.diff(scores) <= 1e-12)

    def test_empty_result_for_isolated_node(self):
        adjacency = sp.csr_matrix((5, 5))
        nodes, scores = topk_ppr_neighbors(adjacency, 1, k=3)
        assert nodes.size == 0 and scores.size == 0
