"""Tests for the ``repro.api`` detector registry and config validation."""

from __future__ import annotations

import pytest

from repro import api
from repro.baselines import available_detectors, get_detector
from repro.core import BSG4Bot, BSG4BotConfig
from repro.core.base import BotDetector
from repro.experiments.runner import make_detector


class TestCreateDetector:
    def test_string_spec_builds_default(self):
        detector = api.create_detector("bsg4bot")
        assert isinstance(detector, BSG4Bot)

    def test_dict_spec_with_scale_and_overrides(self, tiny_scale):
        detector = api.create_detector(
            {"name": "bsg4bot", "scale": tiny_scale, "seed": 3,
             "overrides": {"subgraph_k": 3}}
        )
        assert detector.config.subgraph_k == 3
        assert detector.config.max_epochs == tiny_scale.max_epochs
        assert detector.config.seed == 3

    def test_named_scales_resolve(self):
        small = api.create_detector({"name": "gcn", "scale": "small"})
        medium = api.create_detector({"name": "gcn", "scale": "medium"})
        assert small.max_epochs < medium.max_epochs

    def test_scale_none_keeps_detector_defaults(self):
        detector = api.create_detector({"name": "gcn", "scale": None})
        assert detector.max_epochs == 150  # the class default, no budget applied

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="options"):
            api.create_detector("random-forest")

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown spec key"):
            api.create_detector({"name": "gcn", "scal": "small"})

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            api.create_detector({"name": "gcn", "scale": "galactic"})

    def test_unknown_baseline_override_rejected(self):
        with pytest.raises(ValueError, match="unknown override"):
            api.create_detector({"name": "gcn", "overrides": {"hiden_dim": 8}})

    def test_unknown_bsg4bot_override_rejected(self):
        with pytest.raises(ValueError, match="unknown BSG4BotConfig field"):
            api.create_detector({"name": "bsg4bot", "overrides": {"subgraph_kk": 8}})

    def test_invalid_config_value_rejected_at_construction(self):
        with pytest.raises(ValueError, match="subgraph_k"):
            api.create_detector({"name": "bsg4bot", "overrides": {"subgraph_k": -1}})

    def test_plugin_variants_registered(self):
        names = api.available_detectors()
        assert {"plugin-gcn", "plugin-gat", "plugin-botrgcn"} <= set(names)

    def test_fresh_instance_per_call(self):
        assert api.create_detector("mlp") is not api.create_detector("mlp")

    def test_detectors_satisfy_protocol(self):
        detector = api.create_detector("mlp")
        assert isinstance(detector, api.Detector)
        assert isinstance(detector, BotDetector)


class TestRegistryExtension:
    def test_decorator_registration_and_create(self):
        registry = api.DetectorRegistry()

        @registry.register("toy")
        def _build(scale, seed, overrides):
            detector = api.create_detector("mlp")
            detector.name = f"toy-{seed}"
            return detector

        assert "toy" in registry
        assert registry.create({"name": "toy", "seed": 7}).name == "toy-7"

    def test_duplicate_registration_rejected(self):
        registry = api.DetectorRegistry()
        registry.register("dup")(lambda scale, seed, overrides: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("dup")(lambda scale, seed, overrides: None)
        # Explicit replacement is allowed.
        registry.register("dup", replace=True)(lambda scale, seed, overrides: None)


class TestConfigValidation:
    def test_constructor_validates(self):
        with pytest.raises(ValueError, match="mix_lambda"):
            BSG4BotConfig(mix_lambda=1.5)

    def test_with_overrides_validates_values(self):
        with pytest.raises(ValueError, match="dropout"):
            BSG4BotConfig().with_overrides(dropout=1.5)

    def test_with_overrides_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="valid fields"):
            BSG4BotConfig().with_overrides(subgraf_k=4)

    def test_dict_roundtrip(self):
        config = BSG4BotConfig(subgraph_k=5, max_epochs=17)
        clone = BSG4BotConfig.from_dict(config.to_dict())
        assert clone == config

    def test_from_dict_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown BSG4BotConfig field"):
            BSG4BotConfig.from_dict({"subgraph_k": 5, "bogus": 1})


class TestLegacyEntryPoints:
    def test_runner_make_detector_goes_through_registry(self, tiny_scale):
        detector = make_detector("bsg4bot", scale=tiny_scale, subgraph_k=3)
        assert isinstance(detector, BSG4Bot)
        assert detector.config.subgraph_k == 3

    def test_get_detector_keeps_class_defaults(self):
        assert get_detector("gcn").max_epochs == 150

    def test_get_detector_kwargs_become_overrides(self):
        detector = get_detector("gcn", hidden_dim=12, max_epochs=15)
        assert detector.hidden_dim == 12
        assert detector.max_epochs == 15

    def test_available_detectors_covers_registry(self):
        assert set(available_detectors()) == set(api.available_detectors())
