"""Tests for Module/Parameter containers, losses, initialisers and optimisers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Dropout, Linear, MLPBlock
from repro.tensor import (
    SGD,
    Adam,
    Module,
    Parameter,
    Tensor,
    binary_cross_entropy,
    cross_entropy,
    glorot_uniform,
    he_uniform,
    l2_penalty,
    softmax,
    zeros_init,
)

RNG = np.random.default_rng(3)


class _TinyModel(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.layer = Linear(4, 3, rng)
        self.head = Linear(3, 2, rng)
        self.extra = [Linear(2, 2, rng)]
        self.lookup = {"aux": Linear(2, 2, rng)}

    def forward(self, x):
        return self.head(self.layer(x))


class TestModuleContainer:
    def test_parameters_discovered_recursively(self):
        model = _TinyModel()
        params = model.parameters()
        # 4 Linear layers x (weight + bias) = 8 parameters.
        assert len(params) == 8
        assert all(isinstance(p, Parameter) for p in params)

    def test_named_parameters_paths(self):
        model = _TinyModel()
        names = set(model.named_parameters())
        assert "layer.weight" in names
        assert "extra.0.weight" in names
        assert "lookup.aux.bias" in names

    def test_parameters_not_duplicated(self):
        model = _TinyModel()
        shared = model.layer
        model.alias = shared  # same module referenced twice
        params = model.parameters()
        assert len(params) == len({id(p) for p in params})

    def test_train_eval_propagates(self):
        model = _TinyModel()
        model.eval()
        assert model.layer.training is False
        assert model.lookup["aux"].training is False
        model.train()
        assert model.extra[0].training is True

    def test_zero_grad_clears_all(self):
        model = _TinyModel()
        out = model(Tensor(RNG.normal(size=(5, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_roundtrip(self):
        model_a = _TinyModel()
        model_b = _TinyModel()
        model_b.layer.weight.data += 1.0
        state = model_a.state_dict()
        model_b.load_state_dict(state)
        np.testing.assert_allclose(model_b.layer.weight.data, model_a.layer.weight.data)

    def test_load_state_dict_rejects_unknown_key(self):
        model = _TinyModel()
        with pytest.raises(KeyError):
            model.load_state_dict({"nope": np.zeros((2, 2))})

    def test_load_state_dict_rejects_bad_shape(self):
        model = _TinyModel()
        state = model.state_dict()
        state["layer.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_num_parameters_counts_scalars(self):
        model = _TinyModel()
        expected = sum(p.size for p in model.parameters())
        assert model.num_parameters() == expected


class TestInitialisers:
    def test_glorot_bounds(self):
        rng = np.random.default_rng(0)
        weight = glorot_uniform(rng, 100, 50)
        limit = np.sqrt(6.0 / 150)
        assert weight.shape == (100, 50)
        assert np.all(np.abs(weight.numpy()) <= limit)

    def test_he_bounds(self):
        rng = np.random.default_rng(0)
        weight = he_uniform(rng, 64, 8)
        assert np.all(np.abs(weight.numpy()) <= np.sqrt(6.0 / 64))

    def test_zeros_init(self):
        bias = zeros_init(7)
        assert bias.requires_grad
        np.testing.assert_allclose(bias.numpy(), np.zeros(7))

    def test_initialisation_is_seeded(self):
        a = glorot_uniform(np.random.default_rng(5), 10, 10).numpy()
        b = glorot_uniform(np.random.default_rng(5), 10, 10).numpy()
        np.testing.assert_allclose(a, b)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 3.0]]))
        labels = np.array([0, 1])
        loss = cross_entropy(logits, labels).item()
        probs = softmax(logits).numpy()
        manual = -np.mean(np.log(probs[np.arange(2), labels]))
        assert abs(loss - manual) < 1e-10

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[20.0, -20.0], [-20.0, 20.0]]))
        loss = cross_entropy(logits, np.array([0, 1])).item()
        assert loss < 1e-6

    def test_cross_entropy_class_weight_changes_loss(self):
        logits = Tensor(np.array([[1.0, 0.0], [1.0, 0.0]]))
        labels = np.array([0, 1])
        unweighted = cross_entropy(logits, labels).item()
        weighted = cross_entropy(logits, labels, weight=np.array([1.0, 10.0])).item()
        assert weighted > unweighted

    def test_cross_entropy_gradient_shape(self):
        logits = Tensor(RNG.normal(size=(6, 2)), requires_grad=True)
        cross_entropy(logits, np.array([0, 1, 0, 1, 1, 0])).backward()
        assert logits.grad.shape == (6, 2)

    def test_binary_cross_entropy_bounds(self):
        probs = Tensor(np.array([0.9, 0.1]))
        loss = binary_cross_entropy(probs, np.array([1.0, 0.0])).item()
        assert 0 < loss < 0.2

    def test_binary_cross_entropy_clips_extremes(self):
        probs = Tensor(np.array([1.0, 0.0]))
        loss = binary_cross_entropy(probs, np.array([0.0, 1.0])).item()
        assert np.isfinite(loss)

    def test_l2_penalty_positive_and_scaled(self):
        params = [Tensor(np.array([3.0, 4.0]), requires_grad=True)]
        assert abs(l2_penalty(params, 0.1).item() - 2.5) < 1e-10

    def test_l2_penalty_empty_is_zero(self):
        assert l2_penalty([], 0.5).item() == 0.0


def _fit_regression(optimizer_factory, steps=300):
    """Fit y = 2x + 1 with a single linear layer under the given optimiser."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=(64, 1))
    y = 2.0 * x + 1.0
    layer = Linear(1, 1, np.random.default_rng(1))
    optimizer = optimizer_factory(layer.parameters())
    for _ in range(steps):
        optimizer.zero_grad()
        prediction = layer(Tensor(x))
        loss = ((prediction - Tensor(y)) ** 2).mean()
        loss.backward()
        optimizer.step()
    return layer, float(loss.item())


class TestOptimisers:
    def test_sgd_converges_on_regression(self):
        layer, loss = _fit_regression(lambda p: SGD(p, lr=0.1), steps=400)
        assert loss < 1e-3
        assert abs(layer.weight.data[0, 0] - 2.0) < 0.05

    def test_sgd_momentum_converges(self):
        _, loss = _fit_regression(lambda p: SGD(p, lr=0.05, momentum=0.9), steps=300)
        assert loss < 1e-3

    def test_adam_converges_on_regression(self):
        layer, loss = _fit_regression(lambda p: Adam(p, lr=0.05), steps=400)
        assert loss < 1e-3
        assert abs(layer.bias.data[0] - 1.0) < 0.05

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([10.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        param.grad = np.array([0.0])
        optimizer.step()
        assert param.data[0] < 10.0

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_step_skips_parameters_without_grad(self):
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], lr=0.1)
        optimizer.step()  # no gradient recorded: should be a no-op
        np.testing.assert_allclose(param.data, [1.0])


class TestDenseLayers:
    def test_linear_shapes_and_bias(self):
        layer = Linear(6, 4, np.random.default_rng(0))
        out = layer(Tensor(RNG.normal(size=(10, 6))))
        assert out.shape == (10, 4)

    def test_linear_without_bias(self):
        layer = Linear(3, 2, np.random.default_rng(0), bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((4, 3))))
        np.testing.assert_allclose(out.numpy(), np.zeros((4, 2)))

    def test_mlp_block_hidden_dim(self):
        block = MLPBlock(5, 7, 2, np.random.default_rng(0))
        hidden = block.hidden(Tensor(RNG.normal(size=(3, 5))))
        assert hidden.shape == (3, 7)
        out = block(Tensor(RNG.normal(size=(3, 5))))
        assert out.shape == (3, 2)

    def test_dropout_respects_training_flag(self):
        dropout_layer = Dropout(0.9, np.random.default_rng(0))
        dropout_layer.eval()
        x = Tensor(np.ones((5, 5)))
        np.testing.assert_allclose(dropout_layer(x).numpy(), np.ones((5, 5)))
        dropout_layer.train()
        assert dropout_layer(x).numpy().mean() != pytest.approx(1.0, abs=1e-6)
