"""Tests for the synthetic user simulator, relation generator and benchmarks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    NetworkConfig,
    UserSimulator,
    available_benchmarks,
    generate_relations,
    load_benchmark,
    split_masks,
    subsample_train_mask,
)
from repro.datasets.users import ACTIVITY_MONTHS, BOT, HUMAN
from repro.graph.homophily import node_homophily_ratios


class TestUserSimulator:
    def setup_method(self):
        self.simulator = UserSimulator(seed=0, difficulty=0.2, tweets_per_user=12)

    def test_draw_user_fields(self):
        user = self.simulator.draw_user(0, BOT, community=2)
        assert user.is_bot
        assert user.community == 2
        assert len(user.tweets) == 12
        assert user.followers_count >= 0
        assert isinstance(user.description, str) and user.description

    def test_population_size_and_labels(self):
        labels = [HUMAN] * 5 + [BOT] * 5
        users = self.simulator.draw_population(labels)
        assert len(users) == 10
        assert [u.label for u in users] == labels
        assert [u.user_id for u in users] == list(range(10))

    def test_population_rejects_mismatched_communities(self):
        with pytest.raises(ValueError):
            self.simulator.draw_population([0, 1], communities=[0])

    def test_monthly_counts_match_tweets(self):
        user = self.simulator.draw_user(0, HUMAN)
        counts = user.monthly_tweet_counts(ACTIVITY_MONTHS)
        assert counts.sum() == len(user.tweets)

    def test_bots_have_narrower_topic_sets(self):
        simulator = UserSimulator(seed=1, difficulty=0.0, tweets_per_user=10)
        bots = simulator.draw_population([BOT] * 40)
        humans = simulator.draw_population([HUMAN] * 40)
        bot_topics = np.mean([len(u.topics) for u in bots])
        human_topics = np.mean([len(u.topics) for u in humans])
        assert bot_topics < human_topics

    def test_difficulty_increases_overlap(self):
        # With difficulty 1 every bot mimics humans, so bot metadata matches
        # the human distribution far more closely than at difficulty 0.
        easy = UserSimulator(seed=2, difficulty=0.0, tweets_per_user=6)
        hard = UserSimulator(seed=2, difficulty=1.0, tweets_per_user=6)
        easy_bots = easy.draw_population([BOT] * 60)
        hard_bots = hard.draw_population([BOT] * 60)
        humans = easy.draw_population([HUMAN] * 60)
        human_followers = np.mean([np.log1p(u.followers_count) for u in humans])
        easy_gap = abs(np.mean([np.log1p(u.followers_count) for u in easy_bots]) - human_followers)
        hard_gap = abs(np.mean([np.log1p(u.followers_count) for u in hard_bots]) - human_followers)
        assert hard_gap < easy_gap

    def test_invalid_difficulty_rejected(self):
        with pytest.raises(ValueError):
            UserSimulator(difficulty=1.5)

    def test_deterministic_given_seed(self):
        a = UserSimulator(seed=9, tweets_per_user=5).draw_user(0, BOT)
        b = UserSimulator(seed=9, tweets_per_user=5).draw_user(0, BOT)
        assert a.followers_count == b.followers_count
        assert a.description == b.description
        assert [t.text for t in a.tweets] == [t.text for t in b.tweets]


class TestRelationGeneration:
    def test_relation_names_and_ranges(self):
        labels = np.array([HUMAN] * 30 + [BOT] * 10)
        communities = np.zeros(40, dtype=int)
        config = NetworkConfig.twitter_two_relations(seed=0)
        relations = generate_relations(labels, communities, config)
        assert set(relations) == {"following", "follower"}
        for src, dst in relations.values():
            assert src.shape == dst.shape
            if src.size:
                assert src.max() < 40 and dst.max() < 40
                assert np.all(src != dst)

    def test_mgtab_has_seven_relations(self):
        labels = np.array([HUMAN] * 20 + [BOT] * 10)
        relations = generate_relations(
            labels, np.zeros(30, dtype=int), NetworkConfig.mgtab_seven_relations(seed=0)
        )
        assert len(relations) == 7

    def test_humans_more_homophilic_than_bots(self):
        rng = np.random.default_rng(0)
        labels = (rng.random(300) < 0.3).astype(int)
        communities = np.zeros(300, dtype=int)
        config = NetworkConfig.twitter_two_relations(seed=1, bot_to_bot=0.1)
        relations = generate_relations(labels, communities, config)
        import scipy.sparse as sp

        src, dst = relations["following"]
        adjacency = sp.coo_matrix(
            (np.ones(src.size), (src, dst)), shape=(300, 300)
        ).tocsr()
        ratios = node_homophily_ratios(adjacency, labels)
        human_h = np.nanmean(ratios[labels == 0])
        bot_h = np.nanmean(ratios[labels == 1])
        assert human_h > bot_h

    def test_deterministic_given_seed(self):
        labels = np.array([0, 1] * 20)
        communities = np.zeros(40, dtype=int)
        config = NetworkConfig.twitter_two_relations(seed=5)
        first = generate_relations(labels, communities, config)
        second = generate_relations(labels, communities, config)
        np.testing.assert_array_equal(first["following"][0], second["following"][0])


class TestSplits:
    def test_masks_partition_nodes(self):
        train, val, test = split_masks(100, seed=0)
        combined = train.astype(int) + val.astype(int) + test.astype(int)
        np.testing.assert_array_equal(combined, np.ones(100, dtype=int))

    def test_stratified_split_keeps_both_classes(self):
        labels = np.array([0] * 90 + [1] * 10)
        train, val, test = split_masks(100, seed=0, labels=labels)
        assert labels[train].sum() > 0
        assert labels[test].sum() > 0

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            split_masks(10, train_fraction=0.9, val_fraction=0.2)

    def test_subsample_reduces_training_nodes(self):
        train, _, _ = split_masks(200, seed=0)
        reduced = subsample_train_mask(train, 0.25, seed=0)
        assert reduced.sum() < train.sum()
        assert np.all(train[reduced])  # subsample is a subset

    def test_subsample_stratified_keeps_minority(self):
        labels = np.array([0] * 180 + [1] * 20)
        train, _, _ = split_masks(200, seed=0, labels=labels)
        reduced = subsample_train_mask(train, 0.1, seed=0, labels=labels)
        assert labels[reduced].sum() >= 1

    def test_subsample_full_fraction_is_identity(self):
        train, _, _ = split_masks(50, seed=0)
        np.testing.assert_array_equal(subsample_train_mask(train, 1.0, seed=0), train)

    def test_subsample_invalid_fraction(self):
        train, _, _ = split_masks(50, seed=0)
        with pytest.raises(ValueError):
            subsample_train_mask(train, 0.0)

    @given(
        num_nodes=st.integers(min_value=10, max_value=200),
        train_fraction=st.floats(min_value=0.2, max_value=0.7),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_split_property_disjoint_and_complete(self, num_nodes, train_fraction, seed):
        train, val, test = split_masks(num_nodes, train_fraction=train_fraction, val_fraction=0.15, seed=seed)
        assert not np.any(train & val)
        assert not np.any(train & test)
        assert not np.any(val & test)
        assert np.all(train | val | test)


class TestBenchmarks:
    def test_available_names(self):
        assert set(available_benchmarks()) == {"twibot-20", "twibot-22", "mgtab"}

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_benchmark("weibo")

    def test_twibot20_structure(self):
        benchmark = load_benchmark("twibot-20", num_users=120, tweets_per_user=5, seed=0)
        stats = benchmark.statistics()
        assert stats["num_users"] == 120
        assert stats["num_relations"] == 2
        # TwiBot-20 is roughly balanced with a slight bot majority.
        assert 0.4 < stats["num_bot"] / 120 < 0.7
        assert benchmark.graph.metadata["has_temporal_data"] is False

    def test_twibot22_is_imbalanced_with_communities(self, tiny_twibot22):
        stats = tiny_twibot22.statistics()
        bot_fraction = stats["num_bot"] / stats["num_users"]
        assert bot_fraction < 0.3
        assert tiny_twibot22.num_communities >= 2
        sub = tiny_twibot22.community_graph(0)
        assert sub.num_nodes == tiny_twibot22.community_indices(0).size

    def test_mgtab_has_seven_relations(self, tiny_mgtab):
        assert tiny_mgtab.graph.num_relations == 7

    def test_masks_cover_all_nodes(self, tiny_mgtab):
        graph = tiny_mgtab.graph
        combined = graph.train_mask | graph.val_mask | graph.test_mask
        assert combined.all()

    def test_features_match_users(self, tiny_mgtab):
        assert tiny_mgtab.graph.features.shape[0] == len(tiny_mgtab.users)
        assert np.all(np.isfinite(tiny_mgtab.graph.features))

    def test_feature_blocks_metadata_present(self, tiny_mgtab):
        blocks = tiny_mgtab.graph.metadata["feature_blocks"]
        assert "description" in blocks and "temporal" in blocks

    def test_bot_homophily_lower_than_human(self, tiny_twibot22):
        graph = tiny_twibot22.graph
        ratios = node_homophily_ratios(graph.merged_adjacency(), graph.labels)
        assert np.nanmean(ratios[graph.labels == 1]) < np.nanmean(ratios[graph.labels == 0])

    def test_deterministic_given_seed(self):
        a = load_benchmark("mgtab", num_users=80, tweets_per_user=4, seed=3)
        b = load_benchmark("mgtab", num_users=80, tweets_per_user=4, seed=3)
        np.testing.assert_array_equal(a.graph.labels, b.graph.labels)
        np.testing.assert_allclose(a.graph.features, b.graph.features)
        assert a.graph.num_edges == b.graph.num_edges

    def test_different_seeds_differ(self):
        a = load_benchmark("mgtab", num_users=80, tweets_per_user=4, seed=1)
        b = load_benchmark("mgtab", num_users=80, tweets_per_user=4, seed=2)
        assert not np.array_equal(a.graph.labels, b.graph.labels) or a.graph.num_edges != b.graph.num_edges
