"""Tests and property tests for the homophily metrics (Eq. 1-2)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.homophily import (
    graph_homophily_ratio,
    homophily_buckets,
    node_homophily_ratios,
    subgraph_homophily_summary,
)


def adjacency_from_edges(edges, num_nodes):
    src = np.array([e[0] for e in edges], dtype=int)
    dst = np.array([e[1] for e in edges], dtype=int)
    data = np.ones(len(edges))
    return sp.coo_matrix((data, (src, dst)), shape=(num_nodes, num_nodes)).tocsr()


class TestNodeHomophily:
    def test_fully_homophilic_chain(self):
        adjacency = adjacency_from_edges([(0, 1), (1, 2)], 3)
        labels = np.array([0, 0, 0])
        ratios = node_homophily_ratios(adjacency, labels)
        np.testing.assert_allclose(ratios, [1.0, 1.0, 1.0])

    def test_fully_heterophilic_pair(self):
        adjacency = adjacency_from_edges([(0, 1)], 2)
        labels = np.array([0, 1])
        ratios = node_homophily_ratios(adjacency, labels)
        np.testing.assert_allclose(ratios, [0.0, 0.0])

    def test_mixed_neighbourhood(self):
        # Node 0 has neighbours with labels [0, 1, 1] -> h = 1/3.
        adjacency = adjacency_from_edges([(0, 1), (0, 2), (0, 3)], 4)
        labels = np.array([0, 0, 1, 1])
        ratios = node_homophily_ratios(adjacency, labels)
        assert ratios[0] == pytest.approx(1 / 3)

    def test_isolated_node_is_nan(self):
        adjacency = adjacency_from_edges([(0, 1)], 3)
        labels = np.array([0, 0, 1])
        ratios = node_homophily_ratios(adjacency, labels)
        assert np.isnan(ratios[2])

    def test_self_loops_ignored(self):
        adjacency = adjacency_from_edges([(0, 0), (0, 1)], 2)
        labels = np.array([0, 1])
        ratios = node_homophily_ratios(adjacency, labels)
        assert ratios[0] == 0.0

    def test_directed_edges_are_symmetrised_by_default(self):
        adjacency = adjacency_from_edges([(0, 1)], 2)
        labels = np.array([0, 0])
        ratios = node_homophily_ratios(adjacency, labels, undirected=True)
        assert ratios[1] == 1.0

    def test_directed_mode_keeps_direction(self):
        adjacency = adjacency_from_edges([(0, 1)], 2)
        labels = np.array([0, 0])
        ratios = node_homophily_ratios(adjacency, labels, undirected=False)
        assert np.isnan(ratios[1])


class TestGraphHomophily:
    def test_graph_ratio_is_mean_of_defined_nodes(self):
        adjacency = adjacency_from_edges([(0, 1), (2, 3)], 5)
        labels = np.array([0, 0, 0, 1, 1])
        ratio = graph_homophily_ratio(adjacency, labels)
        # Nodes 0,1 have h=1; nodes 2,3 have h=0; node 4 isolated (excluded).
        assert ratio == pytest.approx(0.5)

    def test_empty_graph_is_nan(self):
        adjacency = sp.csr_matrix((3, 3))
        assert np.isnan(graph_homophily_ratio(adjacency, np.zeros(3)))

    def test_buckets_partition_defined_nodes(self):
        ratios = np.array([0.0, 0.1, 0.3, 0.6, 0.9, np.nan])
        buckets = homophily_buckets(ratios)
        all_nodes = np.concatenate(list(buckets.values()))
        assert sorted(all_nodes.tolist()) == [0, 1, 2, 3, 4]
        assert 0 in buckets["(0.0,0.25]"]
        assert 4 in buckets["(0.75,1.0]"]

    def test_buckets_boundaries_are_inclusive_on_the_right(self):
        ratios = np.array([0.25, 0.5, 0.75, 1.0])
        buckets = homophily_buckets(ratios)
        assert 0 in buckets["(0.0,0.25]"]
        assert 1 in buckets["(0.25,0.5]"]
        assert 2 in buckets["(0.5,0.75]"]
        assert 3 in buckets["(0.75,1.0]"]

    def test_summary_by_group(self):
        ratios = np.array([1.0, 0.0, 0.5, np.nan])
        labels = np.array([0, 1, 1, 0])
        summary = subgraph_homophily_summary(ratios, labels)
        assert summary["human"] == pytest.approx(1.0)
        assert summary["bot"] == pytest.approx(0.25)
        assert summary["all"] == pytest.approx(0.5)


class TestHomophilyProperties:
    @given(
        num_nodes=st.integers(min_value=2, max_value=20),
        edge_fraction=st.floats(min_value=0.05, max_value=0.5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_ratios_in_unit_interval(self, num_nodes, edge_fraction, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((num_nodes, num_nodes)) < edge_fraction).astype(float)
        np.fill_diagonal(dense, 0)
        labels = rng.integers(0, 2, size=num_nodes)
        ratios = node_homophily_ratios(sp.csr_matrix(dense), labels)
        defined = ratios[~np.isnan(ratios)]
        assert np.all(defined >= 0.0) and np.all(defined <= 1.0)

    @given(
        num_nodes=st.integers(min_value=2, max_value=15),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_uniform_labels_give_ratio_one(self, num_nodes, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((num_nodes, num_nodes)) < 0.3).astype(float)
        np.fill_diagonal(dense, 0)
        adjacency = sp.csr_matrix(dense)
        labels = np.zeros(num_nodes, dtype=int)
        ratios = node_homophily_ratios(adjacency, labels)
        defined = ratios[~np.isnan(ratios)]
        if defined.size:
            np.testing.assert_allclose(defined, 1.0)

    @given(
        num_nodes=st.integers(min_value=2, max_value=15),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_flipping_labels_preserves_ratios(self, num_nodes, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((num_nodes, num_nodes)) < 0.4).astype(float)
        np.fill_diagonal(dense, 0)
        adjacency = sp.csr_matrix(dense)
        labels = rng.integers(0, 2, size=num_nodes)
        original = node_homophily_ratios(adjacency, labels)
        flipped = node_homophily_ratios(adjacency, 1 - labels)
        np.testing.assert_allclose(original, flipped, equal_nan=True)
