"""Shared fixtures: tiny benchmarks and toy graphs used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_benchmark
from repro.experiments.settings import ExperimentScale
from repro.graph import HeteroGraph


@pytest.fixture(scope="session")
def tiny_scale() -> ExperimentScale:
    """Very small experiment scale used by experiment-harness tests."""
    return ExperimentScale(
        name="tiny",
        benchmark_users={"twibot-20": 150, "twibot-22": 200, "mgtab": 150},
        tweets_per_user=6,
        max_epochs=8,
        patience=4,
        pretrain_epochs=15,
        hidden_dim=16,
        subgraph_k=4,
        batch_size=32,
        seeds=1,
    )


@pytest.fixture(scope="session")
def tiny_mgtab():
    """A small MGTAB-style benchmark shared across tests (read-only)."""
    return load_benchmark("mgtab", num_users=150, tweets_per_user=6, seed=0)


@pytest.fixture(scope="session")
def tiny_twibot22():
    """A small TwiBot-22-style benchmark with communities (read-only)."""
    return load_benchmark("twibot-22", num_users=220, tweets_per_user=6, seed=0, num_communities=4)


def make_separable_graph(
    num_nodes: int = 120,
    num_features: int = 8,
    num_relations: int = 2,
    homophily: float = 0.9,
    seed: int = 0,
    feature_gap: float = 2.0,
) -> HeteroGraph:
    """A synthetic graph whose labels are easy to learn.

    Half the nodes are bots; bot features are shifted by ``feature_gap``; each
    node connects mostly to same-label nodes with probability ``homophily``.
    """
    rng = np.random.default_rng(seed)
    labels = np.zeros(num_nodes, dtype=np.int64)
    labels[num_nodes // 2 :] = 1
    features = rng.normal(size=(num_nodes, num_features))
    features[labels == 1] += feature_gap

    relations = {}
    nodes = np.arange(num_nodes)
    for relation_index in range(num_relations):
        src_list, dst_list = [], []
        for node in range(num_nodes):
            for _ in range(4):
                if rng.random() < homophily:
                    pool = nodes[labels == labels[node]]
                else:
                    pool = nodes[labels != labels[node]]
                target = int(rng.choice(pool))
                if target != node:
                    src_list.append(node)
                    dst_list.append(target)
        relations[f"rel{relation_index}"] = (np.array(src_list), np.array(dst_list))

    order = rng.permutation(num_nodes)
    train = np.zeros(num_nodes, dtype=bool)
    val = np.zeros(num_nodes, dtype=bool)
    test = np.zeros(num_nodes, dtype=bool)
    train[order[: int(0.6 * num_nodes)]] = True
    val[order[int(0.6 * num_nodes) : int(0.8 * num_nodes)]] = True
    test[order[int(0.8 * num_nodes) :]] = True
    return HeteroGraph(
        num_nodes=num_nodes,
        features=features,
        labels=labels,
        relations=relations,
        train_mask=train,
        val_mask=val,
        test_mask=test,
        name="separable-toy",
    )


@pytest.fixture(scope="session")
def separable_graph() -> HeteroGraph:
    return make_separable_graph()


@pytest.fixture(scope="session")
def heterophilic_graph() -> HeteroGraph:
    """Separable features but heterophilic structure (GNN-unfriendly)."""
    return make_separable_graph(homophily=0.2, seed=1)


# ----------------------------------------------------------------------
# Runtime sanitizer wiring (REPRO_SANITIZE=1): every test asserts it added
# no lock-order inversion, and the whole session asserts no shared-memory
# segment outlived its owner.  Both fixtures are no-ops without the flag.
# ----------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _sanitize_lock_order():
    from repro.analysis import sanitizer

    if not sanitizer.enabled():
        yield
        return
    before = len(sanitizer.lock_order_violations())
    yield
    new = sanitizer.lock_order_violations()[before:]
    assert not new, "lock-order inversions detected:\n" + "\n".join(new)


@pytest.fixture(autouse=True, scope="session")
def _sanitize_shm_census():
    from repro.analysis import sanitizer

    if not sanitizer.enabled():
        yield
        return
    yield
    # Session fixtures (shared pools, module-scoped services) are torn down
    # before this session-scoped teardown runs, so anything still tracked
    # here really leaked.
    from repro.sampling.biased import shutdown_shared_pool

    shutdown_shared_pool()
    leaks = sanitizer.shm_leaks()
    assert not leaks, "shared-memory segments leaked:\n" + "\n".join(leaks)
