"""The invariant checker suite: fixtures, baseline ratchet, sanitizer, CLI.

Each static checker is proven both ways against the twin fixtures under
``tests/fixtures/analysis/``: the ``bad_*`` file must produce the expected
findings, the ``clean_*`` twin must produce none.  The self-run test then
locks the suite's verdict on the real tree: ``src/repro`` reports nothing
outside the committed ``baseline.json``.
"""

from pathlib import Path

import pytest

from repro.analysis.findings import (
    Finding,
    apply_baseline,
    default_baseline_path,
    load_baseline,
    save_baseline,
)
from repro.analysis.registry import CHECKERS, LintContext, ModuleSource
from repro.analysis.runner import default_target, run_lint

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def parse_fixture(name: str) -> ModuleSource:
    path = FIXTURES / name
    return ModuleSource.parse(path, f"tests/fixtures/analysis/{name}")


def run_checker(checker_id: str, name: str, context: LintContext = None) -> list:
    context = context or LintContext(root=FIXTURES)
    return CHECKERS.run(parse_fixture(name), context, only=[checker_id])


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------


def test_lock_checker_flags_unguarded_access():
    findings = run_checker("lock-discipline", "bad_locks.py")
    details = {(f.scope, f.detail) for f in findings}
    assert ("Counter.add", "_items") in details
    assert ("Counter.add", "_total") in details
    # The read AFTER the with-block released the lock.
    assert ("Counter.snapshot", "_total") in details
    # Calling a lock-held method without the lock is itself a finding.
    assert ("Counter.flush", "call:_drain_locked") in details


def test_lock_checker_passes_clean_twin():
    assert run_checker("lock-discipline", "clean_locks.py") == []


def test_lock_checker_dedupes_per_method_attr():
    findings = run_checker("lock-discipline", "bad_locks.py")
    keys = [f.key for f in findings]
    assert len(keys) == len(set(keys))


# ---------------------------------------------------------------------------
# shm-lifecycle
# ---------------------------------------------------------------------------


def test_shm_checker_flags_unreleased_segments():
    findings = run_checker("shm-lifecycle", "bad_shm.py")
    details = {(f.scope, f.detail) for f in findings}
    assert ("leak_local", "create:shared") in details
    assert ("leak_dropped", "create:<dropped>") in details
    assert ("__init__", "attach:_view") in details
    assert len(findings) == 3


def test_shm_checker_passes_clean_twin():
    assert run_checker("shm-lifecycle", "clean_shm.py") == []


# ---------------------------------------------------------------------------
# order-sensitive-reduction
# ---------------------------------------------------------------------------


def test_reduction_checker_flags_all_three_spellings():
    findings = run_checker("order-sensitive-reduction", "bad_reductions.py")
    scopes = {f.scope for f in findings}
    assert scopes == {"sliced_sum", "transposed_sum", "reduced_view"}


def test_reduction_checker_passes_clean_twin():
    assert run_checker("order-sensitive-reduction", "clean_reductions.py") == []


def test_reduction_checker_requires_gate(tmp_path):
    # Without the module pragma (and outside GATED_MODULES) the same
    # pattern is not checked: bit-identity is a *scoped* contract.
    path = tmp_path / "ungated.py"
    path.write_text("def f(m, idx):\n    return m[:, idx].sum(axis=1)\n")
    module = ModuleSource.parse(path, "tmp/ungated.py")
    context = LintContext(root=tmp_path)
    assert CHECKERS.run(module, context, only=["order-sensitive-reduction"]) == []


# ---------------------------------------------------------------------------
# oracle-coverage
# ---------------------------------------------------------------------------


def _oracle_context(corpus: str) -> LintContext:
    return LintContext(
        root=FIXTURES,
        test_sources={"tests/test_fake.py": corpus},
        has_tests=True,
    )


def test_oracle_checker_flags_uncovered_fast_path():
    context = _oracle_context("def test_fast_sum(): fast_sum reference_sum")
    findings = run_checker("oracle-coverage", "bad_oracle.py", context)
    assert [f.detail for f in findings] == ["oracle:missing_reference"]


def test_oracle_checker_passes_covered_fast_path():
    context = _oracle_context("def test_fast_sum(): fast_sum reference_sum")
    assert run_checker("oracle-coverage", "clean_oracle.py", context) == []


def test_oracle_checker_skips_without_tests_dir():
    context = LintContext(root=FIXTURES, test_sources={}, has_tests=False)
    assert run_checker("oracle-coverage", "bad_oracle.py", context) == []


# ---------------------------------------------------------------------------
# resource-join
# ---------------------------------------------------------------------------


def test_resource_checker_flags_unjoined_thread_and_pool():
    findings = run_checker("resource-join", "bad_resources.py")
    details = {f.detail for f in findings}
    assert "Thread:_thread" in details
    assert "ThreadPoolExecutor:_pool" in details
    assert len(findings) == 2


def test_resource_checker_passes_clean_twin():
    assert run_checker("resource-join", "clean_resources.py") == []


# ---------------------------------------------------------------------------
# baseline ratchet
# ---------------------------------------------------------------------------


def _finding(detail: str = "x") -> Finding:
    return Finding(
        checker="lock-discipline",
        path="src/repro/fake.py",
        line=10,
        scope="C.m",
        detail=detail,
        message="m",
        hint="h",
    )


def test_baseline_keys_are_line_number_free():
    import dataclasses

    a = _finding()
    b = dataclasses.replace(a, line=99)
    assert a.key == b.key  # refactors that move lines don't churn the ratchet


def test_baseline_round_trip_and_stale_detection(tmp_path):
    path = tmp_path / "baseline.json"
    keep, gone = _finding("keep"), _finding("gone")
    save_baseline(path, [keep, gone])
    baseline = load_baseline(path)
    new, baselined, stale = apply_baseline([keep, _finding("new")], baseline)
    assert [f.detail for f in new] == ["new"]
    assert [f.detail for f in baselined] == ["keep"]
    assert stale == [gone.key]


def test_committed_baseline_loads():
    baseline = load_baseline(default_baseline_path())
    assert baseline  # the ratchet file ships with the package


# ---------------------------------------------------------------------------
# self-run: the real tree must be clean vs the committed baseline
# ---------------------------------------------------------------------------


def test_lint_self_run_reports_nothing_new():
    report = run_lint([default_target()])
    rendered = report.render(show_baselined=True)
    assert report.new == [], f"new findings outside baseline:\n{rendered}"
    assert report.stale_keys == [], f"stale baseline keys:\n{rendered}"
    assert report.ok
    assert set(report.checkers_run) == {
        "lock-discipline",
        "shm-lifecycle",
        "order-sensitive-reduction",
        "oracle-coverage",
        "resource-join",
    }
    assert report.files_checked > 50


def test_lint_cli_exit_codes(tmp_path, capsys):
    from repro.cli import main

    assert main(["lint", str(default_target())]) == 0
    capsys.readouterr()
    # A file with a fresh finding (pragma-gated reduction) must fail.
    bad = tmp_path / "gated.py"
    bad.write_text(
        "# repro-lint: order-sensitive\n"
        "def f(m, idx):\n"
        "    return m[:, idx].sum(axis=1)\n"
    )
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "order-sensitive-reduction" in out


# ---------------------------------------------------------------------------
# runtime sanitizer
# ---------------------------------------------------------------------------


@pytest.fixture
def sanitize_env(monkeypatch):
    from repro.analysis import sanitizer

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitizer.reset()
    yield sanitizer
    sanitizer.reset()


def test_sanitizer_disabled_returns_stdlib_objects(monkeypatch):
    import threading

    from repro.analysis import sanitizer

    monkeypatch.setenv("REPRO_SANITIZE", "0")
    lock = sanitizer.tracked_rlock("x")
    assert type(lock) is type(threading.RLock())
    assert isinstance(sanitizer.tracked_condition("y"), threading.Condition)


def test_sanitizer_detects_lock_order_inversion(sanitize_env):
    a = sanitize_env.tracked_rlock("A")
    b = sanitize_env.tracked_rlock("B")
    with a:
        with b:
            pass
    assert sanitize_env.lock_order_violations() == []
    with b:
        with a:
            pass
    violations = sanitize_env.lock_order_violations()
    assert len(violations) == 1
    assert "B -> A -> B" in violations[0]


def test_sanitizer_reentrant_acquire_is_not_an_edge(sanitize_env):
    a = sanitize_env.tracked_rlock("A")
    with a:
        with a:  # re-entrant: no self-edge, no violation
            pass
    assert sanitize_env.lock_order_violations() == []


def test_sanitizer_condition_wait_roundtrip(sanitize_env):
    import threading

    condition = sanitize_env.tracked_condition("C")
    released = []

    def waiter():
        with condition:
            condition.wait(timeout=5.0)
            released.append(True)

    thread = threading.Thread(target=waiter)
    thread.start()
    import time

    for _ in range(100):
        with condition:
            condition.notify_all()
        if released:
            break
        time.sleep(0.01)
    thread.join(timeout=5.0)
    assert released == [True]
    assert sanitize_env.lock_order_violations() == []


def test_sanitizer_shm_census(sanitize_env):
    sanitize_env.note_segment_created("repro_test_segment")
    leaks = sanitize_env.shm_leaks()
    assert len(leaks) == 1 and "repro_test_segment" in leaks[0]
    sanitize_env.note_segment_unlinked("repro_test_segment")
    assert sanitize_env.shm_leaks() == []
