import re
from pathlib import Path

from setuptools import find_packages, setup

VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text(),
    re.MULTILINE,
).group(1)

setup(
    name="repro-bsg4bot",
    version=VERSION,
    description="BSG4Bot reproduction: biased-subgraph bot detection at scale",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
