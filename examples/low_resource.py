"""Low-label bot detection (the Figure 7 study).

Run with::

    python examples/low_resource.py

Labelling bots requires expensive expert review, so detectors must work with
few labels.  The script sweeps the fraction of labelled training users from
10% to 100% on an MGTAB-style benchmark and compares how gracefully BSG4Bot
and two baselines degrade.
"""

from __future__ import annotations

from repro import api
from repro.datasets import load_benchmark
from repro.datasets.splits import subsample_train_mask


FRACTIONS = (0.1, 0.25, 0.5, 1.0)
MODELS = ("mlp", "botrgcn", "bsg4bot")


def make_detector(name: str):
    overrides = {"max_epochs": 30, "patience": 6}
    if name == "bsg4bot":
        overrides["subgraph_k"] = 8
    return api.create_detector(
        {"name": name, "scale": None, "seed": 0, "overrides": overrides}
    )


def main() -> None:
    benchmark = load_benchmark("mgtab", num_users=500, tweets_per_user=12, seed=0)
    full_graph = benchmark.graph
    print(f"Benchmark: {full_graph}")
    print(f"Full training set: {int(full_graph.train_mask.sum())} labelled users\n")

    header = f"{'model':<10}" + "".join(f"{int(100 * f):>9}%" for f in FRACTIONS)
    print(header)
    print("-" * len(header))
    for model_name in MODELS:
        row = f"{model_name:<10}"
        for fraction in FRACTIONS:
            graph = full_graph.with_features(full_graph.features)
            graph.train_mask = subsample_train_mask(
                full_graph.train_mask, fraction, seed=0, labels=full_graph.labels
            )
            detector = make_detector(model_name)
            detector.fit(graph)
            row += f"{detector.evaluate(graph)['f1']:>10.1f}"
        print(row)
    print("\n(F1 on the held-out test split; columns are training-label fractions.)")


if __name__ == "__main__":
    main()
