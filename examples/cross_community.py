"""Generalization to unseen communities (the Figure 9 study).

Run with::

    python examples/cross_community.py

Bots evolve, so a detector trained on one part of the network must still work
on accounts it has never seen.  The script trains BSG4Bot and BotRGCN on one
TwiBot-22-style community and evaluates them on the other communities,
printing the train-on-i / test-on-j accuracy matrix.
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.core.metrics import accuracy_score
from repro.datasets import load_benchmark
from repro.datasets.splits import split_masks

NUM_COMMUNITIES = 3


def make_detector(name: str):
    overrides = {"max_epochs": 25, "patience": 6}
    if name == "bsg4bot":
        overrides["subgraph_k"] = 8
    return api.create_detector(
        {"name": name, "scale": None, "seed": 0, "overrides": overrides}
    )


def main() -> None:
    benchmark = load_benchmark(
        "twibot-22", num_users=600, tweets_per_user=10, seed=0, num_communities=NUM_COMMUNITIES
    )
    graphs = []
    for community in range(NUM_COMMUNITIES):
        graph = benchmark.community_graph(community)
        train, val, test = split_masks(graph.num_nodes, seed=0, labels=graph.labels)
        graph.train_mask, graph.val_mask, graph.test_mask = train, val, test
        graphs.append(graph)
        print(f"community {community}: {graph.num_nodes} users, {graph.num_edges} edges")

    for model_name in ("botrgcn", "bsg4bot"):
        print(f"\n{model_name}: train-on-row, test-on-column accuracy")
        matrix = np.zeros((NUM_COMMUNITIES, NUM_COMMUNITIES))
        for i, train_graph in enumerate(graphs):
            detector = make_detector(model_name)
            detector.fit(train_graph)
            for j, test_graph in enumerate(graphs):
                predictions = detector.predict(test_graph)
                matrix[i, j] = 100.0 * accuracy_score(test_graph.labels, predictions)
        for i in range(NUM_COMMUNITIES):
            print("   " + " ".join(f"{matrix[i, j]:6.1f}" for j in range(NUM_COMMUNITIES)))
        unseen = matrix[~np.eye(NUM_COMMUNITIES, dtype=bool)]
        print(f"   average on unseen communities: {unseen.mean():.2f}")


if __name__ == "__main__":
    main()
