"""Dataset-adapter pipeline demo: spec -> ingest -> fit -> serve -> score.

Run with::

    python examples/adapter_demo.py

The script writes a declarative dataset spec for the seeded
:class:`SyntheticBotnetAdapter` (a homophily-structured botnet graph with
ground-truth labels), ingests it through the chunked adapter path twice —
once cold, once as a content-addressed cache hit with an identical graph
fingerprint — trains a small BSG4Bot on the result, and saves an artifact
whose manifest records the *spec* as dataset provenance.  It then stands
up the sharded HTTP serving front door from the artifact alone (no graph
passed: the spec is replayed from provenance, hitting the ingest cache),
scores nodes over real HTTP, and compares the verdicts against the
generator's ground truth.  Shutdown is clean: no dispatcher threads, no
process pool, no shared-memory segments left behind.
"""

from __future__ import annotations

import json
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from cluster_demo import ServerThread

from repro import api
from repro.datasets.adapters import ingest_spec, load_dataset_spec
from repro.serving.cluster import ShardRouter


def write_spec(scratch: Path) -> Path:
    """A spec file is the whole dataset description: source + split + cache."""
    spec_path = scratch / "synthetic.json"
    spec_path.write_text(json.dumps({
        "name": "demo-botnet",
        "adapter": "synthetic",
        "source": {
            "num_users": 400,
            "bot_ratio": 0.3,
            "homophily": 0.75,      # humans prefer same-label neighbours...
            "bot_homophily": 0.15,  # ...bots burrow into the human crowd
            "burstiness": 0.6,
            "avg_degree": 6,
            "num_relations": 2,
            "num_communities": 4,
            "seed": 42,
        },
        "split": {"train_fraction": 0.6, "val_fraction": 0.2, "seed": 5},
        "cache": {"dir": str(scratch / "ingest-cache")},
    }, indent=2))
    return spec_path


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-adapter-demo-") as tmp:
        scratch = Path(tmp)
        spec_path = write_spec(scratch)
        spec = load_dataset_spec(spec_path)
        print(f"Spec {spec_path.name}: adapter={spec.adapter!r} name={spec.name!r}")

        print("\nIngesting (cold) through the chunked adapter path...")
        cold = ingest_spec(spec)
        graph = cold.graph
        bots = int(graph.labels.sum())
        print(
            f"  {graph.num_nodes} nodes ({bots} bots), {graph.num_edges} edges "
            f"across {graph.num_relations} relations in {cold.elapsed_s:.2f}s"
        )
        print(f"  fingerprint {cold.fingerprint[:16]}...")

        warm = ingest_spec(spec)
        assert warm.cache_hit and warm.fingerprint == cold.fingerprint
        print(
            f"Ingesting (warm): content-addressed cache hit in "
            f"{warm.elapsed_s:.3f}s, identical fingerprint"
        )

        print("\nTraining BSG4Bot (small serving configuration)...")
        detector = api.create_detector({
            "name": "bsg4bot",
            "scale": None,
            "seed": 0,
            "overrides": {
                "pretrain_epochs": 30, "hidden_dim": 16, "pretrain_hidden_dim": 16,
                "subgraph_k": 5, "max_epochs": 6, "patience": 3,
            },
        })
        history = detector.fit(graph)
        print(f"  converged after {history.num_epochs} epochs ({history.total_time:.1f}s)")

        artifact = api.save_detector(
            detector, scratch / "artifact",
            dataset={"spec": spec.to_dict(), "test": False},
        )
        print(f"  artifact saved to {artifact} (manifest records the spec)")

        print("\nServing from the artifact ALONE — provenance replays the spec")
        print("(a warm cache hit), partitions 2 shards, verifies halos...")
        router = ShardRouter.from_artifact(
            artifact, num_shards=2, seed=0, max_batch_size=32, max_wait_ms=3.0,
        )
        try:
            with ServerThread(router) as server:
                health = server.request("/healthz")
                print(
                    f"  http://127.0.0.1:{server.port} — healthz: "
                    f"{health['status']} ({health['num_shards']} shards)"
                )

                nodes = list(range(24))
                print(f"Scoring {len(nodes)} nodes over HTTP (concurrent requests)...")
                def score(node: int):
                    return node, server.request("/score", {"nodes": [node]})

                with ThreadPoolExecutor(max_workers=8) as pool:
                    verdicts = dict(pool.map(score, nodes))
                hits = sum(
                    (verdicts[n]["probabilities"][0][1] >= 0.5) == bool(graph.labels[n])
                    for n in nodes
                )
                print(
                    f"  {hits}/{len(nodes)} verdicts agree with the generator's "
                    f"ground-truth labels"
                )

                totals = server.request("/metrics")["cluster_totals"]
                print(
                    f"  /metrics: {totals['requests']} requests in "
                    f"{totals['waves']} waves"
                )
        finally:
            router.close()
        print("\nClean shutdown: services closed, pool released, shm empty.")


if __name__ == "__main__":
    main()
