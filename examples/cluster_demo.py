"""Cluster serving demo: sharded router + asyncio HTTP front door.

Run with::

    python examples/cluster_demo.py

The script trains a small BSG4Bot, saves it as an artifact (the same files
``repro fit`` writes), partitions the graph into two shards with verified
halos, and stands up the asyncio HTTP/JSON service on a local port — the
in-process equivalent of ``repro serve <artifact> --num-shards 2``.  It
then drives every endpoint over real HTTP: concurrent ``POST /score``
requests fan out to their owning shards and fan back in, a ``POST
/update`` streams a graph mutation to every shard it touches, a follow-up
score shows read-your-writes through the per-shard delta sequences, and
``GET /healthz`` / ``GET /metrics`` report the fleet.  Shutdown is clean:
no dispatcher threads, no process pool, no shared-memory segments left.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro import api
from repro.datasets import load_benchmark
from repro.serving.cluster import ClusterHTTPServer, ShardRouter


class ServerThread:
    """Run one :class:`ClusterHTTPServer` on a private loop in a thread."""

    def __init__(self, router: ShardRouter) -> None:
        self._router = router
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self.port = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(30.0):
            raise RuntimeError("HTTP server failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30.0)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        server = ClusterHTTPServer(self._router, port=0)
        await server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.port = server.port
        self._ready.set()
        await self._stop.wait()
        await server.close()

    def request(self, path: str, body=None):
        url = f"http://127.0.0.1:{self.port}{path}"
        data = None if body is None else json.dumps(body).encode("utf-8")
        req = urllib.request.Request(
            url, data=data, headers={"Content-Type": "application/json"}
        )
        with urllib.request.urlopen(req, timeout=60.0) as response:
            return json.loads(response.read())


def main() -> None:
    print("Building a synthetic MGTAB-style benchmark (240 users)...")
    benchmark = load_benchmark("mgtab", num_users=240, tweets_per_user=8, seed=0)
    graph = benchmark.graph

    print("Training BSG4Bot (small serving configuration)...")
    detector = api.create_detector(
        {
            "name": "bsg4bot",
            "scale": None,
            "seed": 0,
            "overrides": {
                "pretrain_epochs": 30, "hidden_dim": 16, "pretrain_hidden_dim": 16,
                "subgraph_k": 5, "max_epochs": 6, "patience": 3,
            },
        }
    )
    history = detector.fit(graph)
    print(f"  converged after {history.num_epochs} epochs ({history.total_time:.1f}s)")

    with tempfile.TemporaryDirectory(prefix="repro-cluster-demo-") as scratch:
        artifact = api.save_detector(detector, Path(scratch) / "artifact")
        print(f"  artifact saved to {artifact}")

        print("\nPlanning 2 shards (verified halos) and loading per-shard services...")
        router = ShardRouter.from_artifact(
            artifact, graph=graph, num_shards=2, seed=0,
            max_batch_size=32, max_wait_ms=3.0,
        )
        stats = router.plan.stats()
        print(
            f"  owned={stats['owned_sizes']} halo={stats['halo_sizes']} "
            f"hops={stats['halo_hops']} verified={stats['verified']}"
        )

        try:
            with ServerThread(router) as server:
                health = server.request("/healthz")
                print(
                    f"\nServing on http://127.0.0.1:{server.port} — healthz: "
                    f"{health['status']} ({health['num_shards']} shards)"
                )

                print("Firing 24 concurrent POST /score requests...")
                def score(node: int):
                    return node, server.request("/score", {"nodes": [node]})

                with ThreadPoolExecutor(max_workers=8) as pool:
                    verdicts = dict(pool.map(score, range(24)))
                suspect = max(
                    verdicts, key=lambda n: verdicts[n]["probabilities"][0][1]
                )
                p_before = verdicts[suspect]["probabilities"][0][1]
                print(f"  top suspect: node {suspect} with p(bot) = {p_before:.3f}")

                relation = graph.relation_names[0]
                update = server.request(
                    "/update",
                    {"edges_added": {relation: [[suspect] * 3, [1, 5, 9]]}},
                )
                print(
                    f"POST /update (3 new '{relation}' edges) reached "
                    f"shard(s) {sorted(update['shards'])}"
                )

                rescored = server.request("/score", {"nodes": [suspect]})
                owner = str(int(router.plan.ownership[suspect]))
                p_after = rescored["probabilities"][0][1]
                print(
                    f"  rescore after update: p(bot|node {suspect}) "
                    f"{p_before:.3f} -> {p_after:.3f} "
                    f"(read-your-writes: shard {owner} served at delta seq "
                    f"{rescored['delta_seqs'][owner]} >= "
                    f"{update['shards'][owner]})"
                )

                metrics = server.request("/metrics")
                totals = metrics["cluster_totals"]
                print(
                    f"GET /metrics: {totals['requests']} requests, "
                    f"{totals['nodes_scored']} nodes scored in {totals['waves']} "
                    f"waves across {len(metrics['shards'])} shards"
                )
        finally:
            router.close()
    print("\nServer stopped, router closed: shards, pool and segments released.")


if __name__ == "__main__":
    main()
