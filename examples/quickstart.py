"""Quickstart: detect bots on a synthetic MGTAB-style benchmark with BSG4Bot.

Run with::

    python examples/quickstart.py

The script builds a small benchmark, trains the full BSG4Bot pipeline
(pre-classifier -> biased subgraphs -> heterogeneous GNN), compares it with
the MLP and GCN baselines, and prints the relation-importance weights that
the semantic attention layer learned.
"""

from __future__ import annotations

from repro.baselines import get_detector
from repro.core import BSG4Bot, BSG4BotConfig
from repro.datasets import load_benchmark
from repro.graph.homophily import graph_homophily_ratio


def main() -> None:
    print("Building a synthetic MGTAB-style benchmark (500 users, 7 relations)...")
    benchmark = load_benchmark("mgtab", num_users=500, tweets_per_user=12, seed=0)
    graph = benchmark.graph
    stats = benchmark.statistics()
    homophily = graph_homophily_ratio(graph.merged_adjacency(), graph.labels)
    print(
        f"  users={stats['num_users']}  bots={stats['num_bot']}  "
        f"edges={stats['num_edges']}  relations={stats['num_relations']}  "
        f"homophily={homophily:.3f}"
    )

    print("\nTraining BSG4Bot (biased subgraphs, k=8)...")
    config = BSG4BotConfig(subgraph_k=8, max_epochs=40, patience=8, seed=0)
    detector = BSG4Bot(config)
    history = detector.fit(graph)
    metrics = detector.evaluate(graph)
    print(
        f"  converged after {history.num_epochs} epochs "
        f"({history.total_time:.1f}s total, "
        f"{history.extra['phase_times']['pretrain']:.1f}s pre-training, "
        f"{history.extra['phase_times']['subgraph_construction']:.1f}s subgraph construction)"
    )
    print(f"  test accuracy = {metrics['accuracy']:.2f}   test F1 = {metrics['f1']:.2f}")

    print("\nLearned relation importances (semantic attention):")
    for relation, weight in sorted(
        detector.relation_importance().items(), key=lambda item: -item[1]
    ):
        print(f"  {relation:<10} {weight:.3f}")

    print("\nBaselines on the same split:")
    for name in ("mlp", "gcn", "botrgcn"):
        baseline = get_detector(name, max_epochs=40, patience=8, seed=0)
        baseline.fit(graph)
        baseline_metrics = baseline.evaluate(graph)
        print(
            f"  {baseline.name:<8} accuracy = {baseline_metrics['accuracy']:6.2f}   "
            f"F1 = {baseline_metrics['f1']:6.2f}"
        )


if __name__ == "__main__":
    main()
