"""Quickstart: train once, save, reload, and serve BSG4Bot via ``repro.api``.

Run with::

    python examples/quickstart.py

The script builds a small benchmark, trains the full BSG4Bot pipeline
(pre-classifier -> biased subgraphs -> heterogeneous GNN) through the
detector registry, compares it with two baselines, persists the trained
detector as an artifact directory, reloads it without retraining, and scores
a handful of nodes through a :class:`repro.api.DetectionSession`.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import api
from repro.datasets import load_benchmark
from repro.graph.homophily import graph_homophily_ratio


def main() -> None:
    print("Building a synthetic MGTAB-style benchmark (500 users, 7 relations)...")
    benchmark = load_benchmark("mgtab", num_users=500, tweets_per_user=12, seed=0)
    graph = benchmark.graph
    stats = benchmark.statistics()
    homophily = graph_homophily_ratio(graph.merged_adjacency(), graph.labels)
    print(
        f"  users={stats['num_users']}  bots={stats['num_bot']}  "
        f"edges={stats['num_edges']}  relations={stats['num_relations']}  "
        f"homophily={homophily:.3f}"
    )

    print("\nTraining BSG4Bot (biased subgraphs, k=8)...")
    detector = api.create_detector(
        {
            "name": "bsg4bot",
            "scale": None,
            "seed": 0,
            "overrides": {"subgraph_k": 8, "max_epochs": 40, "patience": 8},
        }
    )
    history = detector.fit(graph)
    metrics = detector.evaluate(graph)
    print(
        f"  converged after {history.num_epochs} epochs "
        f"({history.total_time:.1f}s total, "
        f"{history.extra['phase_times']['pretrain']:.1f}s pre-training, "
        f"{history.extra['phase_times']['subgraph_construction']:.1f}s subgraph construction)"
    )
    print(f"  test accuracy = {metrics['accuracy']:.2f}   test F1 = {metrics['f1']:.2f}")

    print("\nLearned relation importances (semantic attention):")
    for relation, weight in sorted(
        detector.relation_importance().items(), key=lambda item: -item[1]
    ):
        print(f"  {relation:<10} {weight:.3f}")

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "bsg4bot-mgtab"
        api.save_detector(detector, artifact)
        print(f"\nArtifact saved ({sum(1 for _ in artifact.iterdir())} files); reloading...")
        served = api.load_detector(artifact, graph=graph)
        np.testing.assert_array_equal(
            detector.predict_proba(graph), served.predict_proba(graph)
        )
        print("  reloaded detector reproduces predict_proba bit-identically")

        some_bots = np.flatnonzero(graph.labels == 1)[:3].tolist()
        with api.DetectionSession(served, graph) as session:
            probabilities = session.score_nodes(some_bots)
        for node, row in zip(some_bots, probabilities):
            print(f"  node {node:>4}: p(bot) = {row[1]:.3f}")

    print("\nBaselines on the same split:")
    for name in ("mlp", "gcn", "botrgcn"):
        baseline = api.create_detector(
            {"name": name, "scale": None, "seed": 0,
             "overrides": {"max_epochs": 40, "patience": 8}}
        )
        baseline.fit(graph)
        baseline_metrics = baseline.evaluate(graph)
        print(
            f"  {baseline.name:<8} accuracy = {baseline_metrics['accuracy']:6.2f}   "
            f"F1 = {baseline_metrics['f1']:6.2f}"
        )


if __name__ == "__main__":
    main()
