"""Biased subgraphs as a plug-and-play component (the Table IV study).

Run with::

    python examples/plugin_subgraphs.py

For each backbone GNN (GCN, GAT, BotRGCN) the script trains the plain
full-graph model and the same backbone over biased subgraphs, and reports the
improvement the subgraph construction alone provides.  It also shows how much
the construction raises the homophily of bot neighbourhoods, which is the
mechanism behind the gain (the paper's Figure 8).
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.core.preclassifier import PretrainedClassifier
from repro.datasets import load_benchmark
from repro.graph.homophily import node_homophily_ratios
from repro.sampling import BiasedSubgraphBuilder


def homophily_report(graph) -> None:
    """Compare bot homophily in the original graph vs biased subgraphs."""
    counts = graph.class_counts()
    total = sum(counts.values())
    class_weight = np.array(
        [total / max(2 * counts.get(0, 1), 1), total / max(2 * counts.get(1, 1), 1)]
    )
    classifier = PretrainedClassifier(graph.num_features, hidden_dim=32, epochs=60)
    classifier.fit_graph(graph, class_weight=class_weight)
    builder = BiasedSubgraphBuilder(
        graph, classifier.hidden_representations(graph.features), k=8
    )
    original = node_homophily_ratios(graph.merged_adjacency(), graph.labels)
    bots = np.flatnonzero(graph.labels == 1)[:60]
    subgraph_h = np.nanmean(
        [subgraph.center_homophily(graph.labels) for subgraph in builder.build_batch(bots)]
    )
    print(
        f"  bot homophily: original graph {np.nanmean(original[bots]):.3f} "
        f"-> biased subgraphs {subgraph_h:.3f}"
    )


def main() -> None:
    benchmark = load_benchmark("twibot-20", num_users=400, tweets_per_user=10, seed=0)
    graph = benchmark.graph
    print(f"Benchmark: {graph}")
    homophily_report(graph)

    print("\nBackbone comparison (full graph vs biased subgraphs):")
    print(f"  {'backbone':<10} {'full-graph F1':>14} {'subgraphs F1':>14} {'gain':>8}")
    for backbone in ("gcn", "gat", "botrgcn"):
        baseline = api.create_detector(
            {"name": backbone, "scale": None, "seed": 0,
             "overrides": {"max_epochs": 30, "patience": 6}}
        )
        baseline.fit(graph)
        base_f1 = baseline.evaluate(graph)["f1"]

        plugin = api.create_detector(
            {"name": f"plugin-{backbone}", "scale": None, "seed": 0,
             "overrides": {"subgraph_k": 8, "max_epochs": 30, "patience": 6}}
        )
        plugin.fit(graph)
        plugin_f1 = plugin.evaluate(graph)["f1"]
        print(
            f"  {backbone:<10} {base_f1:>14.2f} {plugin_f1:>14.2f} {plugin_f1 - base_f1:>+8.2f}"
        )


if __name__ == "__main__":
    main()
