"""Serving demo: micro-batched concurrent scoring + streaming graph updates.

Run with::

    python examples/serving_demo.py

The script trains a small BSG4Bot, stands up a
:class:`repro.serving.DetectionService` on top of it, fires a burst of
concurrent single-node score requests (watch the batch occupancy — the
micro-batcher coalesces them into a handful of collated waves), streams a
few graph mutations through the ordered delta log with read-your-writes
sequencing, and prints the service telemetry snapshot before shutting
everything down cleanly.
"""

from __future__ import annotations

import threading

import numpy as np

from repro import api
from repro.datasets import load_benchmark
from repro.serving import DetectionService


def main() -> None:
    print("Building a synthetic MGTAB-style benchmark (300 users)...")
    benchmark = load_benchmark("mgtab", num_users=300, tweets_per_user=10, seed=0)
    graph = benchmark.graph

    print("Training BSG4Bot (small serving configuration)...")
    detector = api.create_detector(
        {
            "name": "bsg4bot",
            "scale": None,
            "seed": 0,
            "overrides": {
                "pretrain_epochs": 40, "hidden_dim": 16, "pretrain_hidden_dim": 16,
                "subgraph_k": 6, "max_epochs": 10, "patience": 4,
            },
        }
    )
    history = detector.fit(graph)
    print(f"  converged after {history.num_epochs} epochs ({history.total_time:.1f}s)")

    with DetectionService(detector, graph, max_batch_size=64, max_wait_ms=3.0) as service:
        print(f"\nWarmup: {service.warmup() * 1e3:.1f} ms")

        print("Firing 32 concurrent single-node score requests...")
        rng = np.random.default_rng(7)
        nodes = rng.integers(0, graph.num_nodes, size=32)
        verdicts: dict = {}

        def client(node: int) -> None:
            verdicts[node] = service.score([node])[0, 1]

        threads = [threading.Thread(target=client, args=(int(n),)) for n in nodes]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = service.snapshot()
        print(
            f"  {snapshot['requests']} requests served in {snapshot['waves']} waves "
            f"(occupancy {snapshot['batch_occupancy']:.1f} rows/wave, "
            f"p99 latency {snapshot['request_latency']['p99_s'] * 1e3:.1f} ms)"
        )

        bots = sorted(verdicts, key=lambda n: -verdicts[n])[:3]
        for node in bots:
            print(f"  node {node:>4}: p(bot) = {verdicts[node]:.3f}")

        print("\nStreaming updates (ordered delta log, read-your-writes)...")
        suspect = bots[0]
        relation = graph.relation_names[0]
        targets = rng.integers(0, graph.num_nodes, size=5)
        seq = service.submit_update(
            edges_added={relation: (np.full(5, suspect), targets)}
        )
        handle = service.submit([suspect])
        after = handle.result(30.0)[0, 1]
        print(
            f"  delta #{seq} (5 new '{relation}' edges) applied before the wave "
            f"(served at log prefix {handle.delta_seq}): "
            f"p(bot|node {suspect}) {verdicts[suspect]:.3f} -> {after:.3f}"
        )

        new_row = graph.features[suspect] * 0.5
        service.submit_update(features_changed={int(suspect): new_row})
        service.drain()
        print(f"  feature rewrite applied; log prefix {service.delta_log.applied_seq}")

        snapshot = service.snapshot()
        print(
            f"\nTelemetry: {snapshot['deltas_applied']} deltas applied, "
            f"{snapshot['subgraphs_invalidated']} subgraphs invalidated, "
            f"{snapshot['subgraphs_built']} built, "
            f"cache {snapshot['store_cache_hits']} hits / "
            f"{snapshot['store_cache_misses']} misses"
        )
    print("Service closed: dispatcher stopped, pool and shared segments released.")


if __name__ == "__main__":
    main()
