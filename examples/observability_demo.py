"""Observability demo: tracing and metrics across a sharded cluster.

Run with::

    python examples/observability_demo.py

The script trains a small BSG4Bot, shards it across a 2-shard
:class:`ShardRouter` with an always-sample :class:`Tracer` attached (the
in-process equivalent of ``repro serve <artifact> --num-shards 2
--trace-sample 1.0``), and drives it over real HTTP.  Every ``POST
/score`` carries an ``X-Repro-Request-Id`` header; the server echoes it
and stitches one span tree per request — admission, shard fan-out,
per-shard queue wait, wave collation, and the model forward — no matter
how many shards the request touched.  The script then pulls ``GET
/traces``, renders the slowest trace as a waterfall, and scrapes ``GET
/metrics`` in both JSON (bucket-merged cluster totals) and Prometheus
text form (validated with the strict parser the CI smoke step uses).
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro import api
from repro.datasets import load_benchmark
from repro.obs import MetricsRegistry, Tracer, render_waterfall, validate_exposition
from repro.serving.cluster import ClusterHTTPServer, ShardRouter


class ServerThread:
    """Run one :class:`ClusterHTTPServer` on a private loop in a thread."""

    def __init__(self, router: ShardRouter) -> None:
        self._router = router
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self.port = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(30.0):
            raise RuntimeError("HTTP server failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30.0)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        server = ClusterHTTPServer(self._router, port=0)
        await server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.port = server.port
        self._ready.set()
        await self._stop.wait()
        await server.close()

    def request(self, path: str, body=None, headers=None):
        """Round-trip returning (parsed-or-raw body, response headers)."""
        url = f"http://127.0.0.1:{self.port}{path}"
        data = None if body is None else json.dumps(body).encode("utf-8")
        req = urllib.request.Request(
            url, data=data,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        with urllib.request.urlopen(req, timeout=60.0) as response:
            raw = response.read()
            if response.headers.get("Content-Type", "").startswith("text/plain"):
                return raw.decode("utf-8"), dict(response.headers)
            return json.loads(raw), dict(response.headers)


def main() -> None:
    print("Building a synthetic MGTAB-style benchmark (240 users)...")
    benchmark = load_benchmark("mgtab", num_users=240, tweets_per_user=8, seed=0)
    graph = benchmark.graph

    print("Training BSG4Bot (small serving configuration)...")
    detector = api.create_detector(
        {
            "name": "bsg4bot",
            "scale": None,
            "seed": 0,
            "overrides": {
                "pretrain_epochs": 30, "hidden_dim": 16, "pretrain_hidden_dim": 16,
                "subgraph_k": 5, "max_epochs": 6, "patience": 3,
            },
        }
    )
    history = detector.fit(graph)
    print(f"  converged after {history.num_epochs} epochs ({history.total_time:.1f}s)")

    with tempfile.TemporaryDirectory(prefix="repro-obs-demo-") as scratch:
        artifact = api.save_detector(detector, Path(scratch) / "artifact")

        print("\nSharding 2 ways with tracing armed (sample rate 1.0)...")
        tracer = Tracer(1.0, capacity=64)
        router = ShardRouter.from_artifact(
            artifact, graph=graph, num_shards=2, seed=0,
            max_batch_size=32, max_wait_ms=3.0,
            tracer=tracer, registry=MetricsRegistry(),
        )
        try:
            with ServerThread(router) as server:
                print(f"Serving on http://127.0.0.1:{server.port}")

                # One node owned by each shard: the request must fan out.
                spanning = [int(spec.owned[0]) for spec in router.plan.shards]
                print(f"POST /score for nodes {spanning} (spans both shards)...")
                answer, headers = server.request(
                    "/score", {"nodes": spanning},
                    headers={"X-Repro-Request-Id": "0bs3rvab1e0000d3"},
                )
                print(
                    f"  request id echoed: header="
                    f"{headers.get('X-Repro-Request-Id')} "
                    f"body={answer['request_id']}"
                )
                for node in range(8):  # some single-shard traffic for contrast
                    server.request("/score", {"nodes": [node]})

                listing, _ = server.request("/traces")
                print(
                    f"GET /traces: {listing['stats']['kept']} kept / "
                    f"{listing['stats']['started']} started"
                )
                slowest = max(listing["traces"], key=lambda t: t["duration_s"])
                legs = sum(
                    1 for s in slowest["spans"] if s["name"] == "shard_leg"
                )
                print(
                    f"\nSlowest trace ({slowest['request_id']}, "
                    f"{legs} shard leg(s)) as a waterfall:\n"
                )
                print(render_waterfall(slowest))

                snapshot, _ = server.request("/metrics")
                totals = snapshot["cluster_totals"]
                latency = totals["request_latency"]
                print(
                    f"GET /metrics (JSON): {totals['requests']} requests, "
                    f"cluster p99 {latency['p99_s'] * 1000:.2f} ms "
                    "(bucket-merged across shards)"
                )

                text, _ = server.request(
                    "/metrics", headers={"Accept": "text/plain"}
                )
                kinds = validate_exposition(text)
                histograms = sum(1 for kind in kinds.values() if kind == "histogram")
                print(
                    f"GET /metrics (Prometheus text): {len(kinds)} families "
                    f"({histograms} histograms) — strict validation passed"
                )
        finally:
            router.close()
    print("\nServer stopped, router closed.")


if __name__ == "__main__":
    main()
