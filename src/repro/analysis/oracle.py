"""Oracle-coverage checker: every declared fast path has an equivalence test.

The repo's optimization discipline (ROADMAP "Invariants to preserve") is
that every fast path — the batched PPR frontier, the collation pack, the
pooled shard build — keeps a slow, obviously-correct reference
implementation and an equivalence test binding the two bit-for-bit.  The
code half of that contract is easy to keep; the *test* half silently rots
when a fast path is renamed or a test file is deleted.

A function opts into the contract with an ``# oracle:`` annotation on its
``def`` line (or the line above)::

    def multi_source_ppr(...):  # oracle: push_ppr_single

The checker then requires at least one file under ``tests/`` whose text
mentions **both** the fast path's name and the oracle's trailing name —
scanning text rather than importing, so the lint never executes repo code.
When the run cannot locate a tests directory at all (an installed
package), the checker skips quietly rather than flagging everything.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import LintContext, ModuleSource, register_checker


@register_checker("oracle-coverage")
def check_oracle_coverage(module: ModuleSource, context: LintContext) -> Iterator[Finding]:
    """Functions annotated ``# oracle: <ref>`` need a test naming both."""
    if not module.oracle_lines:
        return
    if not context.has_tests:
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        oracle = module.oracle_for(node)
        if oracle is None:
            continue
        oracle_name = oracle.rsplit(".", 1)[-1]
        covered = any(
            node.name in text and oracle_name in text
            for text in context.test_sources.values()
        )
        if covered:
            continue
        yield Finding(
            checker="oracle-coverage",
            path=module.relpath,
            line=node.lineno,
            scope=node.name,
            detail=f"oracle:{oracle_name}",
            message=(
                f"fast path '{node.name}' declares oracle '{oracle}' but no file "
                f"under tests/ mentions both '{node.name}' and '{oracle_name}'"
            ),
            hint=(
                f"add an equivalence test comparing {node.name} against "
                f"{oracle_name} (bit-identical where the contract requires it)"
            ),
        )
