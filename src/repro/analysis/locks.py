"""Lock-discipline checker: guarded attributes only under their lock.

The concurrency added in PRs 4-5 rests on a convention the type system
cannot see: certain attributes (the subgraph store's dict and caches, the
micro-batcher's queue, the delta log's pending list) must only be touched
inside ``with self.<lock>:`` — or from a method whose *caller* holds the
lock.  This checker makes the convention machine-checked:

* Guarded attributes come from two sources: the built-in
  :data:`GUARDED_CLASSES` registry (the known concurrent classes of this
  repo) and ``# guarded-by: <lock>`` comments on attribute assignments
  (which extend the set for any class, registered or not).
* An access to a guarded attribute is legal when it is lexically inside a
  ``with self.<lock>:`` block for the declared lock, or when the enclosing
  method is *documented lock-held* — its name ends in ``_locked`` or its
  docstring contains "lock-held" (or "caller holds").
* Calling a lock-held method without holding the class lock is itself a
  finding: the documentation contract flows to call sites.
* ``__init__`` (and the pickle/construction dunders) are exempt —
  construction happens-before publication to other threads.

Nested functions defined inside a method are analyzed as if the lock were
**not** held: a closure can escape the ``with`` block that created it, so
assuming the lock would be unsound.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import LintContext, ModuleSource, register_checker

#: Known concurrent classes: class name -> (primary lock attr, guarded attrs).
GUARDED_CLASSES: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "SubgraphStore": ("_lock", ("_store", "_packs", "_batch_cache", "_center_index")),
    "DetectionSession": (
        "_lock",
        (
            "_closed",
            "_fallback_probabilities",
            "_invalidate_takes_relations",
            "_replay_engine",
            "_subset_takes_engine",
            "_replay_stats",
            "_use_replay",
        ),
    ),
    "MicroBatcher": ("_condition", ("_queue", "_closed", "_current_wait_s")),
    "DeltaLog": (
        "_lock",
        (
            "_pending",
            "_next_seq",
            "_applied_seq",
            "_closed",
            "_oldest_pending_at",
            "_expedited",
        ),
    ),
    "ShardRouter": ("_lock", ("_closed", "_requests", "_updates", "_registry_key")),
    "ClusterHTTPServer": ("_lock", ("_inflight", "_rejected")),
    "IngestCache": ("_lock", ("_memo",)),
    "ServingMetrics": ("_lock", ("_counters",)),
    "LatencyHistogram": ("_lock", ("_counts", "_sum", "_min", "_max")),
    "Trace": ("_lock", ("_spans", "_next_span_id", "_duration_s")),
    "Tracer": (
        "_lock",
        ("_traces", "_started", "_kept", "_evicted", "_dump_errors"),
    ),
    "MetricsRegistry": ("_lock", ("_collectors", "_owned")),
    "Counter": ("_lock", ("_value",)),
    "Gauge": ("_lock", ("_value",)),
}

#: Methods where unguarded access is always legal: construction and pickling
#: happen-before the object is visible to any other thread.
_EXEMPT_METHODS = frozenset(
    {"__init__", "__new__", "__post_init__", "__getstate__", "__setstate__", "__del__"}
)

_LOCK_HELD_TOKENS = ("lock-held", "lock held", "caller holds")


def _is_lock_held_method(node: ast.FunctionDef) -> bool:
    """Documented lock-held: ``*_locked`` name or a docstring declaration."""
    if node.name.endswith("_locked"):
        return True
    docstring = ast.get_docstring(node) or ""
    lowered = docstring.lower()
    return any(token in lowered for token in _LOCK_HELD_TOKENS)


def _self_attribute(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.attr``; otherwise None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _with_locks(node: ast.AST) -> Set[str]:
    """Lock names newly held by one ``with`` statement (``self.X`` items)."""
    held: Set[str] = set()
    if isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            attr = _self_attribute(item.context_expr)
            if attr is not None:
                held.add(attr)
    return held


def _guarded_attrs_for_class(
    module: ModuleSource, class_node: ast.ClassDef
) -> Tuple[Optional[str], Dict[str, str]]:
    """(primary lock, attr -> lock) for one class: registry + annotations."""
    guarded: Dict[str, str] = {}
    primary: Optional[str] = None
    registered = GUARDED_CLASSES.get(class_node.name)
    if registered is not None:
        primary = registered[0]
        for attr in registered[1]:
            guarded[attr] = registered[0]
    # ``# guarded-by:`` comments on self-attribute assignments in any method.
    for statement in ast.walk(class_node):
        if not isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            continue
        lock = module.guarded_by_lines.get(statement.lineno)
        if lock is None:
            continue
        targets = statement.targets if isinstance(statement, ast.Assign) else [statement.target]
        for target in targets:
            attr = _self_attribute(target)
            if attr is not None:
                guarded[attr] = lock
    if primary is None and guarded:
        locks = set(guarded.values())
        primary = locks.pop() if len(locks) == 1 else None
    return primary, guarded


class _MethodScanner:
    """Walks one method body tracking the lexically-held lock set."""

    def __init__(
        self,
        module: ModuleSource,
        class_name: str,
        method: ast.FunctionDef,
        guarded: Dict[str, str],
        lock_held_methods: Set[str],
        primary_lock: Optional[str],
    ) -> None:
        self.module = module
        self.class_name = class_name
        self.method = method
        self.guarded = guarded
        self.lock_held_methods = lock_held_methods
        self.primary_lock = primary_lock
        self.findings: List[Finding] = []
        self._reported: Set[str] = set()

    def scan(self) -> List[Finding]:
        for statement in self.method.body:
            self._visit(statement, frozenset())
        return self.findings

    def _report(self, node: ast.AST, detail: str, message: str, hint: str) -> None:
        if detail in self._reported:  # one finding per (method, attr)
            return
        self._reported.add(detail)
        self.findings.append(
            Finding(
                checker="lock-discipline",
                path=self.module.relpath,
                line=getattr(node, "lineno", self.method.lineno),
                scope=f"{self.class_name}.{self.method.name}",
                detail=detail,
                message=message,
                hint=hint,
            )
        )

    def _visit(self, node: ast.AST, held: frozenset) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A closure may outlive the ``with`` block that defined it; the
            # held set is reset to empty rather than inherited.
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                self._visit(child, frozenset())
            return
        attr = _self_attribute(node)
        if attr is not None and attr in self.guarded:
            lock = self.guarded[attr]
            if lock not in held:
                self._report(
                    node,
                    attr,
                    f"guarded attribute 'self.{attr}' accessed outside "
                    f"'with self.{lock}:' in {self.class_name}.{self.method.name}",
                    f"wrap the access in 'with self.{lock}:', or document the "
                    "method lock-held (suffix '_locked' or 'lock-held' in the docstring)",
                )
        if (
            isinstance(node, ast.Call)
            and (callee := _self_attribute(node.func)) is not None
            and callee in self.lock_held_methods
        ):
            required = self.primary_lock
            if required is not None and required not in held:
                self._report(
                    node,
                    f"call:{callee}",
                    f"lock-held method 'self.{callee}()' called without "
                    f"'self.{required}' in {self.class_name}.{self.method.name}",
                    f"acquire 'with self.{required}:' around the call (the callee "
                    "documents that its caller holds the lock)",
                )
        new_locks = _with_locks(node)
        child_held = held | new_locks if new_locks else held
        for child in ast.iter_child_nodes(node):
            self._visit(child, child_held)


@register_checker("lock-discipline")
def check_lock_discipline(module: ModuleSource, context: LintContext) -> Iterator[Finding]:
    """Guarded attributes must be accessed under their declared lock."""
    for class_node in module.tree.body:
        if not isinstance(class_node, ast.ClassDef):
            continue
        primary, guarded = _guarded_attrs_for_class(module, class_node)
        if not guarded:
            continue
        methods = [
            statement
            for statement in class_node.body
            if isinstance(statement, ast.FunctionDef)
        ]
        lock_held_methods = {
            method.name for method in methods if _is_lock_held_method(method)
        }
        for method in methods:
            if method.name in _EXEMPT_METHODS or _is_lock_held_method(method):
                continue
            scanner = _MethodScanner(
                module, class_node.name, method, guarded, lock_held_methods, primary
            )
            yield from scanner.scan()
