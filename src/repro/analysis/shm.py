"""Shm-lifecycle checker: every shared segment must have a release path.

POSIX shared memory outlives the process: a ``SharedMemory`` segment that
is never ``unlink``-ed leaks until reboot, and an attached handle that is
never ``close``-d keeps the mapping (and, with the resource tracker, can
spuriously destroy it at worker exit — the bug class ``_attach_segment``
exists to dodge).  This checker enforces the structural half of the
discipline statically:

* A **creation site** (``SharedArray.create``, ``SharedCSR.create``,
  ``SharedMemory(..., create=True)``) must either transfer ownership (the
  created object flows into a ``return``, a ``with`` block, or another
  call — a registry, a finalizer) or be stored somewhere a cleanup method
  in the same module can reach: the binding attribute must be referenced
  from a method whose name looks like a close path
  (``close``/``unlink``/``release*``/``shutdown``/``__exit__``/…).
* An **attach site** (``*.attach(...)``, ``_attach_segment(...)``,
  ``SharedMemory(name=...)``) must pair with a detach the same way; the
  cleanup may reference either the attached binding or the handle it was
  attached *from* (closing the handle closes the mapping).

The cleanup search is module-wide, not class-wide, because ownership is
sometimes split across classes (``SharedGraphView.close`` releases the
``_SharedRelationView`` members it aggregates).  The runtime complement —
the ``REPRO_SANITIZE=1`` segment census — catches what static reachability
cannot (a close path that exists but is never called).
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Iterator, List, Optional, Set, Tuple, TypeVar

from repro.analysis.findings import Finding
from repro.analysis.registry import LintContext, ModuleSource, register_checker

_CLEANUP_NAME = re.compile(
    r"(close|unlink|release|shutdown|stop|detach|clear|terminate|teardown|join|"
    r"__exit__|__del__)",
    re.IGNORECASE,
)

#: ``<Class>.create(...)`` receivers treated as shared-segment factories.
_FACTORY_CLASSES = re.compile(r"^Shared[A-Za-z]*$")

#: Statement types that directly bind an expression's value.
_SIMPLE_STMTS = (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Return, ast.Expr)

_T = TypeVar("_T")


def _walk_own(function: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own body without descending into nested defs.

    Nested functions are separate scopes with their own locals; each one
    is analyzed independently by the caller.
    """
    body = function.body if isinstance(function.body, list) else [function.body]
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def iter_bound_calls(
    function: ast.AST, matcher: Callable[[ast.Call], Optional[_T]]
) -> Iterator[Tuple[Optional[ast.stmt], ast.Call, _T]]:
    """(binding statement, call, tag) for matcher-selected calls.

    The binding statement is the *innermost* simple statement containing
    the call — the one whose targets say where the value went.  Calls that
    appear as ``with``-items yield ``None`` for the statement (a context
    manager is its own release path).  Calls elsewhere (conditions,
    ``for``-iterables) are skipped: they read, they don't own.
    """
    handled: Set[int] = set()
    for statement in _walk_own(function):
        if isinstance(statement, _SIMPLE_STMTS):
            for call in ast.walk(statement):
                if not isinstance(call, ast.Call) or id(call) in handled:
                    continue
                tag = matcher(call)
                if tag is not None:
                    handled.add(id(call))
                    yield statement, call, tag
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                for call in ast.walk(item.context_expr):
                    if not isinstance(call, ast.Call) or id(call) in handled:
                        continue
                    tag = matcher(call)
                    if tag is not None:
                        handled.add(id(call))
                        yield None, call, tag


def _call_name(node: ast.Call) -> Optional[str]:
    """Trailing name of the callee: ``a.b.C(...)`` -> ``C``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _has_kw(node: ast.Call, name: str, value: object) -> bool:
    for keyword in node.keywords:
        if keyword.arg == name and isinstance(keyword.value, ast.Constant):
            if keyword.value.value == value:
                return True
    return False


def _classify_call(node: ast.Call) -> Optional[str]:
    """'create', 'attach', or None for one call expression."""
    name = _call_name(node)
    if name == "create" and isinstance(node.func, ast.Attribute):
        receiver = node.func.value
        if isinstance(receiver, ast.Name) and _FACTORY_CLASSES.match(receiver.id):
            return "create"
        return None
    if name == "SharedMemory":
        return "create" if _has_kw(node, "create", True) else "attach"
    if name == "attach" and isinstance(node.func, ast.Attribute):
        return "attach"
    if name == "_attach_segment":
        return "attach"
    return None


def _receiver_attr(node: ast.Call) -> Optional[str]:
    """For ``self.X.attach()`` / ``payload._emb.attach()`` -> ``X``."""
    if isinstance(node.func, ast.Attribute) and isinstance(node.func.value, ast.Attribute):
        return node.func.value.attr
    return None


def _cleanup_functions(tree: ast.Module) -> List[ast.FunctionDef]:
    """Every function in the module whose name reads like a close path."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and _CLEANUP_NAME.search(node.name)
    ]


def released_names(tree: ast.Module) -> Set[str]:
    """Attribute/variable names touched by any cleanup-named function."""
    seen: Set[str] = set()
    for function in _cleanup_functions(tree):
        for node in ast.walk(function):
            if isinstance(node, ast.Attribute):
                seen.add(node.attr)
            elif isinstance(node, ast.Name):
                seen.add(node.id)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # ``self.__dict__["_segment"]`` / getattr-by-name cleanup.
                seen.add(node.value)
    return seen


def _names_in(node: ast.AST) -> Set[str]:
    return {child.id for child in ast.walk(node) if isinstance(child, ast.Name)}


def binding_of(statement: Optional[ast.stmt], call: ast.Call) -> Tuple[str, Optional[str]]:
    """How the call's value is bound by its innermost simple statement.

    Returns (kind, name): kind is 'managed' | 'return' | 'attr' | 'local' |
    'escapes' | 'dropped'; name is the attribute or variable when bound.
    """
    if statement is None:
        return "managed", None  # with-statement context manager
    if isinstance(statement, ast.Return):
        return "return", None
    if isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            statement.targets if isinstance(statement, ast.Assign) else [statement.target]
        )
        for target in targets:
            if isinstance(target, ast.Attribute):
                return "attr", target.attr
            if isinstance(target, ast.Name):
                return "local", target.id
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        return "local", element.id
    # Creation directly as a call argument escapes to the callee
    # (register(...), weakref.finalize(...), constructor wrapping).
    for node in ast.walk(statement):
        if not isinstance(node, ast.Call) or node is call:
            continue
        if call in node.args or any(keyword.value is call for keyword in node.keywords):
            return "escapes", None
    return "dropped", None


def local_escapes(function: ast.AST, name: str, origin: ast.stmt) -> Tuple[bool, Optional[str]]:
    """Does local ``name`` leave ``function`` or get cleaned up in place?

    Returns (escapes, rebound_attr).  The local escapes when it is
    returned/yielded, passed to another call, iterated over (its elements
    are handed to the loop body — the thread-list/join pattern), used as a
    context manager, or has a cleanup-named method called on it directly.
    When it is stored as ``obj.X = name`` the attribute ``X`` is reported
    so the module-wide cleanup search can chase it instead.
    """
    rebound: Optional[str] = None
    for node in _walk_own(function):
        if node is origin:
            continue
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and name in _names_in(node.value):
                return True, None
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
                and _CLEANUP_NAME.search(node.func.attr)
            ):
                return True, None  # seg.close() / pool.shutdown() in place
            arg_names: Set[str] = set()
            for arg in node.args:
                arg_names |= _names_in(arg)
            for keyword in node.keywords:
                arg_names |= _names_in(keyword.value)
            if name in arg_names:
                return True, None
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if name in _names_in(node.iter):
                return True, None
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == name
                ):
                    rebound = target.attr
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if name in _names_in(item.context_expr):
                    return True, None
    return rebound is not None, rebound


def module_functions(tree: ast.Module) -> List[ast.FunctionDef]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


@register_checker("shm-lifecycle")
def check_shm_lifecycle(module: ModuleSource, context: LintContext) -> Iterator[Finding]:
    """Shared-memory create/attach sites need a reachable release path."""
    if "Shared" not in module.source and "_attach_segment" not in module.source:
        return
    released = released_names(module.tree)

    for function in module_functions(module.tree):
        for statement, call, kind in iter_bound_calls(function, _classify_call):
            verb = "created" if kind == "create" else "attached"
            release_verb = "unlink/close" if kind == "create" else "close"
            binding, name = binding_of(statement, call)
            if binding in ("return", "escapes", "managed"):
                continue  # ownership transferred or scoped
            if binding == "attr":
                # Attaches may be released via the handle they came from.
                candidates = {name}
                receiver = _receiver_attr(call)
                if kind == "attach" and receiver is not None:
                    candidates.add(receiver)
                if candidates & released:
                    continue
                yield Finding(
                    checker="shm-lifecycle",
                    path=module.relpath,
                    line=call.lineno,
                    scope=function.name,
                    detail=f"{kind}:{name}",
                    message=(
                        f"shared segment {verb} into 'self.{name}' has no "
                        f"{release_verb} path — no cleanup-named method in this "
                        f"module references {sorted(candidates)}"
                    ),
                    hint=(
                        f"add a close()/unlink() method that releases 'self.{name}', "
                        "or route it through release_shared()/weakref.finalize"
                    ),
                )
                continue
            if binding == "local":
                escapes, rebound = local_escapes(function, name, statement)
                if escapes and rebound is None:
                    continue
                if rebound is not None and rebound in released:
                    continue
                if rebound is None:
                    target = f"local '{name}'"
                else:
                    target = f"'self.{rebound}' (via local '{name}')"
                yield Finding(
                    checker="shm-lifecycle",
                    path=module.relpath,
                    line=call.lineno,
                    scope=function.name,
                    detail=f"{kind}:{name}",
                    message=(
                        f"shared segment {verb} into {target} never reaches a "
                        f"{release_verb} path in this module"
                    ),
                    hint=(
                        f"call {release_verb}() before the function exits, return "
                        "the object to transfer ownership, or store it where a "
                        "cleanup method releases it"
                    ),
                )
                continue
            yield Finding(
                checker="shm-lifecycle",
                path=module.relpath,
                line=call.lineno,
                scope=function.name,
                detail=f"{kind}:<dropped>",
                message=(
                    f"shared segment {verb} and immediately dropped — "
                    "it can never be released"
                ),
                hint="bind the result and release it, or remove the call",
            )
