"""Lint runner: walk files, run every registered checker, diff the baseline.

The entry point is :func:`run_lint`, used both by the ``repro lint`` CLI
subcommand and by the self-run test.  It is import-side-effect driven:
importing this module imports the checker modules, which register
themselves with :data:`repro.analysis.registry.CHECKERS`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.findings import (
    Finding,
    LintReport,
    apply_baseline,
    default_baseline_path,
    load_baseline,
)
from repro.analysis.registry import CHECKERS, LintContext, ModuleSource

# Importing for registration side effects — each module adds its checker.
from repro.analysis import locks as _locks  # noqa: F401
from repro.analysis import oracle as _oracle  # noqa: F401
from repro.analysis import reductions as _reductions  # noqa: F401
from repro.analysis import resources as _resources  # noqa: F401
from repro.analysis import shm as _shm  # noqa: F401

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".pytest_cache"})


def default_target() -> Path:
    """The ``src/repro`` package this module was loaded from."""
    return Path(__file__).resolve().parents[1]


def repo_root_for(target: Path) -> Path:
    """Best-effort repository root: the ancestor holding ``tests/``.

    Falls back to the target itself when no tests directory exists above
    it (an installed package) — checkers that need the test corpus then
    skip via ``LintContext.has_tests``.
    """
    target = Path(target).resolve()
    probe = target if target.is_dir() else target.parent
    for ancestor in (probe, *probe.parents):
        if (ancestor / "tests").is_dir():
            return ancestor
    return probe


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
    return found


def build_context(root: Path) -> LintContext:
    """Load the tests corpus (text only — never imported) for ``root``."""
    tests_dir = Path(root) / "tests"
    sources: Dict[str, str] = {}
    if tests_dir.is_dir():
        for path in sorted(tests_dir.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in path.parts):
                continue
            try:
                sources[str(path)] = path.read_text()
            except OSError:
                continue
    return LintContext(root=Path(root), test_sources=sources, has_tests=tests_dir.is_dir())


def _relpath(path: Path, root: Path) -> str:
    try:
        return Path(path).resolve().relative_to(Path(root).resolve()).as_posix()
    except ValueError:
        return Path(path).name


def collect_findings(
    paths: Optional[Sequence[Path]] = None,
    *,
    root: Optional[Path] = None,
    only: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Raw findings (pre-baseline) for the given files or directories."""
    targets = [Path(p) for p in paths] if paths else [default_target()]
    resolved_root = Path(root) if root is not None else repo_root_for(targets[0])
    context = build_context(resolved_root)
    findings: List[Finding] = []
    for path in iter_python_files(targets):
        relpath = _relpath(path, resolved_root)
        try:
            module = ModuleSource.parse(path, relpath)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            findings.append(
                Finding(
                    checker="parse",
                    path=relpath,
                    line=getattr(error, "lineno", None) or 1,
                    scope="<module>",
                    detail="parse-error",
                    message=f"could not parse: {error}",
                    hint="fix the syntax error; all checkers skipped this file",
                )
            )
            continue
        findings.extend(CHECKERS.run(module, context, only=only))
    return findings


def run_lint(
    paths: Optional[Sequence[Path]] = None,
    *,
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    only: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run the checkers and split findings against the committed baseline."""
    selected = tuple(only) if only is not None else tuple(CHECKERS.names())
    findings = collect_findings(paths, root=root, only=selected)
    baseline = load_baseline(
        baseline_path if baseline_path is not None else default_baseline_path()
    )
    new, baselined, stale = apply_baseline(findings, baseline)
    files = iter_python_files([Path(p) for p in paths] if paths else [default_target()])
    return LintReport(
        new=new,
        baselined=baselined,
        stale_keys=stale,
        files_checked=len(files),
        checkers_run=selected,
    )
