"""Runtime concurrency sanitizer: lock-order tracking + shm segment census.

The static checkers prove structure; this module watches behavior.  With
``REPRO_SANITIZE=1`` in the environment:

* :func:`tracked_rlock` / :func:`tracked_condition` return proxies that
  record every acquisition into a process-global *acquisition graph*
  (edge A→B = "B was acquired while holding A").  A new edge that closes
  a cycle is a **lock-order inversion** — the statically-detectable half
  of a deadlock — and is recorded with both stacks' lock names and the
  call site.  The proxies forward ``_is_owned``/``_release_save``/
  ``_acquire_restore`` so they compose with ``threading.Condition``
  (whose ``wait()`` fully releases and re-acquires the lock).
* :func:`note_segment_created` / :func:`note_segment_unlinked` maintain a
  census of shared-memory segments this process created; anything still
  in the census at interpreter exit is a leak and is reported to stderr
  by an ``atexit`` hook (and asserted empty by the test-suite fixture).

Without the environment flag every entry point degrades to the plain
stdlib object or a no-op, so production code pays one attribute check at
construction time and nothing per acquisition.

This module must stay stdlib-only: it is imported by
``graph/adjacency.py``, which sits below everything else in the package.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
import traceback
from typing import Dict, List, Optional, Set, Tuple


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to anything but '' or '0'."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


class _Sanitizer:
    """Process-global acquisition graph + shm census (thread-safe)."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()  # plain Lock: never tracked itself
        #: lock name -> names acquired while it was held.
        self._edges: Dict[str, Set[str]] = {}
        #: (holder, acquired) -> "file:line" of the first observation.
        self._edge_sites: Dict[Tuple[str, str], str] = {}
        self._violations: List[str] = []
        self._segments: Dict[str, str] = {}  # segment name -> creation site
        self._local = threading.local()

    # -- per-thread held-lock stack -------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _counts(self) -> Dict[str, int]:
        counts = getattr(self._local, "counts", None)
        if counts is None:
            counts = {}
            self._local.counts = counts
        return counts

    @staticmethod
    def _call_site() -> str:
        for frame in reversed(traceback.extract_stack(limit=16)):
            if "analysis/sanitizer" not in frame.filename.replace("\\", "/"):
                return f"{frame.filename}:{frame.lineno}"
        return "<unknown>"

    # -- lock-order tracking --------------------------------------------

    def note_acquire(self, name: str) -> None:
        counts = self._counts()
        depth = counts.get(name, 0) + 1
        counts[name] = depth
        if depth > 1:
            return  # re-entrant re-acquire: no new ordering information
        stack = self._stack()
        if stack:
            self._record_edge(stack[-1], name)
        stack.append(name)

    def note_release(self, name: str) -> None:
        counts = self._counts()
        depth = counts.get(name, 0) - 1
        if depth > 0:
            counts[name] = depth
            return
        counts.pop(name, None)
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                break

    def note_release_all(self, name: str) -> int:
        """Condition.wait path: drop every recursion level, return depth."""
        counts = self._counts()
        depth = counts.pop(name, 0)
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                break
        return depth

    def note_acquire_restore(self, name: str, depth: int) -> None:
        self._counts()[name] = max(depth, 1)
        stack = self._stack()
        if stack:
            self._record_edge(stack[-1], name)
        stack.append(name)

    def _record_edge(self, holder: str, acquired: str) -> None:
        if holder == acquired:
            return
        with self._mutex:
            successors = self._edges.setdefault(holder, set())
            if acquired in successors:
                return
            successors.add(acquired)
            self._edge_sites[(holder, acquired)] = self._call_site()
            cycle = self._find_cycle(acquired, holder)
            if cycle is not None:
                path = [holder, *cycle]
                description = " -> ".join(path)
                sites = "; ".join(
                    f"{a}->{b} first seen at {self._edge_sites.get((a, b), '?')}"
                    for a, b in zip(path, path[1:])
                )
                self._violations.append(
                    f"lock-order inversion: {description} ({sites})"
                )

    def _find_cycle(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS path start -> ... -> goal through the acquisition graph."""
        seen = {start}
        frontier: List[Tuple[str, List[str]]] = [(start, [start])]
        while frontier:
            node, path = frontier.pop()
            if node == goal:
                return path
            for successor in self._edges.get(node, ()):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append((successor, path + [successor]))
        return None

    # -- shm census ------------------------------------------------------

    def note_segment_created(self, name: str) -> None:
        site = self._call_site()
        with self._mutex:
            self._segments[name] = site

    def note_segment_unlinked(self, name: str) -> None:
        with self._mutex:
            self._segments.pop(name, None)

    # -- reporting -------------------------------------------------------

    def lock_order_violations(self) -> List[str]:
        with self._mutex:
            return list(self._violations)

    def shm_leaks(self) -> List[str]:
        with self._mutex:
            return [f"{name} (created at {site})" for name, site in self._segments.items()]

    def tracked_segments(self) -> Set[str]:
        with self._mutex:
            return set(self._segments)

    def reset(self) -> None:
        """Drop all recorded state (test isolation)."""
        with self._mutex:
            self._edges.clear()
            self._edge_sites.clear()
            self._violations.clear()
            self._segments.clear()


_SANITIZER = _Sanitizer()


class _TrackedRLock:
    """An ``threading.RLock`` proxy feeding the acquisition graph.

    Not a subclass — ``_thread.RLock`` is a C type — but forwards the full
    protocol ``threading.Condition`` relies on, including the save/restore
    pair used by ``wait()``.
    """

    __slots__ = ("_name", "_inner")

    def __init__(self, name: str) -> None:
        self._name = name
        self._inner = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _SANITIZER.note_acquire(self._name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        _SANITIZER.note_release(self._name)

    def __enter__(self) -> "_TrackedRLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    # Condition protocol ------------------------------------------------

    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def _release_save(self) -> Tuple[object, int]:
        state = self._inner._release_save()
        depth = _SANITIZER.note_release_all(self._name)
        return (state, depth)

    def _acquire_restore(self, saved: Tuple[object, int]) -> None:
        state, depth = saved
        self._inner._acquire_restore(state)
        _SANITIZER.note_acquire_restore(self._name, depth)

    def _at_fork_reinit(self) -> None:
        reinit = getattr(self._inner, "_at_fork_reinit", None)
        if reinit is not None:
            reinit()

    def __repr__(self) -> str:
        return f"<TrackedRLock {self._name!r} wrapping {self._inner!r}>"


def tracked_rlock(name: str) -> threading.RLock:
    """A (possibly tracked) re-entrant lock named for diagnostics."""
    if not enabled():
        return threading.RLock()
    return _TrackedRLock(name)  # type: ignore[return-value]


def tracked_condition(name: str) -> threading.Condition:
    """A condition variable whose underlying lock is (possibly) tracked."""
    if not enabled():
        return threading.Condition()
    return threading.Condition(_TrackedRLock(name))  # type: ignore[arg-type]


def note_segment_created(name: str) -> None:
    """Census hook: a shared-memory segment was created by this process."""
    if enabled():
        _SANITIZER.note_segment_created(name)


def note_segment_unlinked(name: str) -> None:
    """Census hook: a tracked segment was unlinked (or ownership left us)."""
    if enabled():
        _SANITIZER.note_segment_unlinked(name)


def lock_order_violations() -> List[str]:
    """All lock-order inversions observed so far (empty when disabled)."""
    return _SANITIZER.lock_order_violations()


def shm_leaks() -> List[str]:
    """Tracked segments not yet unlinked (empty when disabled)."""
    return _SANITIZER.shm_leaks()


def reset() -> None:
    """Clear all sanitizer state — for test isolation only."""
    _SANITIZER.reset()


def _atexit_report() -> None:
    if not enabled():
        return
    violations = _SANITIZER.lock_order_violations()
    leaks = _SANITIZER.shm_leaks()
    if not violations and not leaks:
        return
    print("=== repro sanitizer report ===", file=sys.stderr)
    for violation in violations:
        print(f"  {violation}", file=sys.stderr)
    for leak in leaks:
        print(f"  shm segment leaked: {leak}", file=sys.stderr)
    print("=== end sanitizer report ===", file=sys.stderr)


atexit.register(_atexit_report)
