"""Finding and baseline primitives for the invariant checker suite.

A :class:`Finding` is one checker hit: checker id, location, message and a
fix hint.  Its :attr:`Finding.key` deliberately excludes the line number —
unrelated edits move code around, and a baseline keyed on line numbers would
go stale on every refactor.  Instead the key is
``checker:relative-path:scope:detail`` where ``scope`` is the enclosing
``Class.method`` (or ``<module>``) and ``detail`` names the offending
attribute/function — stable until the finding itself is fixed or a new one
appears.

The baseline file (``analysis/baseline.json``) is the suppression ratchet:
pre-existing findings are recorded there so ``repro lint`` fails only on
*new* ones — the same philosophy as the rolling-best perf gate, applied to
correctness discipline.  Fixing a finding and removing its baseline entry
tightens the gate permanently; the file never loosens by itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

#: Baseline schema version; bump on incompatible key format changes.
BASELINE_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One checker hit, printable as ``path:line: [checker] message``."""

    checker: str
    path: str  # repository-relative, forward slashes
    line: int
    scope: str  # "Class.method", "function", or "<module>"
    detail: str  # the offending attribute / function / resource name
    message: str
    hint: str = ""

    @property
    def key(self) -> str:
        """Line-number-free identity used for baseline suppression."""
        return f"{self.checker}:{self.path}:{self.scope}:{self.detail}"

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.checker}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class LintReport:
    """Outcome of one lint run: new findings vs. baseline-suppressed ones."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline keys that matched nothing — stale entries that should be
    #: removed (the finding they suppressed was fixed).
    stale_keys: List[str] = field(default_factory=list)
    files_checked: int = 0
    checkers_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.new

    def render(self, show_baselined: bool = False) -> str:
        lines: List[str] = []
        for finding in self.new:
            lines.append(finding.render())
        if show_baselined and self.baselined:
            lines.append("")
            lines.append(f"baselined ({len(self.baselined)} pre-existing):")
            for finding in self.baselined:
                lines.append("  " + finding.render().replace("\n", "\n  "))
        if self.stale_keys:
            lines.append("")
            lines.append(
                f"stale baseline entries ({len(self.stale_keys)}) — the findings "
                "they suppressed no longer exist; regenerate with --write-baseline:"
            )
            for key in self.stale_keys:
                lines.append(f"  {key}")
        summary = (
            f"{len(self.new)} new finding(s), {len(self.baselined)} baselined, "
            f"{self.files_checked} file(s), checkers: {', '.join(self.checkers_run)}"
        )
        lines.append(("" if not lines else "\n") + summary)
        return "\n".join(lines)


def default_baseline_path() -> Path:
    """The committed baseline next to this package (works installed too)."""
    return Path(__file__).resolve().parent / "baseline.json"


def load_baseline(path: Path) -> Dict[str, str]:
    """Baseline keys -> recorded message (empty when the file is missing)."""
    if not Path(path).exists():
        return {}
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"baseline {path} is not a checker baseline file")
    return {str(entry["key"]): str(entry.get("message", "")) for entry in payload["findings"]}


def save_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries = sorted(
        ({"key": finding.key, "message": finding.message} for finding in findings),
        key=lambda entry: entry["key"],
    )
    payload = {"version": BASELINE_VERSION, "findings": entries}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return len(entries)


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, str]
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into (new, baselined) and report stale baseline keys."""
    new: List[Finding] = []
    baselined: List[Finding] = []
    seen = set()
    for finding in findings:
        seen.add(finding.key)
        if finding.key in baseline:
            baselined.append(finding)
        else:
            new.append(finding)
    stale = sorted(key for key in baseline if key not in seen)
    return new, baselined, stale
