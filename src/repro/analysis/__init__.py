"""Invariant checker suite: AST lint + runtime concurrency sanitizer.

Static half (``repro lint``): five stdlib-``ast`` checkers enforcing the
conventions the concurrent engine rests on — lock discipline, shm
lifecycle, order-pinned reductions in bit-identity-gated modules, oracle
coverage for declared fast paths, and thread/pool join paths — ratcheted
by a committed ``baseline.json`` so CI fails only on *new* findings.

Runtime half (``REPRO_SANITIZE=1``): lock-order-inversion detection via
tracked RLock/Condition proxies and an atexit shared-memory census.  See
:mod:`repro.analysis.sanitizer`.

Re-exports resolve lazily (PEP 562): the sanitizer is imported by
low-level modules (``graph/adjacency.py``, the serving stack), and they
must not pay for parsing the whole checker suite — or pull it into every
``import repro.graph``.
"""

from typing import TYPE_CHECKING

_FINDINGS_EXPORTS = {
    "BASELINE_VERSION",
    "Finding",
    "LintReport",
    "apply_baseline",
    "default_baseline_path",
    "load_baseline",
    "save_baseline",
}
_REGISTRY_EXPORTS = {
    "CHECKERS",
    "CheckerRegistry",
    "LintContext",
    "ModuleSource",
    "register_checker",
}
_RUNNER_EXPORTS = {
    "build_context",
    "collect_findings",
    "default_target",
    "iter_python_files",
    "repo_root_for",
    "run_lint",
}

__all__ = sorted(_FINDINGS_EXPORTS | _REGISTRY_EXPORTS | _RUNNER_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static-analysis aid only
    from repro.analysis.findings import (  # noqa: F401
        BASELINE_VERSION,
        Finding,
        LintReport,
        apply_baseline,
        default_baseline_path,
        load_baseline,
        save_baseline,
    )
    from repro.analysis.registry import (  # noqa: F401
        CHECKERS,
        CheckerRegistry,
        LintContext,
        ModuleSource,
        register_checker,
    )
    from repro.analysis.runner import (  # noqa: F401
        build_context,
        collect_findings,
        default_target,
        iter_python_files,
        repo_root_for,
        run_lint,
    )


def __getattr__(name: str):
    if name in _FINDINGS_EXPORTS:
        from repro.analysis import findings as module
    elif name in _REGISTRY_EXPORTS:
        from repro.analysis import registry as module
    elif name in _RUNNER_EXPORTS:
        # Importing the runner registers every checker as a side effect.
        from repro.analysis import runner as module
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(module, name)
