"""Resource-join checker: threads and pools must have a shutdown path.

A ``threading.Thread`` that is never joined, or an executor that is never
shut down, turns into a test-suite hang or an interpreter-exit deadlock —
the serving smoke test in CI asserts "no leftover threads" precisely
because this class of leak is invisible locally.  This checker enforces
the structural half: every ``Thread``/``Timer``/``ThreadPoolExecutor``/
``ProcessPoolExecutor``/``Pool`` construction in the checked tree must be
reachable from a ``join()``/``shutdown()``/``terminate()`` call somewhere
in the same module.

Accepted ownership shapes mirror the shm checker:

* constructed in a ``with`` statement (executors self-shutdown on exit);
* returned / yielded / passed on / iterated over (ownership transfer —
  the thread-list pattern ``for t in threads: t.join()`` counts via the
  iteration rule);
* bound to ``self.X`` or a module global ``Y`` — then some call
  ``<anything>.X.join()`` / ``Y.shutdown()`` / … must exist in the module.

Daemon threads get no exemption on purpose: the dispatcher thread in
``serving/service.py`` is a daemon *and* joined in ``close()`` — daemonhood
is the backstop, the join is the contract.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.registry import LintContext, ModuleSource, register_checker
from repro.analysis.shm import (
    binding_of,
    iter_bound_calls,
    local_escapes,
    module_functions,
)

#: Constructor trailing names treated as joinable-resource factories.
_RESOURCE_FACTORIES = frozenset(
    {"Thread", "Timer", "ThreadPoolExecutor", "ProcessPoolExecutor", "Pool"}
)

_JOIN_METHODS = frozenset({"join", "shutdown", "terminate", "close"})


def _factory_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _RESOURCE_FACTORIES:
        return func.attr
    if isinstance(func, ast.Name) and func.id in _RESOURCE_FACTORIES:
        return func.id
    return None


def _joined_bindings(tree: ast.Module) -> Set[str]:
    """Names X for which ``<expr>.X.join()``-style calls exist module-wide.

    Covers ``self._thread.join()`` (X from the attribute chain), bare
    ``_shared_pool.shutdown()`` on a module global (X from the name), and
    loop variables (``for t in threads: t.join()`` adds 't').
    """
    joined: Set[str] = set()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in _JOIN_METHODS:
            continue
        receiver = node.func.value
        if isinstance(receiver, ast.Attribute):
            joined.add(receiver.attr)
        elif isinstance(receiver, ast.Name):
            joined.add(receiver.id)
    return joined


def _global_names(function: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


def _finding(module: ModuleSource, scope: str, call: ast.Call, factory: str,
             name: Optional[str], target: str) -> Finding:
    return Finding(
        checker="resource-join",
        path=module.relpath,
        line=call.lineno,
        scope=scope,
        detail=f"{factory}:{name or '<dropped>'}",
        message=(
            f"{factory} constructed into {target} has no "
            "join()/shutdown() call anywhere in this module"
        ),
        hint=(
            "join/shutdown it on a close path, use a 'with' block, "
            "or return it to transfer ownership"
        ),
    )


@register_checker("resource-join")
def check_resource_join(module: ModuleSource, context: LintContext) -> Iterator[Finding]:
    """Thread/pool constructions need a join/shutdown call in the module."""
    joined = _joined_bindings(module.tree)

    for function in module_functions(module.tree):
        declared_global = _global_names(function)
        for statement, call, factory in iter_bound_calls(function, _factory_name):
            binding, name = binding_of(statement, call)
            if binding in ("return", "escapes", "managed"):
                continue
            if binding == "attr":
                if name in joined:
                    continue
                target = f"self.{name}"
            elif binding == "local":
                if name in joined:
                    continue
                if name in declared_global:
                    # ``global _shared_pool; _shared_pool = Pool(...)`` with
                    # no shutdown call anywhere: a process-lifetime leak.
                    target = f"module global '{name}'"
                else:
                    escapes, rebound = local_escapes(function, name, statement)
                    if escapes and rebound is None:
                        continue
                    if rebound is not None and rebound in joined:
                        continue
                    target = f"local '{name}'"
            else:
                target = "<dropped>"
            yield _finding(module, function.name, call, factory, name, target)

    # Module-level constructions: a top-level ``POOL = ThreadPoolExecutor()``.
    for statement in module.tree.body:
        if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
            continue
        for call in ast.walk(statement):
            if not isinstance(call, ast.Call):
                continue
            factory = _factory_name(call)
            if factory is None:
                continue
            binding, name = binding_of(statement, call)
            if name is not None and name in joined:
                continue
            yield _finding(module, "<module>", call, factory, name,
                           f"module global '{name}'" if name else "<dropped>")
