"""Checker-plugin registry and the parsed-module model checkers consume.

Mirrors the decorator style of :mod:`repro.api.registry`: each checker
registers under a string id and receives a :class:`ModuleSource` (one parsed
file) plus the shared :class:`LintContext`::

    @register_checker("lock-discipline")
    def check_locks(module: ModuleSource, context: LintContext):
        yield Finding(...)

Checkers are pure functions over the AST — no imports of the checked code,
no execution — so ``repro lint`` is safe to run on any tree and fast enough
for CI (stdlib ``ast`` only).

Source annotations
------------------

Two comment conventions extend the built-in per-class/per-function
registries without touching checker code:

``# guarded-by: <lock>``
    On an attribute assignment line (``self._x = ...  # guarded-by: _idle``)
    declares the attribute lock-guarded for the enclosing class.

``# oracle: <reference>``
    On (or immediately above) a ``def`` line declares the function a gated
    fast path whose equivalence oracle is ``<reference>``; the
    oracle-coverage checker then requires a test mentioning both names.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_ORACLE = re.compile(r"#\s*oracle:\s*([\w.]+)")


@dataclass
class ModuleSource:
    """One parsed source file handed to every checker."""

    path: Path  # absolute
    relpath: str  # repository-relative, forward slashes (finding identity)
    source: str
    tree: ast.Module
    #: line number -> lock name from ``# guarded-by:`` comments.
    guarded_by_lines: Dict[int, str] = field(default_factory=dict)
    #: line number -> reference name from ``# oracle:`` comments.
    oracle_lines: Dict[int, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, relpath: str) -> "ModuleSource":
        source = Path(path).read_text()
        tree = ast.parse(source, filename=str(path))
        guarded: Dict[int, str] = {}
        oracles: Dict[int, str] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _GUARDED_BY.search(line)
            if match:
                guarded[lineno] = match.group(1)
            match = _ORACLE.search(line)
            if match:
                oracles[lineno] = match.group(1)
        return cls(
            path=Path(path),
            relpath=relpath,
            source=source,
            tree=tree,
            guarded_by_lines=guarded,
            oracle_lines=oracles,
        )

    def oracle_for(self, node: ast.AST) -> Optional[str]:
        """The ``# oracle:`` reference for a ``def``, if annotated.

        Accepted positions: any line of the signature (``def`` line through
        the first body statement) or the line immediately above the ``def``
        (above its decorators, if any).
        """
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        first = node.decorator_list[0].lineno if node.decorator_list else node.lineno
        body_start = node.body[0].lineno if node.body else node.lineno + 1
        for lineno in range(first - 1, body_start):
            if lineno in self.oracle_lines:
                return self.oracle_lines[lineno]
        return None


@dataclass
class LintContext:
    """Cross-file state shared by every checker in one run."""

    root: Path
    #: ``tests/*.py`` path -> source text; empty when no tests dir exists
    #: (an installed package) — test-corpus checkers then skip quietly.
    test_sources: Dict[str, str] = field(default_factory=dict)
    #: True when the run could locate a tests directory at all.
    has_tests: bool = False


#: A checker maps (module, context) to an iterable of findings.
Checker = Callable[[ModuleSource, LintContext], Iterable[Finding]]


class CheckerRegistry:
    """Checker id -> callable mapping with decorator registration."""

    def __init__(self) -> None:
        self._checkers: Dict[str, Checker] = {}

    def register(self, checker_id: str, *, replace: bool = False) -> Callable[[Checker], Checker]:
        """Decorator registering a checker under ``checker_id``."""
        key = checker_id.lower()

        def decorator(checker: Checker) -> Checker:
            if key in self._checkers and not replace:
                raise ValueError(f"checker {key!r} is already registered")
            self._checkers[key] = checker
            return checker

        return decorator

    def names(self) -> List[str]:
        """Registered checker ids, in registration order."""
        return list(self._checkers)

    def __contains__(self, checker_id: str) -> bool:
        return checker_id.lower() in self._checkers

    def get(self, checker_id: str) -> Checker:
        key = checker_id.lower()
        if key not in self._checkers:
            raise KeyError(f"unknown checker {key!r}; options: {self.names()}")
        return self._checkers[key]

    def run(
        self,
        module: ModuleSource,
        context: LintContext,
        only: Optional[Iterable[str]] = None,
    ) -> List[Finding]:
        """Run (a subset of) the registered checkers over one module."""
        selected: Tuple[str, ...] = tuple(only) if only is not None else tuple(self._checkers)
        findings: List[Finding] = []
        for checker_id in selected:
            findings.extend(self.get(checker_id)(module, context))
        return findings


#: The default registry used by the runner and the CLI.
CHECKERS = CheckerRegistry()

register_checker = CHECKERS.register
