"""Order-sensitive reduction checker: the PR 4 bit-identity bug class.

``array.sum(axis=1)`` on a C-ordered array and on an F-ordered (or sliced,
or transposed) view of the same values walks memory in different orders,
and float addition is not associative — the results differ in the last
ulp.  Harmless almost everywhere, fatal in the gated fast-path modules
whose contract is *bit-identical* output against a dense oracle: PR 4
shipped exactly this bug (an ``axis=1`` sum over a mask-sliced matrix
inside the PPR frontier batcher).

This checker flags ``<expr>.sum(axis=...)``, ``np.sum(<expr>, axis=...)``
and ``np.add.reduce(<expr>, axis=...)`` when ``<expr>`` is *lexically* a
slice (``Subscript``), a transpose (``.T`` / ``.transpose()`` /
``np.transpose``), or a ``ravel``/``reshape`` view — shapes whose memory
order depends on the producer — unless the operand is pinned on the spot
with ``np.ascontiguousarray``/``np.asfortranarray``.

Scope is deliberately narrow: only the gated modules listed in
:data:`GATED_MODULES` (plus any module carrying the
``# repro-lint: order-sensitive`` pragma, used by the fixture corpus) are
checked, because outside the bit-identity contract the pattern is fine.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.registry import LintContext, ModuleSource, register_checker

#: Repository-relative suffixes of the bit-identity-gated fast-path modules.
GATED_MODULES: Tuple[str, ...] = (
    "repro/ppr/batch.py",
    "repro/sampling/subgraph.py",
    "repro/tensor/replay.py",
)

#: Module pragma that opts any file into this checker (fixtures use it).
GATE_PRAGMA = "repro-lint: order-sensitive"

_PIN_FUNCTIONS = frozenset({"ascontiguousarray", "asfortranarray"})
_VIEW_METHODS = frozenset({"transpose", "ravel", "reshape", "swapaxes"})


def _is_gated(module: ModuleSource) -> bool:
    normalized = module.relpath.replace("\\", "/")
    if any(normalized.endswith(suffix) for suffix in GATED_MODULES):
        return True
    return GATE_PRAGMA in module.source


def _callee_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _has_axis(node: ast.Call) -> bool:
    return any(keyword.arg == "axis" for keyword in node.keywords)


def _reduction_operand(node: ast.Call) -> Optional[ast.AST]:
    """The array being reduced, for the three reduction spellings."""
    if not _has_axis(node):
        return None
    name = _callee_name(node)
    if name == "sum" and isinstance(node.func, ast.Attribute):
        receiver = node.func.value
        # ``np.sum(x, axis=...)`` — receiver is the numpy module, operand
        # is the first argument; ``x.sum(axis=...)`` — receiver IS the
        # operand.  Disambiguate on whether positional args exist.
        if isinstance(receiver, ast.Name) and receiver.id in ("np", "numpy") and node.args:
            return node.args[0]
        return receiver
    if name == "reduce" and isinstance(node.func, ast.Attribute):
        inner = node.func.value  # np.add.reduce -> ``np.add``
        if isinstance(inner, ast.Attribute) and inner.attr == "add" and node.args:
            return node.args[0]
    return None


def _is_pinned(operand: ast.AST) -> bool:
    """``np.ascontiguousarray(...)`` / ``np.asfortranarray(...)`` wrapper."""
    return (
        isinstance(operand, ast.Call)
        and _callee_name(operand) in _PIN_FUNCTIONS
    )


def _order_sensitive_shape(operand: ast.AST) -> Optional[str]:
    """Why the operand's memory order is producer-dependent, or None."""
    if isinstance(operand, ast.Subscript):
        return "sliced"
    if isinstance(operand, ast.Attribute) and operand.attr == "T":
        return "transposed"
    if isinstance(operand, ast.Call):
        name = _callee_name(operand)
        if name in _VIEW_METHODS or name == "transpose":
            return f"viewed via {name}()"
    return None


@register_checker("order-sensitive-reduction")
def check_order_sensitive_reductions(
    module: ModuleSource, context: LintContext
) -> Iterator[Finding]:
    """Axis reductions over slices/views in gated modules must pin order."""
    if not _is_gated(module):
        return
    scope_stack: List[str] = []

    def visit(node: ast.AST) -> Iterator[Finding]:
        pushed = False
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            scope_stack.append(node.name)
            pushed = True
        try:
            if isinstance(node, ast.Call):
                operand = _reduction_operand(node)
                if operand is not None and not _is_pinned(operand):
                    reason = _order_sensitive_shape(operand)
                    if reason is not None:
                        scope = ".".join(scope_stack) or "<module>"
                        expression = ast.unparse(operand)
                        if len(expression) > 60:
                            expression = expression[:57] + "..."
                        yield Finding(
                            checker="order-sensitive-reduction",
                            path=module.relpath,
                            line=node.lineno,
                            scope=scope,
                            detail=expression,
                            message=(
                                f"axis reduction over a {reason} operand "
                                f"({expression!r}) in a bit-identity-gated module — "
                                "the result depends on the operand's memory order"
                            ),
                            hint=(
                                "pin the layout with np.ascontiguousarray(...) or "
                                "np.asfortranarray(...) before reducing, or baseline "
                                "the site if it IS the reference layout"
                            ),
                        )
            for child in ast.iter_child_nodes(node):
                yield from visit(child)
        finally:
            if pushed:
                scope_stack.pop()

    yield from visit(module.tree)
