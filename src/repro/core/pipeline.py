"""End-to-end BSG4Bot pipeline (Figure 5).

``fit`` runs the three phases of the paper:

1. **Pre-training** — an MLP classifier on node features defines the node
   similarity space (Section III-C).
2. **Biased subgraph construction** — one subgraph per labelled/required node
   combining PPR importance and classifier similarity (Section III-D); the
   subgraphs are built by the batched engine
   (:meth:`repro.sampling.BiasedSubgraphBuilder.build_batch`), stored and
   reused across epochs, and optionally cached on disk so repeated
   experiment scripts skip reconstruction entirely.
3. **Heterogeneous subgraph learning** — batched training of the
   :class:`BSG4BotModel` with early stopping on the validation split
   (Sections III-E and III-F).  Epochs run through the vectorized epoch
   engine: flat block-diagonal collation plus the store's cross-epoch
   batch cache (:func:`repro.core.trainer.train_subgraph_classifier`).

The class implements the shared :class:`repro.core.base.BotDetector`
interface so the experiment harness treats it like any baseline.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.base import BotDetector
from repro.core.config import BSG4BotConfig
from repro.core.metrics import accuracy_score, f1_score
from repro.core.model import BSG4BotModel
from repro.core.preclassifier import PretrainedClassifier
from repro.core.trainer import (
    TrainingHistory,
    predict_subgraph_proba,
    train_subgraph_classifier,
)
from repro.graph import HeteroGraph
from repro.obs.trace import phase_span
from repro.sampling import (
    BiasedSubgraphBuilder,
    PPRSubgraphBuilder,
    SubgraphStore,
)


class BSG4Bot(BotDetector):
    """The paper's detector: biased subgraphs + heterogeneous GNN."""

    name = "BSG4Bot"

    def __init__(self, config: Optional[BSG4BotConfig] = None) -> None:
        self.config = config or BSG4BotConfig()
        self.config.validate()
        self.preclassifier: Optional[PretrainedClassifier] = None
        self.model: Optional[BSG4BotModel] = None
        self.store: Optional[SubgraphStore] = None
        self.graph: Optional[HeteroGraph] = None
        self.history: Optional[TrainingHistory] = None
        self.phase_times: Dict[str, float] = {}
        self.builder: Optional[BiasedSubgraphBuilder] = None
        self._builder_graph: Optional[HeteroGraph] = None

    # ------------------------------------------------------------------
    # Architecture construction — shared by ``fit`` and artifact loading
    # (``repro.api.load_detector`` rebuilds the same modules, then restores
    # their weights instead of training).
    # ------------------------------------------------------------------
    def build_preclassifier(self, num_features: int) -> PretrainedClassifier:
        """Instantiate the (untrained) pre-classifier for ``num_features``."""
        self.preclassifier = PretrainedClassifier(
            in_features=num_features,
            hidden_dim=self.config.pretrain_hidden_dim,
            lr=self.config.pretrain_lr,
            epochs=self.config.pretrain_epochs,
            seed=self.config.seed,
        )
        return self.preclassifier

    def build_model(self, num_features: int, relation_names) -> BSG4BotModel:
        """Instantiate the (untrained) subgraph GNN for the given graph shape."""
        config = self.config
        self.model = BSG4BotModel(
            in_features=num_features,
            hidden_dim=config.hidden_dim,
            relation_names=relation_names,
            num_layers=config.num_layers,
            dropout=config.dropout,
            attention_dim=config.attention_dim,
            use_intermediate_concat=config.use_intermediate_concat,
            use_semantic_attention=config.use_semantic_attention,
            rng=np.random.default_rng(config.seed + 1),
        )
        return self.model

    # ------------------------------------------------------------------
    # Phase 1: pre-trained classifier
    # ------------------------------------------------------------------
    def _pretrain(self, graph: HeteroGraph, class_weight: Optional[np.ndarray]) -> np.ndarray:
        # phase_span accumulates; pop first to keep the historical
        # overwrite-on-refit semantics of this phase.
        self.phase_times.pop("pretrain", None)
        with phase_span("pretrain", self.phase_times, nodes=graph.num_nodes):
            self.build_preclassifier(graph.num_features)
            self.preclassifier.fit_graph(graph, class_weight=class_weight)
            embeddings = self.preclassifier.hidden_representations(graph.features)
        return embeddings

    # ------------------------------------------------------------------
    # Phase 2: biased subgraph construction
    # ------------------------------------------------------------------
    def _get_builder(self, graph: HeteroGraph) -> BiasedSubgraphBuilder:
        """Builder for ``graph``, cached per graph.

        Symmetrizing the relation adjacencies is the expensive part of
        builder construction; caching means a 1-node inference top-up no
        longer re-symmetrizes the whole graph.
        """
        if self.builder is not None and self._builder_graph is graph:
            return self.builder
        if self.preclassifier is None:
            raise RuntimeError("BSG4Bot must be pretrained before building subgraphs")
        embeddings = self.preclassifier.hidden_representations(graph.features)
        if self.config.use_biased_subgraphs:
            builder = BiasedSubgraphBuilder(
                graph,
                embeddings,
                k=self.config.subgraph_k,
                alpha=self.config.ppr_alpha,
                epsilon=self.config.ppr_epsilon,
                mix_lambda=self.config.mix_lambda,
            )
        else:
            builder = PPRSubgraphBuilder(
                graph,
                embeddings,
                k=self.config.subgraph_k,
                alpha=self.config.ppr_alpha,
                epsilon=self.config.ppr_epsilon,
            )
        self.builder = builder
        self._builder_graph = graph
        return builder

    #: Bump when subgraph selection logic changes so stale disk caches
    #: (which outlive code versions) are not silently reused.
    STORE_CACHE_VERSION = 1

    def _store_cache_path(self, builder: BiasedSubgraphBuilder) -> Optional[Path]:
        """Content-addressed cache file for the current graph + embeddings."""
        if not self.config.store_cache_dir:
            return None
        graph = builder.graph
        digest = hashlib.sha1()
        digest.update(builder.node_embeddings.tobytes())
        for name in graph.relation_names:
            relation = graph.relation(name)
            digest.update(name.encode())
            digest.update(relation.src.tobytes())
            digest.update(relation.dst.tobytes())
        signature = (
            f"v{self.STORE_CACHE_VERSION}|{graph.name}|{graph.num_nodes}|"
            f"{type(builder).__name__}|k={builder.k}|a={builder.alpha}|"
            f"e={builder.epsilon}|l={builder.mix_lambda}|"
            f"m={builder.candidate_multiplier}"
        )
        digest.update(signature.encode())
        directory = Path(self.config.store_cache_dir)
        directory.mkdir(parents=True, exist_ok=True)
        return directory / f"store-{digest.hexdigest()[:20]}.npz"

    def _build_subgraphs(
        self,
        graph: HeteroGraph,
        nodes: Iterable[int],
        phase: str = "subgraph_construction",
    ) -> SubgraphStore:
        with phase_span(phase, self.phase_times):
            builder = self._get_builder(graph)
            store = self.store
            cache_path = self._store_cache_path(builder)
            if (store is None or len(store) == 0) and cache_path is not None and cache_path.exists():
                try:
                    store = SubgraphStore.load(cache_path, graph)
                except Exception:
                    # A corrupt/unreadable cache entry must never block a run;
                    # rebuild and overwrite it below.
                    store = self.store
            nodes = [int(node) for node in nodes]
            already = len(store) if store is not None else 0
            store = builder.build_store(
                nodes, store=store, workers=self.config.subgraph_workers
            )
            store.cache_capacity = self.config.batch_cache_size
            # At most one (atomic) rewrite per construction call; inference
            # top-ups are included so the next run's predictions also hit cache.
            if cache_path is not None and len(store) > already:
                store.save(cache_path)
        return store

    def _ensure_subgraphs(self, nodes: Iterable[int]) -> None:
        """Build subgraphs for any nodes missing from the store (inference).

        Inference-time construction is accounted under
        ``phase_times["inference_construction"]`` so the training-phase
        runtime that Table III reports stays uninflated.
        """
        missing = [int(node) for node in nodes if self.store is None or node not in self.store]
        if not missing:
            return
        if self.graph is None or self.preclassifier is None:
            raise RuntimeError("BSG4Bot must be fitted before inference")
        self.store = self._build_subgraphs(
            self.graph, missing, phase="inference_construction"
        )

    # ------------------------------------------------------------------
    # Phase 3: heterogeneous subgraph learning
    # ------------------------------------------------------------------
    def fit(self, graph: HeteroGraph) -> TrainingHistory:
        config = self.config
        self.graph = graph
        self.store = None
        self.builder = None
        self._builder_graph = None
        rng = np.random.default_rng(config.seed)

        counts = graph.class_counts()
        total = sum(counts.values())
        class_weight = np.array(
            [total / max(2 * counts.get(0, 1), 1), total / max(2 * counts.get(1, 1), 1)]
        )

        self._pretrain(graph, class_weight)

        train_nodes = graph.train_indices()
        val_nodes = graph.val_indices()
        needed = np.concatenate([train_nodes, val_nodes])
        self.store = self._build_subgraphs(graph, needed)

        self.build_model(graph.num_features, graph.relation_names)
        # Snapshot selection breaks validation-score ties toward the lower
        # training loss (``snapshot_tie_break="loss"``): tiny validation
        # splits saturate immediately and keeping the first saturating epoch
        # would preserve a nearly untrained model (the Figure 9 transfer
        # study exposes this).
        with phase_span(
            "training", self.phase_times, train_nodes=int(train_nodes.size)
        ):
            history = train_subgraph_classifier(
                self.model,
                self.model.parameters(),
                self.store,
                train_nodes,
                lambda: self._score_nodes(val_nodes),
                class_weight=class_weight,
                lr=config.lr,
                weight_decay=config.weight_decay,
                batch_size=config.batch_size,
                max_epochs=config.max_epochs,
                min_epochs=config.min_epochs,
                patience=config.patience,
                rng=rng,
                snapshot_tie_break="loss",
            )
        history.extra["phase_times"] = dict(self.phase_times)
        self.history = history
        return history

    def _score_nodes(self, nodes: np.ndarray, metric: str = "f1+accuracy") -> float:
        if nodes.size == 0:
            return 0.0
        probabilities = self.predict_proba_nodes(nodes)
        predictions = probabilities.argmax(axis=1)
        truth = self.graph.labels[nodes]
        if metric == "f1":
            return f1_score(truth, predictions)
        if metric == "accuracy":
            return accuracy_score(truth, predictions)
        return 0.5 * (f1_score(truth, predictions) + accuracy_score(truth, predictions))

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_proba_nodes(self, nodes: np.ndarray, engine=None) -> np.ndarray:
        """Class probabilities for just ``nodes`` of the attached graph.

        This is the serve-many scoring path: only the requested centers'
        subgraphs are built (missing ones are topped up through the store
        cache), and batches run through the cross-epoch collated-batch LRU.
        Rows are aligned with the requested ``nodes`` order.  ``engine``
        optionally routes batches through a per-session
        ``repro.tensor.replay.ReplayEngine`` (bit-identical fast path).
        """
        if self.model is None or self.graph is None:
            raise RuntimeError("BSG4Bot must be fitted before predicting")
        nodes = np.asarray(nodes, dtype=np.int64)
        self._ensure_subgraphs(nodes)
        return predict_subgraph_proba(
            self.model, self.store, nodes, self.config.batch_size, engine=engine
        )

    def predict_proba(self, graph: HeteroGraph) -> np.ndarray:
        """Class probabilities for every node of ``graph``.

        When called with the training graph the cached subgraph store is
        reused; a different graph triggers inference-time subgraph
        construction against that graph (used by the generalization study).
        """
        if self.graph is not graph:
            self._prepare_transfer_graph(graph)
        nodes = np.arange(graph.num_nodes)
        return self.predict_proba_nodes(nodes)

    def invalidate_nodes(self, nodes, relations=None, feature_nodes=None) -> int:
        """Targeted invalidation after a graph mutation touching ``nodes``.

        Drops exactly the stored subgraphs that contain any touched node, so
        the next ``predict_proba_nodes`` call only rebuilds the invalidated
        centers.  Returns the number of dropped subgraphs.

        When the caller describes the mutation — ``relations`` naming the
        edge lists that changed, ``feature_nodes`` the nodes whose feature
        rows were rewritten — the cached builder is refreshed *per relation*
        instead of being thrown away: only the touched relations are
        re-symmetrized (and lose their prepared push operators), and only
        the touched embedding rows are recomputed.  Untouched relations keep
        their adjacency and push operator, which is what keeps
        high-frequency single-relation edge streams cheap.  A bare
        ``invalidate_nodes(nodes)`` keeps the conservative behaviour —
        full builder reset — for callers that cannot describe the mutation.
        """
        if relations is None and feature_nodes is None:
            self.builder = None
            self._builder_graph = None
        elif self.builder is not None and self._builder_graph is self.graph:
            feature_nodes = (
                np.asarray(list(feature_nodes), dtype=np.int64)
                if feature_nodes is not None
                else np.empty(0, dtype=np.int64)
            )
            if feature_nodes.size:
                self.builder.update_embeddings(
                    feature_nodes,
                    self.preclassifier.hidden_representations(
                        self.graph.features[feature_nodes]
                    ),
                )
            self.builder.refresh_relations(relations or [])
        if self.store is None:
            return 0
        return self.store.invalidate_nodes(nodes)

    def _prepare_transfer_graph(self, graph: HeteroGraph) -> None:
        """Point the pipeline at an unseen graph (cross-community evaluation).

        The subgraph store and builder are reset so construction runs against
        the transfer graph's structure and its pre-classifier embeddings.
        """
        if self.preclassifier is None or self.model is None:
            raise RuntimeError("BSG4Bot must be fitted before transfer evaluation")
        self.graph = graph
        self.store = SubgraphStore(graph)
        self.builder = None
        self._builder_graph = None

    def relation_importance(self) -> Dict[str, float]:
        """Relation weights from the last semantic-attention evaluation."""
        if self.model is None or self.model.last_relation_weights is None:
            return {}
        return {
            name: float(weight)
            for name, weight in zip(self.model.relation_names, self.model.last_relation_weights)
        }
