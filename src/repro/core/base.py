"""Common interface shared by BSG4Bot and every baseline detector."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.core.metrics import binary_classification_report
from repro.core.trainer import TrainingHistory
from repro.graph import HeteroGraph


class BotDetector:
    """Abstract bot detector with the fit / predict / evaluate protocol.

    Every model in the reproduction — BSG4Bot and the twelve baselines —
    implements this interface so the experiment harness can sweep over them
    uniformly (Table II, III, IV, Figure 7, Figure 9).
    """

    name: str = "detector"

    def fit(self, graph: HeteroGraph) -> TrainingHistory:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict_proba(self, graph: HeteroGraph) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict(self, graph: HeteroGraph) -> np.ndarray:
        """Hard label predictions (0 = human, 1 = bot) for every node."""
        return self.predict_proba(graph).argmax(axis=1)

    def evaluate(self, graph: HeteroGraph, mask: Optional[np.ndarray] = None) -> Dict[str, float]:
        """Accuracy/precision/recall/F1 on ``mask`` (default: the test split)."""
        if mask is None:
            mask = graph.test_mask
        indices = np.flatnonzero(mask)
        predictions = self.predict(graph)
        return binary_classification_report(graph.labels[indices], predictions[indices])

    def save(self, path) -> Path:
        """Persist this trained detector as an artifact directory.

        Delegates to :func:`repro.api.save_detector` (imported lazily — the
        api layer sits above ``core``); the artifact round-trips through
        :func:`repro.api.load_detector` without retraining.
        """
        from repro.api.artifact import save_detector

        return save_detector(self, path)

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(name={self.name!r})"
