"""The BSG4Bot heterogeneous subgraph learner (Section III-E).

The model consumes a :class:`repro.sampling.SubgraphBatch` — the contract is
identical whichever collation path produced it (the reference
``collate_subgraphs`` loop or the vectorized ``collate_many`` epoch engine):

1. node features are projected to a hidden space (Eq. 9),
2. for each relation, a stack of GCN layers runs on that relation's
   (block-diagonal) adjacency (Eq. 10),
3. the intermediate outputs of all layers are concatenated (Eq. 11) so the
   classifier sees both low- and high-frequency components,
4. per-relation representations are fused with semantic attention
   (Eq. 12-14) — or mean pooling in the ablation,
5. the rows of the start nodes are classified with a softmax head (Eq. 15).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.nn import Dropout, GCNConv, Linear, SemanticAttention
from repro.sampling.subgraph import SubgraphBatch
from repro.tensor import Module, Tensor, concat, leaky_relu


class BSG4BotModel(Module):
    """Per-relation GCN stack + intermediate concat + semantic attention."""

    def __init__(
        self,
        in_features: int,
        hidden_dim: int,
        relation_names: Sequence[str],
        num_layers: int = 2,
        num_classes: int = 2,
        dropout: float = 0.3,
        attention_dim: int = 16,
        use_intermediate_concat: bool = True,
        use_semantic_attention: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        rng = rng or np.random.default_rng(0)
        self.relation_names = list(relation_names)
        self.num_layers = num_layers
        self.use_intermediate_concat = use_intermediate_concat
        self.use_semantic_attention = use_semantic_attention

        self.input_transform = Linear(in_features, hidden_dim, rng)
        self.dropout = Dropout(dropout, rng)
        # One GCN stack per relation (Eq. 10).
        self.relation_convs: Dict[str, List[GCNConv]] = {
            name: [GCNConv(hidden_dim, hidden_dim, rng) for _ in range(num_layers)]
            for name in self.relation_names
        }
        final_dim = hidden_dim * (num_layers + 1) if use_intermediate_concat else hidden_dim
        self.semantic_attention = SemanticAttention(final_dim, attention_dim, rng)
        self.classifier = Linear(final_dim, num_classes, rng)
        self.final_dim = final_dim
        self.last_relation_weights: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _encode_relation(self, name: str, hidden: Tensor, adjacency: sp.spmatrix) -> Tensor:
        """Run one relation's GCN stack and combine layer outputs (Eq. 11)."""
        layers = self.relation_convs[name]
        outputs = [hidden]
        current = hidden
        for layer in layers:
            current = leaky_relu(layer(current, adjacency))
            current = self.dropout(current)
            outputs.append(current)
        if self.use_intermediate_concat:
            return concat(outputs, axis=1)
        return outputs[-1]

    # ------------------------------------------------------------------
    def node_embeddings(self, batch: SubgraphBatch) -> Tensor:
        """Fused final embeddings ``h_i^final`` for every node in the batch."""
        features = Tensor(batch.features)
        hidden = leaky_relu(self.input_transform(features))
        hidden = self.dropout(hidden)

        relation_outputs: List[Tensor] = []
        for name in self.relation_names:
            adjacency = batch.relation_adjacencies[name]
            relation_outputs.append(self._encode_relation(name, hidden, adjacency))

        if self.use_semantic_attention:
            fused, weights = self.semantic_attention(relation_outputs)
            self.last_relation_weights = weights.numpy().ravel()
        else:
            # Ablation: mean pooling across relations (Table V).
            fused = relation_outputs[0]
            for output in relation_outputs[1:]:
                fused = fused + output
            fused = fused * (1.0 / len(relation_outputs))
            self.last_relation_weights = np.full(
                len(relation_outputs), 1.0 / len(relation_outputs)
            )
        return fused

    def forward(self, batch: SubgraphBatch) -> Tensor:
        """Logits for the start (center) node of every subgraph in the batch.

        Note: the serving path may execute this forward through the
        capture-and-replay engine (``repro.tensor.replay``), which runs raw
        kernels instead of these ops; ``last_relation_weights`` is a debug
        side effect of the *eager* pass only and is not refreshed by a
        replayed forward.
        """
        fused = self.node_embeddings(batch)
        centers = fused[batch.center_positions]
        return self.classifier(centers)
