"""Binary classification metrics (bot = positive class), as reported in the paper."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[int, int, int, int]:
    """Return (true positives, false positives, true negatives, false negatives)."""
    y_true = np.asarray(y_true).astype(np.int64)
    y_pred = np.asarray(y_pred).astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    return tp, fp, tn, fn


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.size == 0:
        return float("nan")
    return float(np.mean(y_true == y_pred))


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    tp, fp, _, _ = confusion_counts(y_true, y_pred)
    if tp + fp == 0:
        return 0.0
    return tp / (tp + fp)


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    tp, _, _, fn = confusion_counts(y_true, y_pred)
    if tp + fn == 0:
        return 0.0
    return tp / (tp + fn)


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def binary_classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> Dict[str, float]:
    """Accuracy, precision, recall and F1 in one dictionary (percentages)."""
    return {
        "accuracy": 100.0 * accuracy_score(y_true, y_pred),
        "precision": 100.0 * precision_score(y_true, y_pred),
        "recall": 100.0 * recall_score(y_true, y_pred),
        "f1": 100.0 * f1_score(y_true, y_pred),
    }
