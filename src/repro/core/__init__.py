"""BSG4Bot core: the paper's primary contribution.

The package wires the substrates together: the pre-trained MLP classifier
(Section III-C), the biased subgraph construction (Section III-D), the
heterogeneous subgraph learner with intermediate-representation concatenation
and semantic attention (Section III-E), and the batched training/inference
loop (Section III-F).
"""

from repro.core.config import BSG4BotConfig
from repro.core.metrics import (
    accuracy_score,
    binary_classification_report,
    confusion_counts,
    f1_score,
    precision_score,
    recall_score,
)
from repro.core.preclassifier import PretrainedClassifier
from repro.core.model import BSG4BotModel
from repro.core.trainer import EarlyStopping, TrainingHistory, train_node_classifier
from repro.core.pipeline import BSG4Bot
from repro.core.base import BotDetector
from repro.core.serialization import load_module_state, save_module_state

__all__ = [
    "BSG4BotConfig",
    "BSG4Bot",
    "BSG4BotModel",
    "PretrainedClassifier",
    "BotDetector",
    "EarlyStopping",
    "TrainingHistory",
    "train_node_classifier",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_counts",
    "binary_classification_report",
    "save_module_state",
    "load_module_state",
]
