"""Pre-trained MLP classifier on user features (Section III-C).

A two-layer MLP is trained on the training + validation nodes only (Eq. 4).
Its hidden representations (Eq. 5) define the node similarity used by the
biased subgraph construction (Eq. 6), and its softmax output doubles as the
``MLP`` baseline in Table II.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.trainer import TrainingHistory, train_node_classifier
from repro.graph import HeteroGraph
from repro.nn import MLPBlock
from repro.tensor import Tensor, softmax


class PretrainedClassifier:
    """Two-layer MLP pre-classifier with hidden-representation access."""

    def __init__(
        self,
        in_features: int,
        hidden_dim: int = 32,
        num_classes: int = 2,
        lr: float = 0.01,
        epochs: int = 60,
        patience: int = 10,
        weight_decay: float = 5e-4,
        seed: int = 0,
    ) -> None:
        self.rng = np.random.default_rng(seed)
        self.model = MLPBlock(in_features, hidden_dim, num_classes, self.rng, dropout=0.2)
        self.lr = lr
        self.epochs = epochs
        self.patience = patience
        self.weight_decay = weight_decay
        self.history: Optional[TrainingHistory] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        train_indices: np.ndarray,
        val_indices: np.ndarray,
        class_weight: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train on the given indices; early-stop on the validation indices."""
        features_t = Tensor(features)

        def forward(training: bool) -> Tensor:
            if training:
                self.model.train()
            else:
                self.model.eval()
            return self.model(features_t)

        self.history = train_node_classifier(
            forward,
            self.model.parameters(),
            labels,
            train_indices,
            val_indices,
            lr=self.lr,
            weight_decay=self.weight_decay,
            max_epochs=self.epochs,
            patience=self.patience,
            class_weight=class_weight,
        )
        return self.history

    def fit_graph(self, graph: HeteroGraph, class_weight: Optional[np.ndarray] = None) -> TrainingHistory:
        """Convenience wrapper: train on the graph's train + val split.

        The paper trains the pre-classifier "on both the training and
        validation sets", reserving a slice of the training data to drive
        early stopping.
        """
        labeled = np.concatenate([graph.train_indices(), graph.val_indices()])
        rng = np.random.default_rng(0)
        permuted = rng.permutation(labeled)
        holdout = max(1, permuted.size // 5)
        val_indices = permuted[:holdout]
        train_indices = permuted[holdout:]
        return self.fit(graph.features, graph.labels, train_indices, val_indices, class_weight)

    # ------------------------------------------------------------------
    def hidden_representations(self, features: np.ndarray) -> np.ndarray:
        """Hidden vectors ``h_i^p`` of Eq. 5 for every node."""
        self.model.eval()
        return self.model.hidden(Tensor(features)).numpy()

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        self.model.eval()
        logits = self.model(Tensor(features))
        return softmax(logits, axis=-1).numpy()

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.predict_proba(features).argmax(axis=1)
