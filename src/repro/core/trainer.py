"""Training utilities: early stopping, history tracking, and the two shared
training loops — the full-graph loop used by the baselines and the
subgraph-batch epoch loop used by BSG4Bot and the plugin detectors."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.metrics import accuracy_score, f1_score
from repro.tensor import (
    Adam,
    Tensor,
    cross_entropy,
    fused_cross_entropy,
    inference_mode,
    softmax,
)


class EarlyStopping:
    """Stop training when the monitored score stops improving.

    Mirrors the paper's setup: "#Epochs refers to the number of training
    epochs before early stopping is triggered due to a lack of improvement on
    the validation set."
    """

    def __init__(self, patience: int = 10, min_delta: float = 1e-4) -> None:
        self.patience = patience
        self.min_delta = min_delta
        self.best_score: float = -np.inf
        self.best_epoch: int = -1
        self.counter: int = 0

    def update(self, score: float, epoch: int) -> bool:
        """Record a new score; return True when training should stop."""
        if score > self.best_score + self.min_delta:
            self.best_score = score
            self.best_epoch = epoch
            self.counter = 0
            return False
        self.counter += 1
        return self.counter >= self.patience


@dataclass
class TrainingHistory:
    """Per-epoch record of one training run."""

    train_losses: List[float] = field(default_factory=list)
    val_scores: List[float] = field(default_factory=list)
    epoch_times: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_score: float = float("-inf")
    total_time: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def num_epochs(self) -> int:
        return len(self.train_losses)

    @property
    def mean_epoch_time(self) -> float:
        return float(np.mean(self.epoch_times)) if self.epoch_times else 0.0


def _validation_score(logits: np.ndarray, labels: np.ndarray, indices: np.ndarray, metric: str) -> float:
    if indices.size == 0:
        return 0.0
    predictions = logits[indices].argmax(axis=1)
    truth = labels[indices]
    if metric == "f1":
        return f1_score(truth, predictions)
    if metric == "accuracy":
        return accuracy_score(truth, predictions)
    if metric == "f1+accuracy":
        return 0.5 * (f1_score(truth, predictions) + accuracy_score(truth, predictions))
    raise ValueError(f"unknown metric {metric!r}")


def train_node_classifier(
    forward: Callable[[bool], Tensor],
    parameters: List[Tensor],
    labels: np.ndarray,
    train_indices: np.ndarray,
    val_indices: np.ndarray,
    lr: float = 0.01,
    weight_decay: float = 5e-4,
    max_epochs: int = 200,
    patience: int = 10,
    class_weight: Optional[np.ndarray] = None,
    metric: str = "f1+accuracy",
    on_epoch_end: Optional[Callable[[int, float, float], None]] = None,
) -> TrainingHistory:
    """Generic full-graph training loop used by all baseline detectors.

    ``forward(training)`` must return the logits Tensor for *all* nodes; the
    loss is computed on ``train_indices`` and early stopping is driven by the
    validation score.  The best parameter snapshot is restored before return.
    """
    labels = np.asarray(labels, dtype=np.int64)
    train_indices = np.asarray(train_indices, dtype=np.int64)
    val_indices = np.asarray(val_indices, dtype=np.int64)
    optimizer = Adam(parameters, lr=lr)
    stopper = EarlyStopping(patience=patience)
    history = TrainingHistory()
    best_state = [p.data.copy() for p in parameters]
    start_time = time.perf_counter()

    for epoch in range(max_epochs):
        epoch_start = time.perf_counter()
        optimizer.zero_grad(set_to_none=False)
        logits = forward(True)
        if weight_decay:
            loss = fused_cross_entropy(
                logits[train_indices],
                labels[train_indices],
                weight=class_weight,
                parameters=parameters,
                weight_decay=weight_decay,
            )
        else:
            loss = cross_entropy(
                logits[train_indices], labels[train_indices], weight=class_weight
            )
        loss.backward()
        optimizer.step()

        eval_logits = forward(False).numpy()
        score = _validation_score(eval_logits, labels, val_indices, metric)
        history.train_losses.append(loss.item())
        history.val_scores.append(score)
        history.epoch_times.append(time.perf_counter() - epoch_start)
        if on_epoch_end is not None:
            on_epoch_end(epoch, loss.item(), score)

        improved = score > stopper.best_score
        should_stop = stopper.update(score, epoch)
        if improved:
            best_state = [p.data.copy() for p in parameters]
        if should_stop:
            break

    for param, saved in zip(parameters, best_state):
        param.data = saved
    history.best_epoch = stopper.best_epoch
    history.best_val_score = stopper.best_score
    history.total_time = time.perf_counter() - start_time
    return history


def predict_subgraph_proba(
    model,
    store,
    nodes: np.ndarray,
    batch_size: int,
    num_classes: int = 2,
    engine=None,
) -> np.ndarray:
    """Class probabilities for ``nodes`` through the cached collation path.

    ``store.collate`` canonicalizes each batch to sorted-center order (that
    is what makes the cross-epoch cache hit), so every batch's output rows
    are scattered back to the chunk's requested order before returning.
    Callers must ensure the store already holds a subgraph for every node.

    ``engine`` (a ``repro.tensor.replay.ReplayEngine``) routes each batch
    through the capture-and-replay fast path; it is bit-identical to the
    eager forward by contract.  Without one, the eager forward runs under
    ``inference_mode`` so no autograd graph is built.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    model.eval()
    outputs = np.zeros((nodes.size, num_classes))
    for start in range(0, nodes.size, batch_size):
        chunk = nodes[start : start + batch_size]
        batch = store.collate(chunk)
        if engine is not None:
            probabilities = engine.forward_proba(model, batch)
        else:
            with inference_mode():
                probabilities = softmax(model(batch), axis=-1).numpy()
        outputs[start : start + chunk.size][np.argsort(chunk, kind="stable")] = (
            probabilities
        )
    return outputs


def train_subgraph_classifier(
    model,
    parameters: List[Tensor],
    store,
    train_nodes: np.ndarray,
    score_fn: Callable[[], float],
    *,
    class_weight: Optional[np.ndarray] = None,
    lr: float = 0.01,
    weight_decay: float = 5e-4,
    batch_size: int = 64,
    max_epochs: int = 100,
    min_epochs: int = 1,
    patience: int = 10,
    rng: Optional[np.random.Generator] = None,
    snapshot_tie_break: str = "none",
) -> TrainingHistory:
    """Epoch loop over a :class:`repro.sampling.SubgraphStore` (Section III-F).

    Every epoch iterates shuffled collated batches through the store's
    cross-epoch batch cache (``store.batches``), computes the weighted
    cross-entropy on the batch centers plus an L2 penalty, and scores the
    validation split via ``score_fn`` (which should route through the same
    cached collation).  Early stopping triggers after ``patience`` epochs
    without improvement, but never before ``min_epochs`` — with tiny
    validation sets the score can plateau immediately.

    ``snapshot_tie_break`` selects which parameters are restored at the end:

    * ``"none"`` — the first epoch reaching the best validation score.
    * ``"loss"`` — among equal validation scores, the epoch with the lowest
      training loss.  Tiny validation splits saturate their score within a
      few gradient steps, and keeping the *first* saturating epoch preserves
      a nearly untrained model that generalizes poorly (the Figure 9
      transfer study exposes this).
    """
    if snapshot_tie_break not in ("none", "loss"):
        raise ValueError("snapshot_tie_break must be 'none' or 'loss'")
    tie_break_on_loss = snapshot_tie_break == "loss"
    train_nodes = np.asarray(train_nodes, dtype=np.int64)
    # Shuffled multi-batch epochs essentially never repeat a batch
    # membership, so inserting them would only thrash the store's LRU (and
    # evict the validation batches that DO recur every epoch).  Only the
    # single-batch regime — where every epoch is the same membership — goes
    # through the cache; larger epochs use the flat path directly.
    cache_training_batches = train_nodes.size <= batch_size
    optimizer = Adam(parameters, lr=lr)
    stopper = EarlyStopping(patience=patience)
    history = TrainingHistory()
    best_state = [p.data.copy() for p in parameters]
    best_key = (-np.inf, np.inf)
    best_epoch = -1
    start_time = time.perf_counter()

    for epoch in range(max_epochs):
        epoch_start = time.perf_counter()
        model.train()
        epoch_losses = []
        for batch in store.batches(
            train_nodes, batch_size, rng=rng, use_cache=cache_training_batches
        ):
            optimizer.zero_grad(set_to_none=False)
            logits = model(batch)
            # Fused CE + L2: bit-identical to the composed
            # ``cross_entropy(...) + l2_penalty(...)`` graph, two nodes
            # instead of ~10 + 3 per parameter.
            loss = fused_cross_entropy(
                logits,
                batch.labels,
                weight=class_weight,
                parameters=parameters,
                weight_decay=weight_decay,
            )
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())

        score = score_fn()
        mean_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
        history.train_losses.append(mean_loss)
        history.val_scores.append(score)
        history.epoch_times.append(time.perf_counter() - epoch_start)

        if tie_break_on_loss:
            key = (score, -mean_loss)
            if key > best_key:
                best_key = key
                best_epoch = epoch
                best_state = [p.data.copy() for p in parameters]
        elif score > stopper.best_score:
            best_state = [p.data.copy() for p in parameters]
        should_stop = stopper.update(score, epoch)
        if should_stop and epoch + 1 >= min(min_epochs, max_epochs):
            break

    for param, saved in zip(parameters, best_state):
        param.data = saved
    history.best_epoch = best_epoch if tie_break_on_loss else stopper.best_epoch
    history.best_val_score = stopper.best_score
    history.total_time = time.perf_counter() - start_time
    return history
