"""Training utilities: early stopping, history tracking, full-graph training loop."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.metrics import accuracy_score, f1_score
from repro.tensor import Adam, Tensor, cross_entropy, l2_penalty


class EarlyStopping:
    """Stop training when the monitored score stops improving.

    Mirrors the paper's setup: "#Epochs refers to the number of training
    epochs before early stopping is triggered due to a lack of improvement on
    the validation set."
    """

    def __init__(self, patience: int = 10, min_delta: float = 1e-4) -> None:
        self.patience = patience
        self.min_delta = min_delta
        self.best_score: float = -np.inf
        self.best_epoch: int = -1
        self.counter: int = 0

    def update(self, score: float, epoch: int) -> bool:
        """Record a new score; return True when training should stop."""
        if score > self.best_score + self.min_delta:
            self.best_score = score
            self.best_epoch = epoch
            self.counter = 0
            return False
        self.counter += 1
        return self.counter >= self.patience


@dataclass
class TrainingHistory:
    """Per-epoch record of one training run."""

    train_losses: List[float] = field(default_factory=list)
    val_scores: List[float] = field(default_factory=list)
    epoch_times: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_score: float = float("-inf")
    total_time: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def num_epochs(self) -> int:
        return len(self.train_losses)

    @property
    def mean_epoch_time(self) -> float:
        return float(np.mean(self.epoch_times)) if self.epoch_times else 0.0


def _validation_score(logits: np.ndarray, labels: np.ndarray, indices: np.ndarray, metric: str) -> float:
    if indices.size == 0:
        return 0.0
    predictions = logits[indices].argmax(axis=1)
    truth = labels[indices]
    if metric == "f1":
        return f1_score(truth, predictions)
    if metric == "accuracy":
        return accuracy_score(truth, predictions)
    if metric == "f1+accuracy":
        return 0.5 * (f1_score(truth, predictions) + accuracy_score(truth, predictions))
    raise ValueError(f"unknown metric {metric!r}")


def train_node_classifier(
    forward: Callable[[bool], Tensor],
    parameters: List[Tensor],
    labels: np.ndarray,
    train_indices: np.ndarray,
    val_indices: np.ndarray,
    lr: float = 0.01,
    weight_decay: float = 5e-4,
    max_epochs: int = 200,
    patience: int = 10,
    class_weight: Optional[np.ndarray] = None,
    metric: str = "f1+accuracy",
    on_epoch_end: Optional[Callable[[int, float, float], None]] = None,
) -> TrainingHistory:
    """Generic full-graph training loop used by all baseline detectors.

    ``forward(training)`` must return the logits Tensor for *all* nodes; the
    loss is computed on ``train_indices`` and early stopping is driven by the
    validation score.  The best parameter snapshot is restored before return.
    """
    labels = np.asarray(labels, dtype=np.int64)
    train_indices = np.asarray(train_indices, dtype=np.int64)
    val_indices = np.asarray(val_indices, dtype=np.int64)
    optimizer = Adam(parameters, lr=lr)
    stopper = EarlyStopping(patience=patience)
    history = TrainingHistory()
    best_state = [p.data.copy() for p in parameters]
    start_time = time.perf_counter()

    for epoch in range(max_epochs):
        epoch_start = time.perf_counter()
        optimizer.zero_grad()
        logits = forward(True)
        loss = cross_entropy(logits[train_indices], labels[train_indices], weight=class_weight)
        if weight_decay:
            loss = loss + l2_penalty(parameters, weight_decay)
        loss.backward()
        optimizer.step()

        eval_logits = forward(False).numpy()
        score = _validation_score(eval_logits, labels, val_indices, metric)
        history.train_losses.append(loss.item())
        history.val_scores.append(score)
        history.epoch_times.append(time.perf_counter() - epoch_start)
        if on_epoch_end is not None:
            on_epoch_end(epoch, loss.item(), score)

        improved = score > stopper.best_score
        should_stop = stopper.update(score, epoch)
        if improved:
            best_state = [p.data.copy() for p in parameters]
        if should_stop:
            break

    for param, saved in zip(parameters, best_state):
        param.data = saved
    history.best_epoch = stopper.best_epoch
    history.best_val_score = stopper.best_score
    history.total_time = time.perf_counter() - start_time
    return history
