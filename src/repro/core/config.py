"""Configuration for the BSG4Bot pipeline and its ablation switches."""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional


@dataclass
class BSG4BotConfig:
    """Hyper-parameters of BSG4Bot.

    The defaults follow the paper where stated (lambda = 0.5 in Eq. 8,
    two GNN layers, leaky-ReLU activations, dropout + early stopping) and use
    laptop-scale values elsewhere.  The three ``use_*`` switches implement the
    ablations of Table V.

    Every construction path validates: building an instance directly, through
    :meth:`with_overrides`, or from a dict (:meth:`from_dict`) raises
    ``ValueError`` on out-of-range values and names the offending field, so a
    bad hyper-parameter fails at configuration time rather than mid-training.
    """

    # Pre-trained classifier (Section III-C).
    pretrain_hidden_dim: int = 32
    pretrain_epochs: int = 60
    pretrain_lr: float = 0.01

    # Biased subgraph construction (Section III-D).
    subgraph_k: int = 16
    ppr_alpha: float = 0.15
    ppr_epsilon: float = 1e-4
    mix_lambda: float = 0.5
    use_biased_subgraphs: bool = True  # False -> PPR-only subgraphs (Table V)
    subgraph_workers: int = 1  # >1 shards batched construction over processes
    store_cache_dir: Optional[str] = None  # reuse stores across experiment runs

    # Heterogeneous subgraph learning (Section III-E).
    hidden_dim: int = 32
    num_layers: int = 2
    dropout: float = 0.3
    attention_dim: int = 16
    use_intermediate_concat: bool = True  # False -> last layer only (Table V)
    use_semantic_attention: bool = True  # False -> mean pooling (Table V)

    # Training (Section III-F).
    lr: float = 0.01
    weight_decay: float = 5e-4
    max_epochs: int = 100
    min_epochs: int = 12
    patience: int = 10
    batch_size: int = 64
    batch_cache_size: int = 128  # collated batches kept across epochs (0 disables)
    seed: int = 0

    def __post_init__(self) -> None:
        self.validate()

    @classmethod
    def field_names(cls) -> tuple:
        """Names of every configuration field, in declaration order."""
        return tuple(spec.name for spec in fields(cls))

    @classmethod
    def _check_known(cls, names) -> None:
        unknown = sorted(set(names) - set(cls.field_names()))
        if unknown:
            raise ValueError(
                f"unknown BSG4BotConfig field(s) {unknown}; "
                f"valid fields: {sorted(cls.field_names())}"
            )

    def with_overrides(self, **kwargs) -> "BSG4BotConfig":
        """Return a validated copy with the given fields replaced.

        Unknown field names raise ``ValueError`` listing the valid fields, so
        a typo'd hyper-parameter fails loudly instead of surfacing as a bare
        dataclass ``TypeError`` (or silently passing through).
        """
        self._check_known(kwargs)
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form of the config (JSON-serializable)."""
        return {name: getattr(self, name) for name in self.field_names()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BSG4BotConfig":
        """Rebuild a config saved by :meth:`to_dict`; unknown keys raise."""
        cls._check_known(data)
        return cls(**data)

    def validate(self) -> None:
        if self.subgraph_k <= 0:
            raise ValueError("subgraph_k must be positive")
        if not 0.0 <= self.mix_lambda <= 1.0:
            raise ValueError("mix_lambda must be in [0, 1]")
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if self.hidden_dim <= 0 or self.pretrain_hidden_dim <= 0:
            raise ValueError("hidden dimensions must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.batch_cache_size < 0:
            raise ValueError("batch_cache_size must be non-negative")
        if self.subgraph_workers <= 0:
            raise ValueError("subgraph_workers must be positive")
