"""Saving and loading model parameters.

Trained detectors hold their weights in :class:`repro.tensor.Module`
instances; these helpers persist a module's ``state_dict`` to a compressed
``.npz`` file so a trained BSG4Bot (or any baseline) can be reused without
retraining.

.. code-block:: python

    from repro.core.serialization import load_module_state, save_module_state

    detector.fit(graph)
    save_module_state(detector.model, "bsg4bot_weights.npz")
    ...
    save_module_state(detector.model, path)
    load_module_state(fresh_detector.model, path)
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.tensor import Module

PathLike = Union[str, Path]


def save_module_state(module: Module, path: PathLike) -> Path:
    """Write ``module.state_dict()`` to ``path`` as a compressed ``.npz``."""
    path = Path(path)
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state)
    return path


def load_module_state(module: Module, path: PathLike) -> Module:
    """Load parameters saved by :func:`save_module_state` into ``module``.

    The module must already have the same architecture (parameter names and
    shapes); mismatches raise ``KeyError`` / ``ValueError`` from
    :meth:`repro.tensor.Module.load_state_dict`.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no saved state at {path}")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module
