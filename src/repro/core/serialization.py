"""Saving and loading model parameters and detector-artifact manifests.

Trained detectors hold their weights in :class:`repro.tensor.Module`
instances; :func:`save_module_state` / :func:`load_module_state` persist a
module's ``state_dict`` to a compressed ``.npz`` file so a trained BSG4Bot
(or any baseline) can be reused without retraining.

.. code-block:: python

    from repro.core.serialization import load_module_state, save_module_state

    detector.fit(graph)
    save_module_state(detector.model, "bsg4bot_weights.npz")
    ...
    save_module_state(detector.model, path)
    load_module_state(fresh_detector.model, path)

On top of the raw weight files, :func:`write_manifest` / :func:`read_manifest`
implement the versioned manifest that ties a persistent detector artifact
together (config + model weights + pre-classifier + subgraph store — see
:mod:`repro.api.artifact`).  The manifest is plain JSON with a ``format`` tag
and ``format_version`` so future layout changes stay detectable; anything
unreadable raises :class:`ArtifactError` with the reason.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.tensor import Module

PathLike = Union[str, Path]

#: Tag + version stamped into every artifact manifest.
ARTIFACT_FORMAT = "repro-detector"
ARTIFACT_VERSION = 1

#: File name of the manifest inside an artifact directory.
MANIFEST_NAME = "manifest.json"


class ArtifactError(RuntimeError):
    """A detector artifact is missing, corrupted, or incompatible."""


def write_manifest(directory: PathLike, payload: Dict[str, Any]) -> Path:
    """Write the versioned artifact manifest into ``directory``.

    The ``format`` / ``format_version`` keys are stamped here so callers
    cannot produce an unversioned artifact by accident.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    # Stamp AFTER merging the payload: a payload echoing a loaded manifest
    # back through here must not smuggle in a stale format/version.
    manifest = dict(payload)
    manifest["format"] = ARTIFACT_FORMAT
    manifest["format_version"] = ARTIFACT_VERSION
    path = directory / MANIFEST_NAME
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return path


def read_manifest(directory: PathLike) -> Dict[str, Any]:
    """Load and validate the manifest of an artifact directory.

    Raises :class:`ArtifactError` when the manifest is missing, is not valid
    JSON, carries the wrong format tag, or was written by a newer layout
    version than this code understands.
    """
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    if not path.exists():
        raise ArtifactError(f"no detector artifact at {directory} (missing {MANIFEST_NAME})")
    try:
        with open(path) as handle:
            manifest = handle.read()
        manifest = json.loads(manifest)
    except (OSError, json.JSONDecodeError) as error:
        raise ArtifactError(f"corrupted artifact manifest at {path}: {error}") from error
    if not isinstance(manifest, dict) or manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"{path} is not a {ARTIFACT_FORMAT} manifest "
            f"(format={manifest.get('format') if isinstance(manifest, dict) else None!r})"
        )
    version = manifest.get("format_version")
    if not isinstance(version, int) or version < 1 or version > ARTIFACT_VERSION:
        raise ArtifactError(
            f"unsupported artifact version {version!r} at {path}; "
            f"this build reads versions 1..{ARTIFACT_VERSION}"
        )
    return manifest


def save_module_state(module: Module, path: PathLike) -> Path:
    """Write ``module.state_dict()`` to ``path`` as a compressed ``.npz``."""
    path = Path(path)
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state)
    return path


def load_module_state(module: Module, path: PathLike) -> Module:
    """Load parameters saved by :func:`save_module_state` into ``module``.

    The module must already have the same architecture (parameter names and
    shapes); mismatches raise ``KeyError`` / ``ValueError`` from
    :meth:`repro.tensor.Module.load_state_dict`.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no saved state at {path}")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module
