"""GraphSAGE convolution with mean aggregation."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.adjacency import row_normalized_adjacency
from repro.nn.dense import Linear
from repro.tensor import Module, Tensor, concat, spmm


class SAGEConv(Module):
    """GraphSAGE layer: concatenate self features with mean of neighbours.

    ``h_i' = W [h_i ; mean_{j in N(i)} h_j] + b``.  The neighbourhood mean is
    computed with a row-normalised adjacency, matching the "mean" aggregator
    of the original paper.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.linear = Linear(2 * in_features, out_features, rng)

    def forward(self, features: Tensor, adjacency: sp.spmatrix) -> Tensor:
        mean_adj = row_normalized_adjacency(adjacency, self_loops=False)
        neighbor_mean = spmm(mean_adj, features)
        combined = concat([features, neighbor_mean], axis=1)
        return self.linear(combined)
