"""Graph convolution layer (Kipf & Welling) over a precomputed adjacency."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.nn.dense import Linear
from repro.tensor import Module, Tensor, spmm


class GCNConv(Module):
    """One GCN layer: ``A_hat X W + b`` with a symmetric-normalised ``A_hat``.

    The adjacency is passed at call time (already normalised by the caller via
    :func:`repro.graph.normalized_adjacency`), so the same layer instance can
    be reused across many subgraphs, which is exactly how BSG4Bot trains on
    batches of biased subgraphs.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, rng, bias=bias)

    def forward(self, features: Tensor, adjacency: sp.spmatrix) -> Tensor:
        projected = self.linear(features)
        return spmm(adjacency, projected)
