"""Dense layers: linear projection, dropout and a small MLP block."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.tensor import Module, Parameter, Tensor, glorot_uniform, leaky_relu
from repro.tensor.tensor import dropout as dropout_op


class Linear(Module):
    """Affine projection ``x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter.from_tensor(glorot_uniform(rng, in_features, out_features))
        self.bias: Optional[Parameter] = (
            Parameter(np.zeros(out_features)) if bias else None
        )

    def forward(self, inputs: Tensor) -> Tensor:
        out = inputs @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout driven by the module's training flag."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        self.rate = rate
        self.rng = rng

    def forward(self, inputs: Tensor) -> Tensor:
        return dropout_op(inputs, self.rate, self.rng, training=self.training)


class MLPBlock(Module):
    """Two-layer perceptron with leaky-ReLU, the paper's default MLP shape."""

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
        negative_slope: float = 0.01,
    ) -> None:
        super().__init__()
        self.fc1 = Linear(in_features, hidden_features, rng)
        self.fc2 = Linear(hidden_features, out_features, rng)
        self.dropout = Dropout(dropout, rng)
        self.negative_slope = negative_slope

    def forward(self, inputs: Tensor) -> Tensor:
        hidden = leaky_relu(self.fc1(inputs), self.negative_slope)
        hidden = self.dropout(hidden)
        return self.fc2(hidden)

    def hidden(self, inputs: Tensor) -> Tensor:
        """Hidden representation used by the pre-trained classifier (Eq. 5)."""
        return leaky_relu(self.fc1(inputs), self.negative_slope)
