"""Semantic attention over per-relation representations (Eq. 12-14)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.nn.dense import Linear
from repro.tensor import Module, Parameter, Tensor, glorot_uniform, softmax, stack, tanh


class SemanticAttention(Module):
    """Fuse per-relation node embeddings with learned relation weights.

    For each relation ``r`` the importance is the mean over nodes of
    ``q . tanh(W h_i(r) + b)`` (Eq. 12); relation weights are the softmax of
    the importances (Eq. 13) and the final embedding is their weighted sum
    (Eq. 14).  The projection parameters are shared across relations.
    """

    def __init__(self, in_features: int, attention_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.project = Linear(in_features, attention_dim, rng)
        self.query = Parameter.from_tensor(glorot_uniform(rng, attention_dim, 1))

    def relation_weights(self, relation_embeddings: List[Tensor]) -> Tensor:
        """Softmax-normalised weight per relation, shape ``(R, 1)``."""
        importances = []
        for embedding in relation_embeddings:
            scores = tanh(self.project(embedding)) @ self.query  # (n, 1)
            importances.append(scores.mean(axis=0))  # (1,)
        stacked = stack(importances, axis=0)  # (R, 1)
        return softmax(stacked, axis=0)

    def forward(self, relation_embeddings: List[Tensor]) -> Tuple[Tensor, Tensor]:
        """Return the fused embedding and the relation weights used."""
        weights = self.relation_weights(relation_embeddings)
        fused = None
        for index, embedding in enumerate(relation_embeddings):
            weight = weights[index]  # (1,)
            term = embedding * weight
            fused = term if fused is None else fused + term
        return fused, weights
