"""Relational graph convolution (Schlichtkrull et al.) over multiple relations."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np
import scipy.sparse as sp

from repro.nn.dense import Linear
from repro.tensor import Module, Tensor, spmm


class RGCNConv(Module):
    """One RGCN layer: per-relation weights plus a self-loop transform.

    ``h_i' = W_0 h_i + sum_r A_hat_r (X W_r)`` where each ``A_hat_r`` is the
    normalised adjacency of relation ``r``.  This is the aggregation used by
    BotRGCN and by BSG4Bot's heterogeneous encoder when relations are fused
    with fixed (uniform) weights rather than semantic attention.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        relation_names: Sequence[str],
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.relation_names = list(relation_names)
        self.self_loop = Linear(in_features, out_features, rng)
        self.relation_linears = {
            name: Linear(in_features, out_features, rng, bias=False)
            for name in self.relation_names
        }

    def forward(self, features: Tensor, adjacencies: Dict[str, sp.spmatrix]) -> Tensor:
        out = self.self_loop(features)
        for name in self.relation_names:
            adjacency = adjacencies.get(name)
            if adjacency is None:
                continue
            projected = self.relation_linears[name](features)
            out = out + spmm(adjacency, projected)
        return out
