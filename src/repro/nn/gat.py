"""Graph attention layer (Velickovic et al.) with edge-level softmax."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.nn.dense import Linear
from repro.tensor import (
    Module,
    Parameter,
    Tensor,
    gather_rows,
    glorot_uniform,
    leaky_relu,
    scatter_add,
)


def _edge_index_with_self_loops(adjacency: sp.spmatrix, num_nodes: int) -> tuple:
    coo = adjacency.tocoo()
    src = np.concatenate([coo.row, np.arange(num_nodes)])
    dst = np.concatenate([coo.col, np.arange(num_nodes)])
    return src.astype(np.int64), dst.astype(np.int64)


class GATConv(Module):
    """Single-head graph attention convolution.

    Attention logits ``e_ij = LeakyReLU(a_src . h_i + a_dst . h_j)`` are
    normalised with a segment softmax over each destination node's incoming
    edges, then used to weight the aggregation.  Self-loops are always added
    so every node attends to itself.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        negative_slope: float = 0.2,
    ) -> None:
        super().__init__()
        self.linear = Linear(in_features, out_features, rng, bias=False)
        self.att_src = Parameter.from_tensor(glorot_uniform(rng, out_features, 1))
        self.att_dst = Parameter.from_tensor(glorot_uniform(rng, out_features, 1))
        self.bias = Parameter(np.zeros(out_features))
        self.negative_slope = negative_slope

    def forward(self, features: Tensor, adjacency: sp.spmatrix) -> Tensor:
        num_nodes = features.shape[0]
        src, dst = _edge_index_with_self_loops(adjacency, num_nodes)
        projected = self.linear(features)

        alpha_src = projected @ self.att_src  # (n, 1)
        alpha_dst = projected @ self.att_dst  # (n, 1)
        edge_logits = leaky_relu(
            gather_rows(alpha_src, src) + gather_rows(alpha_dst, dst),
            self.negative_slope,
        )

        # Numerically stable segment softmax over incoming edges of each dst.
        logits_np = edge_logits.data.ravel()
        seg_max = np.full(num_nodes, -np.inf)
        np.maximum.at(seg_max, dst, logits_np)
        seg_max[~np.isfinite(seg_max)] = 0.0
        shifted = edge_logits - Tensor(seg_max[dst][:, None])
        exp_logits = shifted.exp()
        denom = scatter_add(exp_logits, dst, num_nodes)  # (n, 1)
        attention = exp_logits / (gather_rows(denom, dst) + 1e-16)

        messages = gather_rows(projected, src) * attention
        aggregated = scatter_add(messages, dst, num_nodes)
        return aggregated + self.bias
