"""Neural network layers built on the autograd substrate.

These are the building blocks shared by BSG4Bot and every baseline model:
dense layers, graph convolutions (GCN / GAT / GraphSAGE / RGCN), and the
semantic attention layer that fuses per-relation representations (Eq. 12-14).
"""

from repro.nn.dense import Dropout, Linear, MLPBlock
from repro.nn.gcn import GCNConv
from repro.nn.gat import GATConv
from repro.nn.sage import SAGEConv
from repro.nn.rgcn import RGCNConv
from repro.nn.attention import SemanticAttention

__all__ = [
    "Linear",
    "Dropout",
    "MLPBlock",
    "GCNConv",
    "GATConv",
    "SAGEConv",
    "RGCNConv",
    "SemanticAttention",
]
