"""Serving benchmark core: micro-batched vs per-request concurrent scoring.

Shared by ``repro serve-bench`` (CLI) and ``benchmarks/bench_serving.py``
(which writes ``BENCH_serving.json`` for the perf trajectory).  The workload
is the motivating serving scenario: many concurrent clients, each asking for
a handful of single-node verdicts, against one fitted BSG4Bot.

Measured:

* **naive** — every client calls ``DetectionSession.score_nodes`` directly;
  each request pays its own collation + model forward (the session lock
  serializes them, as any correct shared-session deployment must).
* **micro-batched** — the same offered load through
  :class:`repro.serving.DetectionService`, whose batcher coalesces
  concurrent requests into collated waves.  A ladder over client counts
  gives throughput vs offered load plus p50/p99 latency and batch occupancy.

Correctness rides along: every recorded wave is replayed through a serial
``score_nodes`` call and must match **bit-identically** (the serving
contract — coalescing must never change what a wave computes), and
``DetectionService.close()`` must leave no dispatcher thread, no shared
process pool, and no shared-memory segments behind.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import api
from repro.datasets import load_benchmark
from repro.obs import Tracer
from repro.sampling import biased
from repro.serving.service import DetectionService


def _percentiles_ms(latencies: Sequence[float]) -> Dict[str, float]:
    values = np.asarray(list(latencies), dtype=np.float64) * 1000.0
    if values.size == 0:
        return {"p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
    return {
        "p50_ms": float(np.percentile(values, 50)),
        "p90_ms": float(np.percentile(values, 90)),
        "p99_ms": float(np.percentile(values, 99)),
        "mean_ms": float(values.mean()),
    }


def _drive_clients(
    node_lists: List[List[np.ndarray]],
    call: Callable[[np.ndarray], np.ndarray],
) -> Dict[str, object]:
    """Fire every client's request list concurrently; return wall + latencies."""
    clients = len(node_lists)
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors: List[BaseException] = []
    gate = threading.Barrier(clients + 1)

    def worker(index: int) -> None:
        gate.wait()
        for nodes in node_lists[index]:
            started = time.perf_counter()
            try:
                call(nodes)
            except BaseException as error:  # noqa: BLE001 — surfaced below
                errors.append(error)
                return
            latencies[index].append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    gate.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    if errors:
        raise errors[0]
    flat = [value for per_client in latencies for value in per_client]
    requests = len(flat)
    return {
        "clients": clients,
        "requests": requests,
        "wall_s": wall_s,
        "throughput_rps": requests / wall_s if wall_s > 0 else 0.0,
        **_percentiles_ms(flat),
    }


def _workload(
    rng: np.random.Generator,
    clients: int,
    requests_per_client: int,
    nodes_per_request: int,
    num_nodes: int,
) -> List[List[np.ndarray]]:
    return [
        [
            rng.integers(0, num_nodes, size=nodes_per_request).astype(np.int64)
            for _ in range(requests_per_client)
        ]
        for _ in range(clients)
    ]


def _best_of(repeats: int, func: Callable[[], object]) -> float:
    """Best-of-N CPU time (stable on shared benchmark runners)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.process_time()
        func()
        best = min(best, time.process_time() - started)
    return best


def _model_forward_comparison(
    detector, waves: List[np.ndarray], repeats: int = 5
) -> Dict[str, object]:
    """Per-wave model-forward time over the exact waves the service ran.

    Three paths over identical collated batches:

    * **eager** — the plain autograd forward (``softmax(model(batch))``),
      the path serving executed before the inference engine existed;
    * **inference** — the eager fallback under ``inference_mode`` (no
      autograd graph, still per-op Tensor dispatch);
    * **replay** — the capture-and-replay engine in steady state (every
      shape bucket already traced and compiled).

    All three must agree **bit-identically** on every wave; the timings are
    best-of-N CPU time for a full pass over the wave list.
    """
    from repro.tensor import softmax
    from repro.tensor.replay import ReplayEngine, eager_forward_proba

    model = detector.model
    store = detector.store
    batches = [store.collate(np.asarray(nodes, dtype=np.int64)) for nodes in waves]

    def eager_pass():
        model.eval()
        return [softmax(model(batch), axis=-1).numpy() for batch in batches]

    def inference_pass():
        return [eager_forward_proba(model, batch) for batch in batches]

    engine = ReplayEngine()

    def replay_pass():
        return [engine.forward_proba(model, batch) for batch in batches]

    reference = eager_pass()
    for left, right in zip(reference, inference_pass()):
        assert np.array_equal(left, right), "inference-mode forward diverged from eager"
    for left, right in zip(reference, replay_pass()):  # traces cold buckets
        assert np.array_equal(left, right), "replayed forward diverged from eager"
    cold = engine.consume_stats()
    for left, right in zip(reference, replay_pass()):  # steady state
        assert np.array_equal(left, right), "steady-state replay diverged from eager"
    steady = engine.consume_stats()
    assert not engine.disabled, "replay engine disabled itself during the benchmark"
    assert steady["replay_misses"] == 0, "steady-state pass still missed buckets"

    eager_s = _best_of(repeats, eager_pass)
    inference_s = _best_of(repeats, inference_pass)
    replay_s = _best_of(repeats, replay_pass)
    count = len(batches)
    return {
        "waves": count,
        "model_eager_wave_s": eager_s / count,
        "model_inference_wave_s": inference_s / count,
        "model_replay_wave_s": replay_s / count,
        "model_replay_speedup": eager_s / replay_s,
        "model_inference_speedup": eager_s / inference_s,
        "replay_misses_cold": cold["replay_misses"],
        "replay_hits_steady": steady["replay_hits"],
    }


def measure_tracing_overhead(
    detector,
    graph,
    *,
    num_requests: int = 100,
    max_batch_size: int = 64,
    repeats: int = 2,
    seed: int = 7,
) -> Dict[str, float]:
    """Traced-vs-untraced serving throughput (interleaved best-of-N).

    The same fixed request mix is driven sequentially through a fresh
    :class:`DetectionService` per arm — one with tracing disabled
    (``Tracer(0.0)``, env-independent), one tracing every request at
    ``sample_rate=1.0`` — alternating arms each repeat so machine noise
    hits both equally.  ``serving_trace_overhead_ratio`` is traced/untraced
    throughput; the perf gate holds its floor (tracing must stay cheap
    enough to leave on).
    """
    rng = np.random.default_rng(seed)
    requests = [
        rng.integers(0, graph.num_nodes, size=int(size))
        for size in rng.integers(1, 5, size=num_requests)
    ]
    # Pre-build every requested center: the comparison is about request
    # handling + span recording, not cold-store construction.
    detector.predict_proba_nodes(np.unique(np.concatenate(requests)))

    def run_arm(tracer: Tracer) -> float:
        service = DetectionService(
            detector,
            graph,
            max_batch_size=max_batch_size,
            max_wait_ms=0.0,
            release_pool_on_close=False,
            tracer=tracer,
            register_metrics=False,
        )
        try:
            for nodes in requests[:8]:  # warm the collation/replay caches
                service.score(nodes)
            started = time.perf_counter()
            for nodes in requests:
                service.score(nodes)
            return time.perf_counter() - started
        finally:
            service.close()

    best = {"untraced": float("inf"), "traced": float("inf")}
    for _ in range(max(repeats, 1)):
        best["untraced"] = min(best["untraced"], run_arm(Tracer(0.0)))
        best["traced"] = min(
            best["traced"], run_arm(Tracer(1.0, capacity=num_requests))
        )
    return {
        "serving_untraced_rps": num_requests / best["untraced"],
        "serving_traced_rps": num_requests / best["traced"],
        "serving_trace_overhead_ratio": best["untraced"] / best["traced"],
    }


def run_serving_benchmark(
    num_users: int = 200,
    clients_ladder: Sequence[int] = (1, 8, 32),
    requests_per_client: int = 16,
    nodes_per_request: int = 1,
    max_batch_size: int = 64,
    max_wait_ms: float = 2.0,
    seed: int = 0,
    min_speedup: Optional[float] = None,
    min_model_speedup: Optional[float] = None,
) -> Dict[str, object]:
    """Run the full serving benchmark; returns the JSON-ready result dict.

    ``min_speedup`` (when given) turns the headline number into an
    assertion: micro-batched throughput at the largest client count must be
    at least that multiple of the naive per-request path, else
    ``AssertionError`` — that is how the CI perf job keeps the serving win
    honest.  The wave bit-identity replay always asserts.
    ``min_model_speedup`` gates the capture-and-replay engine the same way:
    the steady-state per-wave model time over the ladder's recorded waves
    must beat the autograd eager forward by at least that factor.
    """
    clients_ladder = sorted(set(int(count) for count in clients_ladder))
    benchmark = load_benchmark("mgtab", num_users=num_users, tweets_per_user=8, seed=seed)
    graph = benchmark.graph
    detector = api.create_detector(
        {
            "name": "bsg4bot",
            "scale": None,
            "seed": seed,
            # Deliberately light: single-node serving cost is dominated by
            # per-call overhead (collation + the op-graph walk), which is
            # exactly what micro-batching amortizes; a heavier model shifts
            # cost into per-node numpy work that batches by itself and
            # understates the scheduling win this benchmark measures.
            "overrides": {
                "pretrain_epochs": 30,
                "pretrain_hidden_dim": 8,
                "hidden_dim": 8,
                "subgraph_k": 4,
                "max_epochs": 6,
                "min_epochs": 1,
                "patience": 3,
                "batch_size": max_batch_size,
            },
        }
    )
    train_started = time.perf_counter()
    detector.fit(graph)
    train_s = time.perf_counter() - train_started

    rng = np.random.default_rng(seed + 1)
    max_clients = clients_ladder[-1]
    workloads = {
        clients: _workload(
            rng, clients, requests_per_client, nodes_per_request, graph.num_nodes
        )
        for clients in clients_ladder
    }
    # Pre-build every requested center once so neither path pays subgraph
    # construction inside the timed window (the comparison is about request
    # handling, not cold-store build costs, which are identical either way).
    requested = np.unique(
        np.concatenate(
            [nodes for lists in workloads.values() for per in lists for nodes in [*per]]
        )
    )
    detector.predict_proba_nodes(requested)

    # ---- naive: per-request score_nodes through a shared session ----
    session = api.DetectionSession(detector, graph)
    try:
        naive = _drive_clients(workloads[max_clients], session.score_nodes)
    finally:
        session.close(release_pool=False)

    # ---- micro-batched ladder over offered load ----
    ladder: List[Dict[str, object]] = []
    bit_identical_waves = 0
    recorded_waves: List[np.ndarray] = []
    for clients in clients_ladder:
        record = clients == max_clients
        service = DetectionService(
            detector,
            graph,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            record_waves=True,
            release_pool_on_close=False,
        )
        try:
            entry = _drive_clients(workloads[clients], service.score)
            service.drain()
            snapshot = service.snapshot()
            entry.update(
                batch_occupancy=snapshot["batch_occupancy"],
                requests_per_wave=snapshot["requests_per_wave"],
                waves=snapshot["waves"],
                queue_wait_p99_ms=snapshot["queue_wait"]["p99_s"] * 1000.0,
                model_time=snapshot["model_time"],
                replay_hits=snapshot["replay_hits"],
                replay_misses=snapshot["replay_misses"],
            )
            ladder.append(entry)
            recorded_waves.extend(
                wave_nodes for wave_nodes, _, _ in service.wave_log
            )
            if record:
                # The serving bit-identity contract: every coalesced wave
                # replays exactly through a serial score_nodes call.
                replay = api.DetectionSession(detector, graph)
                try:
                    for wave_nodes, wave_probabilities, _ in service.wave_log:
                        reference = replay.score_nodes(wave_nodes)
                        assert np.array_equal(reference, wave_probabilities), (
                            "micro-batched wave diverged from serial scoring"
                        )
                        bit_identical_waves += 1
                finally:
                    replay.close(release_pool=False)
        finally:
            service.close()
        # Every rung's close() must tear its dispatcher down.  The rungs run
        # with release_pool_on_close=False (they share one detector, and the
        # worker pool is process-global), so the pool/segment checks come
        # after the explicit shutdown below.
        assert not service._thread.is_alive(), "dispatcher thread survived close()"

    # ---- tracing overhead: same service, tracer off vs sample=1.0 ----
    tracing = measure_tracing_overhead(
        detector, graph, max_batch_size=max_batch_size, seed=seed + 7
    )

    # The end-of-run teardown the acceptance criterion asks for: after the
    # shared pool is shut down, nothing may linger — no worker processes, no
    # shared-memory segments.  (A service owning the pool does this itself:
    # close() with the default release_pool_on_close=True calls the same
    # shutdown, covered by tests/test_serving_service.py.)
    biased.shutdown_shared_pool()
    assert biased._shared_pool is None, "shared pool survived shutdown"
    assert not biased._shared_payload_registry, "shared segments survived shutdown"

    # ---- per-wave model time: eager vs inference-mode vs replay ----
    # Measured over the exact waves the whole ladder executed (1-, 8- and
    # 32-client occupancies), in steady state, bit-identity asserted.
    model_forward = _model_forward_comparison(detector, recorded_waves)

    batched_at_max = ladder[-1]
    speedup = batched_at_max["throughput_rps"] / naive["throughput_rps"]
    result: Dict[str, object] = {
        "scale": {
            "benchmark": "mgtab",
            "num_users": num_users,
            "num_nodes": int(graph.num_nodes),
            "requests_per_client": requests_per_client,
            "nodes_per_request": nodes_per_request,
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
            "seed": seed,
        },
        "train_s": train_s,
        "naive": naive,
        "batched_ladder": ladder,
        "speedup_at_max_clients": speedup,
        "bit_identical_waves": bit_identical_waves,
        "model_forward": model_forward,
        "tracing": tracing,
    }
    if min_speedup is not None:
        assert speedup >= min_speedup, (
            f"micro-batched throughput at {max_clients} clients is only "
            f"{speedup:.2f}x the naive path (required >= {min_speedup:g}x)"
        )
    if min_model_speedup is not None:
        model_speedup = model_forward["model_replay_speedup"]
        assert model_speedup >= min_model_speedup, (
            f"replayed model forward is only {model_speedup:.2f}x the eager "
            f"path per wave (required >= {min_model_speedup:g}x)"
        )
    return result


def format_result(result: Dict[str, object]) -> str:
    """Human-readable summary (CLI + benchmark stdout)."""
    lines = []
    scale = result["scale"]
    naive = result["naive"]
    lines.append(
        f"graph: {scale['benchmark']} ({scale['num_nodes']} nodes), "
        f"{scale['nodes_per_request']} node(s)/request, "
        f"batch<={scale['max_batch_size']}, wait<={scale['max_wait_ms']}ms"
    )
    lines.append(
        f"naive   {naive['clients']:>3} clients: {naive['throughput_rps']:>8.1f} req/s   "
        f"p50 {naive['p50_ms']:>7.2f}ms  p99 {naive['p99_ms']:>7.2f}ms"
    )
    for entry in result["batched_ladder"]:
        lines.append(
            f"batched {entry['clients']:>3} clients: {entry['throughput_rps']:>8.1f} req/s   "
            f"p50 {entry['p50_ms']:>7.2f}ms  p99 {entry['p99_ms']:>7.2f}ms   "
            f"occupancy {entry['batch_occupancy']:.1f} rows/wave "
            f"({entry['waves']} waves)"
        )
    lines.append(
        f"speedup at {naive['clients']} clients: "
        f"{result['speedup_at_max_clients']:.2f}x "
        f"({result['bit_identical_waves']} waves replayed bit-identically)"
    )
    forward = result.get("model_forward")
    if forward:
        lines.append(
            f"model forward over {forward['waves']} waves: "
            f"eager {forward['model_eager_wave_s'] * 1e3:.3f}ms/wave, "
            f"inference {forward['model_inference_wave_s'] * 1e3:.3f}ms/wave, "
            f"replay {forward['model_replay_wave_s'] * 1e3:.3f}ms/wave "
            f"({forward['model_replay_speedup']:.2f}x vs eager)"
        )
    tracing = result.get("tracing")
    if tracing:
        lines.append(
            f"tracing overhead: {tracing['serving_untraced_rps']:.1f} req/s off, "
            f"{tracing['serving_traced_rps']:.1f} req/s at sample=1.0 "
            f"(ratio {tracing['serving_trace_overhead_ratio']:.3f})"
        )
    return "\n".join(lines)
