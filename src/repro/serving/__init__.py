"""``repro.serving`` — the online scoring service layer.

Built on :mod:`repro.api`: a :class:`DetectionService` accepts concurrent
score requests and streaming graph updates, coalesces the requests into
collated micro-batches (:class:`MicroBatcher`), sequences the updates
through an ordered :class:`DeltaLog` with read-your-writes guarantees, and
exposes serving telemetry (:class:`ServingMetrics`).

.. code-block:: python

    from repro.serving import DetectionService

    with DetectionService(detector, graph) as service:
        probabilities = service.score([17, 42, 108])       # any thread
        service.submit_update(edges_added={"followers": ([17], [42])})
        probabilities = service.score([17])                # sees the edge
        print(service.snapshot()["request_latency"]["p99_s"])
"""

from repro.serving.batcher import BatcherClosed, MicroBatcher, ScoreRequest
from repro.serving.bench import (
    format_result,
    measure_tracing_overhead,
    run_serving_benchmark,
)
from repro.serving.cluster import (
    ClusterHTTPServer,
    ClusterRequest,
    ShardPlan,
    ShardPlanError,
    ShardRouter,
    ShardSpec,
    plan_shards,
)
from repro.serving.ingest import DeltaLog, GraphDelta
from repro.serving.metrics import LatencyHistogram, ServingMetrics
from repro.serving.service import DetectionService, ServiceClosed

__all__ = [
    "BatcherClosed",
    "ClusterHTTPServer",
    "ClusterRequest",
    "DeltaLog",
    "DetectionService",
    "GraphDelta",
    "LatencyHistogram",
    "MicroBatcher",
    "ScoreRequest",
    "ServiceClosed",
    "ServingMetrics",
    "ShardPlan",
    "ShardPlanError",
    "ShardRouter",
    "ShardSpec",
    "format_result",
    "measure_tracing_overhead",
    "plan_shards",
    "run_serving_benchmark",
]
