"""``DetectionService``: the online scoring facade over ``repro.api``.

One service binds a fitted detector and a live graph behind three concurrent
surfaces:

* :meth:`DetectionService.score` / :meth:`DetectionService.submit` — score
  requests from any thread.  Concurrent requests are coalesced by the
  :class:`repro.serving.MicroBatcher` into collated waves, so N callers
  asking for one node each cost ~one pass through the store's batch LRU and
  one model forward instead of N.
* :meth:`DetectionService.submit_update` — streaming graph mutations enter
  the :class:`repro.serving.DeltaLog` (validated, sequenced, coalesced) and
  are applied through ``DetectionSession.apply_delta`` *between* scoring
  waves.  Read-your-writes holds: a score submitted after delta ``k`` is
  served at a log prefix ≥ ``k``.
* :meth:`DetectionService.snapshot` — serving telemetry (latency
  histograms, batch occupancy, cache/build counters) as one JSON-friendly
  dict.

Lifecycle: construct from a live detector or :meth:`from_artifact` (warm
start from a ``repro fit`` artifact directory), optionally
:meth:`warmup`, then :meth:`drain` / :meth:`close` (or use it as a context
manager).  ``close`` stops the dispatcher thread, closes the underlying
session, and releases the shared construction pool and every shared-memory
segment — a closed service leaves nothing running and nothing in
``/dev/shm``.

.. code-block:: python

    from repro.serving import DetectionService

    with DetectionService.from_artifact("artifacts/bsg4bot-mgtab") as service:
        probabilities = service.score([17, 42, 108])
        service.submit_update(edges_added={"followers": ([17], [42])})
        probabilities = service.score([17])      # sees the new edge
        print(service.snapshot()["batch_occupancy"])
"""

from __future__ import annotations

import threading

from repro.analysis.sanitizer import tracked_condition
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.api import DetectionSession, load_detector, read_manifest
from repro.core.base import BotDetector
from repro.graph import HeteroGraph
from repro.obs.registry import global_registry
from repro.obs.trace import ROOT_SPAN_ID, Trace, Tracer
from repro.serving.batcher import MicroBatcher, ScoreRequest
from repro.serving.ingest import DeltaLog
from repro.serving.metrics import ServingMetrics


class ServiceClosed(RuntimeError):
    """Raised when submitting work to a closed :class:`DetectionService`."""


class DetectionService:
    """Online scoring service: micro-batched scoring + ordered updates.

    A single daemon dispatcher thread owns the underlying
    :class:`repro.api.DetectionSession`: it pulls coalesced waves from the
    batcher, applies every pending delta before each wave, executes one
    ``score_nodes`` call per wave, and scatters result rows back to the
    per-request handles.  Callers only touch thread-safe queues.

    ``record_waves=True`` keeps a log of ``(wave_nodes, probabilities,
    delta_seq)`` tuples — the serving bit-identity contract is that each
    recorded wave replays exactly through a serial ``score_nodes`` call at
    the same graph state, which ``benchmarks/bench_serving.py`` asserts.
    """

    def __init__(
        self,
        detector: BotDetector,
        graph: HeteroGraph,
        *,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        adaptive_wait: bool = False,
        delta_max_pending: Optional[int] = None,
        delta_max_age_s: Optional[float] = None,
        release_pool_on_close: bool = True,
        record_waves: bool = False,
        autostart: bool = True,
        use_replay: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        register_metrics: bool = True,
    ) -> None:
        # ``use_replay`` passes through to the session's capture-and-replay
        # inference engine (None = the REPRO_REPLAY environment default).
        # ``delta_max_pending`` / ``delta_max_age_s`` set the delta log's
        # application watermark (None/None = apply eagerly when idle);
        # ``adaptive_wait`` arms the batcher's per-wave linger adaptation.
        # ``tracer`` arms request tracing (None consults REPRO_TRACE_*);
        # ``register_metrics=False`` leaves exposition to an owning router.
        self.session = DetectionSession(detector, graph, use_replay=use_replay)
        self.tracer = tracer if tracer is not None else Tracer.from_env()
        self.detector = detector
        self.graph = graph
        self.delta_log = DeltaLog(
            graph, max_pending=delta_max_pending, max_age_s=delta_max_age_s
        )
        self.batcher = MicroBatcher(
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            adaptive_wait=adaptive_wait,
        )
        self.metrics = ServingMetrics()
        self.wave_log: Optional[List[Tuple[np.ndarray, np.ndarray, int]]] = (
            [] if record_waves else None
        )
        self._release_pool_on_close = release_pool_on_close
        self._closed = False
        self._stop = threading.Event()
        self._idle = tracked_condition("DetectionService._idle")
        self._in_flight = 0  # guarded-by: _idle — waves currently executing
        # Request ledger (guarded by _idle): drain() waits for served ==
        # accepted, which also covers the window where a wave has been
        # popped from the batcher queue but not yet marked in-flight.
        self._accepted = 0  # guarded-by: _idle
        self._served = 0  # guarded-by: _idle
        # An exception raised while applying deltas from the idle loop
        # (should be impossible — deltas are validated at append — but a
        # swallowed failure must not silently serve stale subgraphs).
        self._delta_error: Optional[BaseException] = None
        self._started_at = time.monotonic()
        # Pull-model exposition: the global registry reads this service's
        # metrics at scrape time; nothing extra happens on the hot path.
        self._registry_key: Optional[str] = None
        if register_metrics:
            self._registry_key = f"service:{graph.name}:{id(self):x}"
            global_registry().register(
                self._registry_key,
                lambda: self.metrics.metric_families({"service": graph.name}),
            )
        self._thread = threading.Thread(
            target=self._dispatch_loop,
            name=f"repro-serving-{graph.name}",
            daemon=True,
        )
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(
        cls,
        path,
        graph: Optional[HeteroGraph] = None,
        **kwargs,
    ) -> "DetectionService":
        """Warm-start a service from a ``repro fit`` artifact directory.

        Without ``graph``, the artifact's recorded dataset provenance is
        replayed through :func:`repro.datasets.load_benchmark` (exactly what
        ``repro score`` does); the loaded subgraph store then serves its
        first requests without rebuilding anything.
        """
        if graph is None:
            manifest = read_manifest(path)
            dataset = manifest.get("dataset")
            if not dataset:
                raise ValueError(
                    "artifact has no dataset provenance; pass the serving "
                    "graph explicitly: DetectionService.from_artifact(path, graph=...)"
                )
            from repro.datasets import resolve_dataset_graph

            graph = resolve_dataset_graph(dataset)
        detector = load_detector(path, graph=graph)
        return cls(detector, graph, **kwargs)

    def start(self) -> None:
        """Start the dispatcher thread (no-op when already running)."""
        if self._closed:
            raise ServiceClosed("service is closed")
        if not self._thread.is_alive() and not self._stop.is_set():
            try:
                self._thread.start()
            except RuntimeError:
                pass  # raced a concurrent start(); the thread is running

    def warmup(self, nodes: Optional[Sequence[int]] = None) -> float:
        """Prime the serving caches; returns the elapsed seconds.

        Scores one batch synchronously through the session (bypassing the
        batcher), which builds the store's collation pack, fills the batch
        LRU with the warmed membership, and pays the first model forward —
        so the first real request doesn't.  Defaults to the first
        ``max_batch_size`` stored centers (an artifact-loaded store), else
        the first ``max_batch_size`` graph nodes.
        """
        start = time.perf_counter()
        if nodes is None:
            store = self.session.store
            if store is not None and len(store) > 0:
                nodes = store.nodes()[: self.batcher.max_batch_size]
            else:
                nodes = range(min(self.batcher.max_batch_size, self.graph.num_nodes))
        self.session.score_nodes(nodes)
        # Warmup's model forward must not masquerade as the first wave's
        # model time — drain the session counters into the void.
        self.session.consume_replay_stats()
        return time.perf_counter() - start

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def submit(
        self,
        nodes: Sequence[int],
        trace: Optional[Trace] = None,
        trace_parent: Optional[int] = None,
    ) -> ScoreRequest:
        """Enqueue a score request; returns a handle to block on.

        The handle's ``result(timeout)`` returns the probability rows in the
        requested node order; ``delta_seq`` on the resolved handle names the
        delta-log prefix the response was served at (read-your-writes: it is
        at least the log tail observed here at submit time).

        ``trace``/``trace_parent`` attach this request to a caller-owned
        trace (the router's fan-out path); without one, an armed
        ``self.tracer`` starts a service-scoped trace that the dispatcher
        finishes when the request resolves.

        Node ids are validated here, at submit time — like the delta log,
        the bad producer fails immediately instead of poisoning the innocent
        requests coalesced into the same wave.
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        nodes = np.asarray(
            nodes if isinstance(nodes, np.ndarray) else list(nodes)
        ).astype(np.int64).ravel()
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.graph.num_nodes):
            raise ValueError("node id out of range for the service graph")
        trace_owned = False
        if trace is None and self.tracer is not None:
            trace = self.tracer.start_trace(
                "score", attributes={"service": self.graph.name}
            )
            trace_owned = trace is not None
        # Enter the ledger before the queue: a request must never be
        # observable by the dispatcher without being counted as accepted,
        # or drain() could return between the pop and the execution.
        with self._idle:
            self._accepted += 1
        try:
            request = self.batcher.submit(
                nodes,
                barrier_seq=self.delta_log.tail_seq,
                trace=trace,
                trace_parent=trace_parent,
                trace_owned=trace_owned,
            )
        except BaseException:
            with self._idle:
                self._accepted -= 1
                self._idle.notify_all()
            raise
        self.metrics.increment("requests")
        return request

    def score(self, nodes: Sequence[int], timeout: Optional[float] = 60.0) -> np.ndarray:
        """Bot probabilities for ``nodes`` (blocking convenience wrapper)."""
        nodes = np.asarray(
            nodes if isinstance(nodes, np.ndarray) else list(nodes)
        ).astype(np.int64).ravel()
        if nodes.size == 0:
            return np.zeros((0, 2))
        return self.submit(nodes).result(timeout)

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------
    def submit_update(
        self,
        edges_added: Optional[Mapping[str, Tuple[Iterable[int], Iterable[int]]]] = None,
        features_changed: Optional[Mapping[int, Iterable[float]]] = None,
    ) -> int:
        """Enqueue a validated graph delta; returns its sequence number.

        The delta is applied between scoring waves; any score submitted
        after this call returns is served at a log prefix that includes it.
        Validation failures raise here, immediately, with nothing enqueued.
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        seq = self.delta_log.append(
            edges_added=edges_added, features_changed=features_changed
        )
        self.metrics.increment("deltas_enqueued")
        return seq

    def _apply_pending_deltas(self) -> int:
        """Drain and apply the pending delta prefix; returns deltas applied.

        While the dispatcher runs, **only the dispatcher thread** calls this
        (before each wave and from the idle loop) — single-writer discipline
        is what makes a wave's recorded ``delta_seq`` exact: nothing can
        apply a newer delta between the seq read and the wave's
        ``score_nodes`` call.  Other threads call it only when the
        dispatcher is not running (``drain``/``close`` on a stopped or
        never-started service).
        """
        # In-flight marker first, pop second: a drain() observer holding the
        # idle lock then either sees the delta still pending or sees this
        # application in flight — never the popped-but-unapplied gap.
        with self._idle:
            self._in_flight += 1
        try:
            delta = self.delta_log.drain()
            if delta is None:
                return 0
            invalidated = self.session.apply_delta(
                edges_added=delta.edges_added or None,
                features_changed=delta.features_changed or None,
            )
            self.delta_log.mark_applied(delta.seq)
            self.metrics.increment("deltas_applied", delta.coalesced)
            self.metrics.increment("subgraphs_invalidated", invalidated)
            return int(delta.coalesced)
        finally:
            with self._idle:
                self._in_flight -= 1
                self._idle.notify_all()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            wave = self.batcher.next_wave(poll_timeout=0.05)
            if not wave:
                if self._stop.is_set() and self.batcher.pending == 0:
                    break
                # Idle: apply deltas that arrived with no score traffic
                # behind them, so pure-update workloads (and drain())
                # converge without waiting for the next wave.  With a
                # watermark configured, idle application defers until the
                # size/age bound (coalescing bursts into one update pass);
                # pre-wave application and drain()'s expedite still force
                # the full prefix.
                if self.delta_log.watermark_due:
                    try:
                        self._apply_pending_deltas()
                    except BaseException as error:  # noqa: BLE001 — stashed
                        self.metrics.increment("errors")
                        self._delta_error = error
                with self._idle:
                    self._idle.notify_all()
                continue
            with self._idle:
                self._in_flight += 1
            try:
                self._execute_wave(wave)
            finally:
                with self._idle:
                    self._in_flight -= 1
                    self._served += len(wave)
                    self._idle.notify_all()

    def _execute_wave(self, wave: List[ScoreRequest]) -> None:
        traced = any(request.trace is not None for request in wave)
        wave_started = time.monotonic()
        delta_s = 0.0
        deltas_applied = 0
        build_s = 0.0
        try:
            if self._delta_error is not None:
                raise self._delta_error
            # Apply every delta enqueued so far — a superset of every
            # request's barrier prefix, so read-your-writes holds for the
            # whole wave.  Only this thread applies deltas while the
            # dispatcher runs, so ``applied_seq`` is exactly the prefix the
            # wave is scored at.
            deltas_applied = self._apply_pending_deltas()
            delta_s = time.monotonic() - wave_started
            applied_seq = self.delta_log.applied_seq
            nodes = (
                np.concatenate([request.nodes for request in wave])
                if len(wave) > 1
                else wave[0].nodes
            )
            build_before = self._build_seconds() if traced else 0.0
            probabilities = self.session.score_nodes(nodes)
            replay_stats = self.session.consume_replay_stats()
            if traced:
                build_s = max(self._build_seconds() - build_before, 0.0)
        except BaseException as error:  # noqa: BLE001 — forwarded to callers
            self.metrics.increment("errors")
            for request in wave:
                request._reject(error)
                self._finish_request_trace(request)
            return
        scored_at = time.monotonic()
        if self.wave_log is not None:
            self.wave_log.append((nodes.copy(), probabilities.copy(), applied_seq))
        offset = 0
        for request in wave:
            rows = probabilities[offset : offset + request.num_nodes]
            offset += request.num_nodes
            request.delta_seq = applied_seq
            request.wave_requests = len(wave)
            request.wave_nodes = int(nodes.size)
            if request.trace is not None:
                self._record_wave_spans(
                    request, wave_started, scored_at, delta_s, deltas_applied,
                    build_s, replay_stats, len(wave), int(nodes.size),
                )
            request._resolve(rows)
            self._finish_request_trace(request)
            self.metrics.increment("nodes_scored", request.num_nodes)
            self.metrics.request_latency.observe(request.latency_s)
            self.metrics.queue_wait.observe(request.queue_wait_s)
        self.metrics.increment("waves")
        self.metrics.increment("wave_nodes", int(nodes.size))
        # model_s is 0.0 for detectors whose subset path has no engine hook
        # (full-graph baselines) — no model_time sample then, rather than a
        # stream of zeros.
        if replay_stats["model_s"] > 0.0:
            self.metrics.model_time.observe(replay_stats["model_s"])
        if replay_stats["replay_hits"]:
            self.metrics.increment("replay_hits", int(replay_stats["replay_hits"]))
        if replay_stats["replay_misses"]:
            self.metrics.increment("replay_misses", int(replay_stats["replay_misses"]))

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _build_seconds(self) -> float:
        """Cumulative inference-time subgraph construction seconds so far."""
        phase_times = getattr(self.detector, "phase_times", None)
        if not phase_times:
            return 0.0
        return float(phase_times.get("inference_construction", 0.0))

    def _record_wave_spans(
        self,
        request: ScoreRequest,
        wave_started: float,
        scored_at: float,
        delta_s: float,
        deltas_applied: int,
        build_s: float,
        replay_stats: Dict[str, float],
        wave_requests: int,
        wave_nodes: int,
    ) -> None:
        """Attach this wave's timing decomposition to the request's trace.

        A wave serves requests from *different* traces, so each trace gets
        its own copy of the shared wave spans: queue wait (request-specific),
        the wave itself, and its children — delta application, subgraph
        build (top-ups), collation (the remainder), and the model forward
        tagged replay/eager.  Model time comes from the session's replay
        stats; build time from the detector's inference-construction phase
        accounting; collate is what's left of the wave after both.
        """
        trace = request.trace
        parent = (
            request.trace_parent if request.trace_parent is not None else ROOT_SPAN_ID
        )
        if request.started_at is not None:
            trace.add_span(
                "queue_wait",
                request.enqueued_at,
                max(request.started_at - request.enqueued_at, 0.0),
                parent_id=parent,
            )
        wave_span = trace.add_span(
            "wave",
            wave_started,
            max(scored_at - wave_started, 0.0),
            parent_id=parent,
            wave_requests=wave_requests,
            wave_nodes=wave_nodes,
        )
        cursor = wave_started
        if deltas_applied:
            trace.add_span(
                "delta_apply", cursor, delta_s, parent_id=wave_span,
                deltas=deltas_applied,
            )
        cursor += delta_s
        if build_s > 0.0:
            trace.add_span("subgraph_build", cursor, build_s, parent_id=wave_span)
        model_s = float(replay_stats.get("model_s", 0.0))
        collate_s = max(
            (scored_at - wave_started) - delta_s - build_s - model_s, 0.0
        )
        trace.add_span(
            "wave_collate", cursor + build_s, collate_s, parent_id=wave_span
        )
        if model_s > 0.0:
            hits = int(replay_stats.get("replay_hits", 0))
            misses = int(replay_stats.get("replay_misses", 0))
            if hits and not misses:
                mode = "replay"
            elif hits and misses:
                mode = "mixed"
            else:
                mode = "eager"
            trace.add_span(
                "model_forward", scored_at - model_s, model_s,
                parent_id=wave_span, mode=mode,
            )

    def _finish_request_trace(self, request: ScoreRequest) -> None:
        """Finish a service-owned trace once its request resolved."""
        if request.trace_owned and request.trace is not None:
            tracer = request.trace.tracer
            if tracer is not None:
                tracer.finish_trace(request.trace)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def unregister_metrics(self) -> None:
        """Withdraw this service's collector from the global registry.

        Idempotent; a :class:`ShardRouter` calls this on its shard services
        and exposes them itself with per-shard labels instead.
        """
        if self._registry_key is not None:
            global_registry().unregister(self._registry_key)
            self._registry_key = None

    def drain(self, timeout: Optional[float] = 60.0) -> None:
        """Block until every accepted request and delta has been served.

        Pending deltas are applied even when no score traffic follows them
        (by the dispatcher's idle loop — or directly here when the
        dispatcher is not running, where no wave can race the application).
        Raises :class:`TimeoutError` when the backlog outlives ``timeout``,
        and re-raises a delta-application failure recorded by the
        dispatcher.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        # A watermarked log must not make drain wait out max_age_s: force
        # the watermark due so the dispatcher's idle loop applies now.
        self.delta_log.expedite()
        if not self._thread.is_alive():
            self._apply_pending_deltas()
        with self._idle:
            while True:
                if self._delta_error is not None:
                    raise self._delta_error
                if (
                    self.batcher.pending == 0
                    and self._in_flight == 0
                    and self.delta_log.pending == 0
                    and self._served >= self._accepted
                ):
                    return
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"drain timed out with {self.batcher.pending} request(s), "
                        f"{self.delta_log.pending} delta(s) pending"
                    )
                self._idle.wait(0.01 if remaining is None else min(remaining, 0.01))

    def close(self, drain: bool = True, timeout: Optional[float] = 60.0) -> None:
        """Stop accepting work, optionally drain, and tear everything down.

        Idempotent.  After close: the dispatcher thread has exited, the
        session is closed, and (unless ``release_pool_on_close=False``) the
        shared construction pool is shut down with every shared-memory
        segment unlinked.
        """
        # Atomic test-and-set: two threads racing close() must not both
        # run the teardown below (double batcher.close / session.close).
        with self._idle:
            if self._closed:
                return
            self._closed = True
        self.unregister_metrics()
        # A never-started dispatcher can't serve the backlog: reject it so
        # no caller blocks forever on a handle nothing will resolve.
        dispatcher_alive = self._thread.is_alive()
        rejected = self.batcher.close(reject_pending=not (drain and dispatcher_alive))
        if rejected:
            with self._idle:
                self._served += rejected
                self._idle.notify_all()
        try:
            if drain and dispatcher_alive:
                self.drain(timeout)
        finally:
            # Teardown must survive a failed drain (timeout, stashed delta
            # error): _closed is already set, so a close() that raised would
            # otherwise leak the dispatcher thread, pool, and segments for
            # the process lifetime.
            self._stop.set()
            if self._thread.is_alive():
                self._thread.join(timeout=10.0)
            # Close the log before the final application below: a racing
            # submit_update either landed in pending (and is applied) or
            # fails its append — never acknowledged-then-dropped.
            self.delta_log.close()
            # Whatever the dispatcher didn't get to is now unservable.
            leftover = self.batcher.close(reject_pending=True)
            if leftover:
                with self._idle:
                    self._served += leftover
                    self._idle.notify_all()
            try:
                # Deltas that arrived with no scoring wave behind them still
                # need applying when draining (the log promised ordering,
                # not laziness); the dispatcher is gone, so this is safe.
                if drain:
                    self._apply_pending_deltas()
            finally:
                self.session.close(release_pool=self._release_pool_on_close)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "DetectionService":
        if self._closed:
            raise ServiceClosed("service is closed")
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Serving telemetry as one JSON-serializable dict.

        Combines the request/wave/delta counters and latency histograms
        (:class:`repro.serving.ServingMetrics`) with live queue depths,
        delta-log positions, and the store's cache/build counters — the
        fields the CLI (``repro serve-bench``) and
        ``benchmarks/bench_serving.py`` consume.
        """
        store = self.session.store
        extra: Dict[str, object] = {
            "detector": type(self.detector).__name__,
            "graph": self.graph.name,
            "uptime_s": time.monotonic() - self._started_at,
            "closed": self._closed,
            "max_batch_size": self.batcher.max_batch_size,
            "max_wait_ms": self.batcher.max_wait_s * 1000.0,
            "current_wait_ms": self.batcher.current_wait_ms,
            "delta_max_pending": self.delta_log.max_pending,
            "delta_max_age_s": self.delta_log.max_age_s,
            "pending_requests": self.batcher.pending,
            "pending_deltas": self.delta_log.pending,
            "applied_delta_seq": self.delta_log.applied_seq,
            "tail_delta_seq": self.delta_log.tail_seq,
        }
        if store is not None:
            extra.update(
                store_size=len(store),
                store_cache_hits=int(store.cache_hits),
                store_cache_misses=int(store.cache_misses),
                subgraphs_built=int(store.build_count),
            )
        return self.metrics.snapshot(extra)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"DetectionService(detector={type(self.detector).__name__}, "
            f"graph={self.graph.name!r}, {state})"
        )
