"""Streaming update ingestion: an ordered, validated log of graph deltas.

A serving process receives graph mutations (new edges, changed node
features) concurrently with score traffic.  Applying each mutation the
moment it arrives would interleave arbitrarily with in-flight scoring;
instead, mutations enter a :class:`DeltaLog` — an append-only, sequenced
log — and the service's dispatcher applies pending deltas *between* scoring
waves through ``DetectionSession.update_graph`` (which invalidates exactly
the stored subgraphs a delta touches and refreshes the builder per
relation).

Sequencing gives read-your-writes: :meth:`DeltaLog.append` returns the
delta's sequence number, every score request records the log's tail at
submit time, and the dispatcher never executes a wave before applying at
least that prefix.  A score request enqueued after delta ``k`` therefore
never sees pre-``k`` subgraphs.

Deltas are validated *at append time* against the live graph (unknown
relation names, out-of-range endpoints, wrong feature width), so a bad
mutation fails its producer immediately instead of poisoning the dispatcher
later.  Consecutive pending deltas are coalesced before application — edge
lists concatenate per relation in log order, feature rows last-write-wins —
so a burst of small deltas costs one ``update_graph`` pass (one per-relation
re-symmetrization) instead of one per delta.  Coalescing is semantically
free: invalidation is a set union either way, and the builder refresh
always re-reads the *final* graph state.

Unlike ``DetectionSession.update_graph`` (whose callers mutate
``graph.features`` themselves before notifying), feature updates here carry
the new rows in the delta; the dispatcher is the only writer of the served
graph, which is what keeps the log's ordering meaningful.
"""

from __future__ import annotations

import time

from repro.analysis.sanitizer import tracked_rlock
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.api.session import validate_edge_additions, validate_feature_rows
from repro.graph import HeteroGraph


@dataclass
class GraphDelta:
    """One validated mutation: edges appended and/or feature rows replaced."""

    seq: int
    edges_added: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    features_changed: Dict[int, np.ndarray] = field(default_factory=dict)
    #: How many raw log entries this delta coalesces (telemetry).
    coalesced: int = 1

    @property
    def num_edges(self) -> int:
        return sum(int(src.size) for src, _ in self.edges_added.values())

    @property
    def num_feature_rows(self) -> int:
        return len(self.features_changed)


class DeltaLog:
    """Thread-safe ordered log of graph deltas awaiting application.

    ``max_pending`` / ``max_age_s`` configure the **application watermark**:
    with neither set, :attr:`watermark_due` is true the moment anything is
    pending (the eager default — the service's idle loop applies deltas
    immediately).  With either set, idle application is *deferred* — bursts
    of small deltas coalesce into one ``update_graph`` pass — until the log
    holds ``max_pending`` entries or the oldest pending delta is
    ``max_age_s`` old, whichever first.  The watermark only shapes *idle*
    application: the dispatcher still applies the full pending prefix before
    every scoring wave (read-your-writes is never deferred), and
    :meth:`expedite` (called by ``drain``/``close``) forces the watermark
    due so shutdown never waits out ``max_age_s``.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        *,
        max_pending: Optional[int] = None,
        max_age_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_pending is not None and max_pending <= 0:
            raise ValueError("max_pending must be positive (or None)")
        if max_age_s is not None and max_age_s < 0:
            raise ValueError("max_age_s must be non-negative (or None)")
        self.graph = graph
        self.max_pending = max_pending
        self.max_age_s = max_age_s
        self._clock = clock
        self._lock = tracked_rlock("DeltaLog._lock")
        self._pending: List[GraphDelta] = []
        self._next_seq = 0
        self._applied_seq = -1
        self._closed = False
        #: Enqueue time of the oldest pending delta (None when empty).
        self._oldest_pending_at: Optional[float] = None
        self._expedited = False  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def append(
        self,
        edges_added: Optional[Mapping[str, Tuple[Iterable[int], Iterable[int]]]] = None,
        features_changed: Optional[Mapping[int, Iterable[float]]] = None,
    ) -> int:
        """Validate and enqueue one delta; returns its sequence number.

        The returned sequence is the caller's read-your-writes barrier: any
        score request submitted afterwards is guaranteed to be served at a
        log prefix that includes this delta.  Raises (and enqueues nothing)
        on an unknown relation, mismatched or out-of-range endpoints, an
        out-of-range feature node, or a feature row of the wrong width —
        the exact validation ``DetectionSession.apply_delta`` applies,
        shared so the two can never drift.
        """
        edges: Dict[str, Tuple[np.ndarray, np.ndarray]] = {
            relation: (src, dst)
            for relation, src, dst in validate_edge_additions(self.graph, edges_added)
            if src.size
        }
        features = validate_feature_rows(self.graph, features_changed)
        with self._lock:
            # Checked under the same lock that inserts: once close() ran,
            # no append can slip in after the service's final application
            # and be silently acknowledged-but-never-applied.
            if self._closed:
                raise RuntimeError("delta log is closed")
            delta = GraphDelta(self._next_seq, edges, features)
            self._next_seq += 1
            if not self._pending:
                self._oldest_pending_at = self._clock()
            self._pending.append(delta)
            return delta.seq

    def close(self) -> None:
        """Refuse further appends (already-pending deltas stay drainable)."""
        with self._lock:
            self._closed = True

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------
    @property
    def tail_seq(self) -> int:
        """Sequence of the newest enqueued delta (-1 when none ever was)."""
        with self._lock:
            return self._next_seq - 1

    @property
    def applied_seq(self) -> int:
        """Highest sequence already applied to the graph (-1 initially)."""
        with self._lock:
            return self._applied_seq

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def watermark_due(self) -> bool:
        """True when the pending prefix should be applied *now* (idle path).

        Eager (no watermark configured): due whenever anything is pending.
        Watermarked: due once the size or age bound is hit, or after
        :meth:`expedite`.
        """
        with self._lock:
            if not self._pending:
                return False
            if self._expedited:
                return True
            if self.max_pending is None and self.max_age_s is None:
                return True
            if self.max_pending is not None and len(self._pending) >= self.max_pending:
                return True
            if self.max_age_s is not None and self._oldest_pending_at is not None:
                return self._clock() - self._oldest_pending_at >= self.max_age_s
            return False

    def expedite(self) -> None:
        """Force the watermark due until the pending prefix drains.

        ``drain``/``close`` call this so a watermarked log never makes
        shutdown wait out ``max_age_s``.
        """
        with self._lock:
            self._expedited = True

    def drain(self) -> Optional[GraphDelta]:
        """Pop every pending delta, coalesced into one (``None`` when idle).

        The coalesced delta carries the *highest* drained sequence; callers
        mark it applied via :meth:`mark_applied` once ``update_graph``
        succeeded.  Edge arrays concatenate in log order per relation;
        feature rows take the last write per node.
        """
        with self._lock:
            if not self._pending:
                self._expedited = False
                return None
            drained, self._pending = self._pending, []
            self._oldest_pending_at = None
            self._expedited = False
        edges: Dict[str, List[Tuple[np.ndarray, np.ndarray]]] = {}
        features: Dict[int, np.ndarray] = {}
        for delta in drained:
            for relation, (src, dst) in delta.edges_added.items():
                edges.setdefault(relation, []).append((src, dst))
            features.update(delta.features_changed)
        merged_edges = {
            relation: (
                np.concatenate([src for src, _ in pairs]),
                np.concatenate([dst for _, dst in pairs]),
            )
            for relation, pairs in edges.items()
        }
        return GraphDelta(drained[-1].seq, merged_edges, features, coalesced=len(drained))

    def mark_applied(self, seq: int) -> None:
        with self._lock:
            if seq > self._applied_seq:
                self._applied_seq = seq
