"""Streaming update ingestion: an ordered, validated log of graph deltas.

A serving process receives graph mutations (new edges, changed node
features) concurrently with score traffic.  Applying each mutation the
moment it arrives would interleave arbitrarily with in-flight scoring;
instead, mutations enter a :class:`DeltaLog` — an append-only, sequenced
log — and the service's dispatcher applies pending deltas *between* scoring
waves through ``DetectionSession.update_graph`` (which invalidates exactly
the stored subgraphs a delta touches and refreshes the builder per
relation).

Sequencing gives read-your-writes: :meth:`DeltaLog.append` returns the
delta's sequence number, every score request records the log's tail at
submit time, and the dispatcher never executes a wave before applying at
least that prefix.  A score request enqueued after delta ``k`` therefore
never sees pre-``k`` subgraphs.

Deltas are validated *at append time* against the live graph (unknown
relation names, out-of-range endpoints, wrong feature width), so a bad
mutation fails its producer immediately instead of poisoning the dispatcher
later.  Consecutive pending deltas are coalesced before application — edge
lists concatenate per relation in log order, feature rows last-write-wins —
so a burst of small deltas costs one ``update_graph`` pass (one per-relation
re-symmetrization) instead of one per delta.  Coalescing is semantically
free: invalidation is a set union either way, and the builder refresh
always re-reads the *final* graph state.

Unlike ``DetectionSession.update_graph`` (whose callers mutate
``graph.features`` themselves before notifying), feature updates here carry
the new rows in the delta; the dispatcher is the only writer of the served
graph, which is what keeps the log's ordering meaningful.
"""

from __future__ import annotations

from repro.analysis.sanitizer import tracked_rlock
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.api.session import validate_edge_additions, validate_feature_rows
from repro.graph import HeteroGraph


@dataclass
class GraphDelta:
    """One validated mutation: edges appended and/or feature rows replaced."""

    seq: int
    edges_added: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    features_changed: Dict[int, np.ndarray] = field(default_factory=dict)
    #: How many raw log entries this delta coalesces (telemetry).
    coalesced: int = 1

    @property
    def num_edges(self) -> int:
        return sum(int(src.size) for src, _ in self.edges_added.values())

    @property
    def num_feature_rows(self) -> int:
        return len(self.features_changed)


class DeltaLog:
    """Thread-safe ordered log of graph deltas awaiting application."""

    def __init__(self, graph: HeteroGraph) -> None:
        self.graph = graph
        self._lock = tracked_rlock("DeltaLog._lock")
        self._pending: List[GraphDelta] = []
        self._next_seq = 0
        self._applied_seq = -1
        self._closed = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def append(
        self,
        edges_added: Optional[Mapping[str, Tuple[Iterable[int], Iterable[int]]]] = None,
        features_changed: Optional[Mapping[int, Iterable[float]]] = None,
    ) -> int:
        """Validate and enqueue one delta; returns its sequence number.

        The returned sequence is the caller's read-your-writes barrier: any
        score request submitted afterwards is guaranteed to be served at a
        log prefix that includes this delta.  Raises (and enqueues nothing)
        on an unknown relation, mismatched or out-of-range endpoints, an
        out-of-range feature node, or a feature row of the wrong width —
        the exact validation ``DetectionSession.apply_delta`` applies,
        shared so the two can never drift.
        """
        edges: Dict[str, Tuple[np.ndarray, np.ndarray]] = {
            relation: (src, dst)
            for relation, src, dst in validate_edge_additions(self.graph, edges_added)
            if src.size
        }
        features = validate_feature_rows(self.graph, features_changed)
        with self._lock:
            # Checked under the same lock that inserts: once close() ran,
            # no append can slip in after the service's final application
            # and be silently acknowledged-but-never-applied.
            if self._closed:
                raise RuntimeError("delta log is closed")
            delta = GraphDelta(self._next_seq, edges, features)
            self._next_seq += 1
            self._pending.append(delta)
            return delta.seq

    def close(self) -> None:
        """Refuse further appends (already-pending deltas stay drainable)."""
        with self._lock:
            self._closed = True

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------
    @property
    def tail_seq(self) -> int:
        """Sequence of the newest enqueued delta (-1 when none ever was)."""
        with self._lock:
            return self._next_seq - 1

    @property
    def applied_seq(self) -> int:
        """Highest sequence already applied to the graph (-1 initially)."""
        with self._lock:
            return self._applied_seq

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def drain(self) -> Optional[GraphDelta]:
        """Pop every pending delta, coalesced into one (``None`` when idle).

        The coalesced delta carries the *highest* drained sequence; callers
        mark it applied via :meth:`mark_applied` once ``update_graph``
        succeeded.  Edge arrays concatenate in log order per relation;
        feature rows take the last write per node.
        """
        with self._lock:
            if not self._pending:
                return None
            drained, self._pending = self._pending, []
        edges: Dict[str, List[Tuple[np.ndarray, np.ndarray]]] = {}
        features: Dict[int, np.ndarray] = {}
        for delta in drained:
            for relation, (src, dst) in delta.edges_added.items():
                edges.setdefault(relation, []).append((src, dst))
            features.update(delta.features_changed)
        merged_edges = {
            relation: (
                np.concatenate([src for src, _ in pairs]),
                np.concatenate([dst for _, dst in pairs]),
            )
            for relation, pairs in edges.items()
        }
        return GraphDelta(drained[-1].seq, merged_edges, features, coalesced=len(drained))

    def mark_applied(self, seq: int) -> None:
        with self._lock:
            if seq > self._applied_seq:
                self._applied_seq = seq
