"""Serving telemetry: latency histograms and monotonic counters.

Everything here is deliberately boring — fixed-bucket histograms and a
lock-guarded counter map — because it sits on the request hot path of
:class:`repro.serving.DetectionService`.  Recording a sample is a bucket
index plus two adds; reading a snapshot never blocks recording for longer
than a dict copy.

The histogram buckets are geometric (factor ~1.26, 60 buckets from 10 µs to
~60 s), so p50/p99 estimates carry at most ~26% bucket-resolution error
across the whole range — plenty for dashboard-style serving telemetry, with
a fixed memory footprint regardless of traffic.
"""

from __future__ import annotations

from repro.analysis.sanitizer import tracked_rlock
from typing import Dict, Optional

import numpy as np

#: Geometric bucket upper bounds in seconds: 60 buckets spanning 1e-5 .. ~60.
_BUCKET_BOUNDS = np.geomspace(1e-5, 60.0, 60)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates.

    Thread-safe: :meth:`observe` and :meth:`snapshot` may be called from any
    thread.  Percentiles are estimated as the upper bound of the bucket the
    requested quantile falls into (an overestimate of at most one bucket
    width).
    """

    def __init__(self) -> None:
        self._lock = tracked_rlock("LatencyHistogram._lock")
        self._counts = np.zeros(_BUCKET_BOUNDS.size + 1, dtype=np.int64)
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        index = int(np.searchsorted(_BUCKET_BOUNDS, seconds))
        with self._lock:
            self._counts[index] += 1
            self._sum += seconds
            if seconds < self._min:
                self._min = seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return int(self._counts.sum())

    def percentile(self, quantile: float) -> float:
        """Upper-bound estimate of the ``quantile`` (in [0, 1]) latency."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = self._counts.copy()
            maximum = self._max
        total = int(counts.sum())
        if total == 0:
            return 0.0
        rank = quantile * total
        cumulative = np.cumsum(counts)
        index = int(np.searchsorted(cumulative, rank))
        if index >= _BUCKET_BOUNDS.size:
            return maximum
        return float(min(_BUCKET_BOUNDS[index], maximum))

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            counts = self._counts.copy()
            total = int(counts.sum())
            observed_sum = self._sum
            minimum = self._min
            maximum = self._max
        if total == 0:
            return {"count": 0, "mean_s": 0.0, "min_s": 0.0, "max_s": 0.0,
                    "p50_s": 0.0, "p90_s": 0.0, "p99_s": 0.0}
        return {
            "count": total,
            "mean_s": observed_sum / total,
            "min_s": minimum,
            "max_s": maximum,
            "p50_s": self.percentile(0.50),
            "p90_s": self.percentile(0.90),
            "p99_s": self.percentile(0.99),
        }


class ServingMetrics:
    """The counter/histogram bundle one :class:`DetectionService` owns.

    Counters (monotonic):

    ``requests``            score requests accepted,
    ``nodes_scored``        node rows returned across all responses,
    ``waves``               micro-batches executed,
    ``wave_nodes``          node rows that went through a collated wave,
    ``deltas_enqueued``     graph deltas accepted by the ingester,
    ``deltas_applied``      graph deltas applied through ``update_graph``,
    ``subgraphs_invalidated`` stored subgraphs dropped by applied deltas,
    ``errors``              waves that raised (the error is re-raised to
                            every caller of the wave),
    ``replay_hits``         wave model forwards served by a compiled replay
                            schedule (``repro.tensor.replay``),
    ``replay_misses``       wave model forwards that ran eagerly and traced
                            a new schedule (cold shape bucket).

    Histograms: ``request_latency`` (submit → result available),
    ``queue_wait`` (submit → wave execution start), and ``model_time``
    (per-wave seconds inside the model forward — replayed or eager — the
    quantity the capture-and-replay engine exists to shrink).
    """

    def __init__(self) -> None:
        self._lock = tracked_rlock("ServingMetrics._lock")
        self._counters: Dict[str, int] = {
            "requests": 0,
            "nodes_scored": 0,
            "waves": 0,
            "wave_nodes": 0,
            "deltas_enqueued": 0,
            "deltas_applied": 0,
            "subgraphs_invalidated": 0,
            "errors": 0,
            "replay_hits": 0,
            "replay_misses": 0,
        }
        self.request_latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.model_time = LatencyHistogram()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += int(amount)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def snapshot(self, extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """One JSON-serializable dict of everything (CLI / benchmark food).

        ``batch_occupancy`` is the average number of node rows per executed
        wave — the quantity micro-batching exists to raise (N callers asking
        for 1 node each should cost ~1 wave, occupancy ~N, not N waves of
        occupancy 1).  ``requests_per_wave`` is the companion request-level
        view.
        """
        counters = self.counters()
        waves = counters["waves"]
        result: Dict[str, object] = {
            **counters,
            "batch_occupancy": counters["wave_nodes"] / waves if waves else 0.0,
            "requests_per_wave": counters["requests"] / waves if waves else 0.0,
            "request_latency": self.request_latency.snapshot(),
            "queue_wait": self.queue_wait.snapshot(),
            "model_time": self.model_time.snapshot(),
        }
        if extra:
            result.update(extra)
        return result
