"""Serving telemetry: latency histograms and monotonic counters.

Everything here is deliberately boring — fixed-bucket histograms and a
lock-guarded counter map — because it sits on the request hot path of
:class:`repro.serving.DetectionService`.  Recording a sample is a bucket
index plus two adds; reading a snapshot never blocks recording for longer
than a dict copy.

The histogram buckets are geometric (factor ~1.26, 60 buckets from 10 µs to
~60 s), so p50/p99 estimates carry at most ~26% bucket-resolution error
across the whole range — plenty for dashboard-style serving telemetry, with
a fixed memory footprint regardless of traffic.
"""

from __future__ import annotations

import math

from repro.analysis.sanitizer import tracked_rlock
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.registry import MetricFamily

#: Geometric bucket upper bounds in seconds: 60 buckets spanning 1e-5 .. ~60.
_BUCKET_BOUNDS = np.geomspace(1e-5, 60.0, 60)


def bucket_bounds() -> List[float]:
    """The shared geometric bucket upper bounds (seconds), ascending."""
    return [float(bound) for bound in _BUCKET_BOUNDS]


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates.

    Thread-safe: :meth:`observe` and :meth:`snapshot` may be called from any
    thread.  Percentiles are estimated as the upper bound of the bucket the
    requested quantile falls into (an overestimate of at most one bucket
    width).
    """

    def __init__(self) -> None:
        self._lock = tracked_rlock("LatencyHistogram._lock")
        self._counts = np.zeros(_BUCKET_BOUNDS.size + 1, dtype=np.int64)
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        # NaN would silently poison _min/_sum (and land in an arbitrary
        # bucket); negative durations mean a clock-domain bug upstream.
        if seconds != seconds or seconds < 0.0:
            raise ValueError(
                f"latency sample must be non-negative and not NaN, got {seconds!r}"
            )
        index = int(np.searchsorted(_BUCKET_BOUNDS, seconds))
        with self._lock:
            self._counts[index] += 1
            self._sum += seconds
            if seconds < self._min:
                self._min = seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return int(self._counts.sum())

    @property
    def sum_s(self) -> float:
        """Sum of every observed sample (the Prometheus ``_sum`` value)."""
        with self._lock:
            return float(self._sum)

    @property
    def max_s(self) -> float:
        with self._lock:
            return float(self._max)

    def buckets(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at ``+Inf``.

        The accessor the Prometheus exporter and the cross-shard
        aggregation use instead of reaching into ``_counts``; the final
        pair's count is the total observation count.
        """
        with self._lock:
            counts = self._counts.copy()
        cumulative = np.cumsum(counts)
        pairs = [
            (float(bound), int(cumulative[index]))
            for index, bound in enumerate(_BUCKET_BOUNDS)
        ]
        pairs.append((math.inf, int(cumulative[-1])))
        return pairs

    def percentile(self, quantile: float) -> float:
        """Upper-bound estimate of the ``quantile`` (in [0, 1]) latency."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = self._counts.copy()
            maximum = self._max
        total = int(counts.sum())
        if total == 0:
            return 0.0
        rank = quantile * total
        cumulative = np.cumsum(counts)
        index = int(np.searchsorted(cumulative, rank))
        if index >= _BUCKET_BOUNDS.size:
            return maximum
        return float(min(_BUCKET_BOUNDS[index], maximum))

    @property
    def min_s(self) -> float:
        """Smallest observed sample (``inf`` before the first one)."""
        with self._lock:
            return float(self._min)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            counts = self._counts.copy()
            total = int(counts.sum())
            observed_sum = self._sum
            minimum = self._min
            maximum = self._max
        if total == 0:
            return {"count": 0, "mean_s": 0.0, "min_s": 0.0, "max_s": 0.0,
                    "p50_s": 0.0, "p90_s": 0.0, "p99_s": 0.0}
        return {
            "count": total,
            "mean_s": observed_sum / total,
            "min_s": minimum,
            "max_s": maximum,
            "p50_s": self.percentile(0.50),
            "p90_s": self.percentile(0.90),
            "p99_s": self.percentile(0.99),
        }


class ServingMetrics:
    """The counter/histogram bundle one :class:`DetectionService` owns.

    Counters (monotonic):

    ``requests``            score requests accepted,
    ``nodes_scored``        node rows returned across all responses,
    ``waves``               micro-batches executed,
    ``wave_nodes``          node rows that went through a collated wave,
    ``deltas_enqueued``     graph deltas accepted by the ingester,
    ``deltas_applied``      graph deltas applied through ``update_graph``,
    ``subgraphs_invalidated`` stored subgraphs dropped by applied deltas,
    ``errors``              waves that raised (the error is re-raised to
                            every caller of the wave),
    ``replay_hits``         wave model forwards served by a compiled replay
                            schedule (``repro.tensor.replay``),
    ``replay_misses``       wave model forwards that ran eagerly and traced
                            a new schedule (cold shape bucket).

    Histograms: ``request_latency`` (submit → result available),
    ``queue_wait`` (submit → wave execution start), and ``model_time``
    (per-wave seconds inside the model forward — replayed or eager — the
    quantity the capture-and-replay engine exists to shrink).
    """

    def __init__(self) -> None:
        self._lock = tracked_rlock("ServingMetrics._lock")
        self._counters: Dict[str, int] = {
            "requests": 0,
            "nodes_scored": 0,
            "waves": 0,
            "wave_nodes": 0,
            "deltas_enqueued": 0,
            "deltas_applied": 0,
            "subgraphs_invalidated": 0,
            "errors": 0,
            "replay_hits": 0,
            "replay_misses": 0,
        }
        self.request_latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.model_time = LatencyHistogram()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] += int(amount)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def snapshot(self, extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """One JSON-serializable dict of everything (CLI / benchmark food).

        ``batch_occupancy`` is the average number of node rows per executed
        wave — the quantity micro-batching exists to raise (N callers asking
        for 1 node each should cost ~1 wave, occupancy ~N, not N waves of
        occupancy 1).  ``requests_per_wave`` is the companion request-level
        view.
        """
        counters = self.counters()
        waves = counters["waves"]
        result: Dict[str, object] = {
            **counters,
            "batch_occupancy": counters["wave_nodes"] / waves if waves else 0.0,
            "requests_per_wave": counters["requests"] / waves if waves else 0.0,
            "request_latency": self.request_latency.snapshot(),
            "queue_wait": self.queue_wait.snapshot(),
            "model_time": self.model_time.snapshot(),
        }
        if extra:
            result.update(extra)
        return result

    def metric_families(
        self, labels: Optional[Dict[str, str]] = None
    ) -> List[MetricFamily]:
        """This bundle as Prometheus families for a registry collector.

        Counter names follow the ``repro_serving_<name>_total`` convention;
        histograms expose the shared geometric buckets as
        ``repro_serving_<name>_seconds``.  ``labels`` (e.g. ``{"shard":
        "0"}``) are stamped on every sample so one registry can expose many
        services side by side.
        """
        labels = dict(labels or {})
        families = [
            MetricFamily(
                f"repro_serving_{name}_total",
                "counter",
                _COUNTER_HELP.get(name, name.replace("_", " ")),
                [(dict(labels), float(value))],
            )
            for name, value in self.counters().items()
        ]
        for name, help_text in _HISTOGRAM_HELP.items():
            histogram = getattr(self, name)
            families.append(
                MetricFamily(
                    f"repro_serving_{name}_seconds",
                    "histogram",
                    help_text,
                    [(dict(labels), histogram.buckets(), histogram.sum_s)],
                )
            )
        return families


_COUNTER_HELP: Dict[str, str] = {
    "requests": "Score requests accepted.",
    "nodes_scored": "Node rows returned across all responses.",
    "waves": "Micro-batched waves executed.",
    "wave_nodes": "Node rows that went through a collated wave.",
    "deltas_enqueued": "Graph deltas accepted by the ingester.",
    "deltas_applied": "Graph deltas applied through update_graph.",
    "subgraphs_invalidated": "Stored subgraphs dropped by applied deltas.",
    "errors": "Waves or delta applications that raised.",
    "replay_hits": "Wave model forwards served by a compiled replay schedule.",
    "replay_misses": "Wave model forwards that ran eagerly and traced a schedule.",
}

_HISTOGRAM_HELP: Dict[str, str] = {
    "request_latency": "Submit-to-result latency per request (seconds).",
    "queue_wait": "Submit-to-wave-start wait per request (seconds).",
    "model_time": "Model forward time per wave (seconds).",
}


def percentile_from_buckets(
    buckets: Sequence[Tuple[float, int]],
    quantile: float,
    maximum: Optional[float] = None,
) -> float:
    """Percentile estimate from cumulative buckets (``buckets()`` shape).

    Mirrors :meth:`LatencyHistogram.percentile` exactly — the first bucket
    whose cumulative count reaches the rank, capped by the true observed
    ``maximum`` when known — so aggregating one histogram's buckets returns
    the same estimate the histogram itself would.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total == 0:
        return 0.0
    rank = quantile * total
    for bound, cumulative in buckets:
        if cumulative >= rank:
            if math.isinf(bound):
                break
            return float(bound if maximum is None else min(bound, maximum))
    if maximum is not None:
        return float(maximum)
    return float(buckets[-2][0]) if len(buckets) > 1 else 0.0


def aggregate_latency(histograms: Sequence[LatencyHistogram]) -> Dict[str, float]:
    """Merge histograms into one snapshot-shaped summary (cluster view).

    Percentiles come from *bucket-merged* counts — summing the per-shard
    cumulative buckets and ranking over the merged distribution — which is
    the statistically meaningful cluster percentile (``max`` of per-shard
    p99s overstates whenever load is uneven, ``mean`` understates).
    """
    from repro.obs.registry import merge_buckets

    nonempty = [histogram for histogram in histograms if histogram.count]
    if not nonempty:
        return {"count": 0, "mean_s": 0.0, "min_s": 0.0, "max_s": 0.0,
                "p50_s": 0.0, "p90_s": 0.0, "p99_s": 0.0}
    merged = merge_buckets([histogram.buckets() for histogram in nonempty])
    total = merged[-1][1]
    observed_sum = sum(histogram.sum_s for histogram in nonempty)
    maximum = max(histogram.max_s for histogram in nonempty)
    return {
        "count": total,
        "mean_s": observed_sum / total,
        "min_s": min(histogram.min_s for histogram in nonempty),
        "max_s": maximum,
        "p50_s": percentile_from_buckets(merged, 0.50, maximum),
        "p90_s": percentile_from_buckets(merged, 0.90, maximum),
        "p99_s": percentile_from_buckets(merged, 0.99, maximum),
    }


def aggregate_serving_metrics(
    metrics: Sequence[ServingMetrics],
) -> Dict[str, object]:
    """Cluster totals over per-shard bundles, computed in one place.

    The single aggregation path behind :meth:`ShardRouter.snapshot` and
    the registry's cluster collector: counters sum, derived rates recompute
    from the summed counters, and latency histograms merge bucket-wise
    (see :func:`aggregate_latency`).
    """
    totals: Dict[str, object] = {name: 0 for name in _COUNTER_HELP}
    for bundle in metrics:
        for name, value in bundle.counters().items():
            totals[name] = int(totals.get(name, 0)) + int(value)
    waves = int(totals.get("waves", 0))
    totals["batch_occupancy"] = (
        int(totals.get("wave_nodes", 0)) / waves if waves else 0.0
    )
    totals["requests_per_wave"] = (
        int(totals.get("requests", 0)) / waves if waves else 0.0
    )
    for name in _HISTOGRAM_HELP:
        totals[name] = aggregate_latency([getattr(bundle, name) for bundle in metrics])
    return totals
