"""Micro-batching scheduler: coalesce concurrent score requests into waves.

BSG4Bot's serving cost is dominated by per-call overhead, not per-node work:
one ``score_nodes`` call pays a collation pass (or a batch-LRU hit) and a
model forward whatever the request size, and the flat collation engine makes
a 64-row batch barely more expensive than a 1-row one.  So N concurrent
callers asking for one node each should cost ~one collated wave, not N.

:class:`MicroBatcher` is the queue that makes this happen.  Callers
:meth:`submit` node arrays from any thread and block on the returned
:class:`ScoreRequest`; a single dispatcher thread (owned by
:class:`repro.serving.DetectionService`) pulls *waves* — FIFO runs of
requests coalesced under a ``max_batch_size`` / ``max_wait_ms`` policy —
executes each wave as one scoring call, and scatters the result rows back to
the per-request handles.

The policy is the classic latency/throughput dial:

* a wave closes as soon as its pending requests carry ``max_batch_size``
  node rows (throughput bound), or
* ``max_wait_ms`` after its *first* request was enqueued (latency bound),
  whichever comes first.  Under load the queue refills while a wave
  executes, so subsequent waves dispatch full without waiting.

Note on result semantics: BSG4Bot's semantic attention computes relation
weights over the whole collated batch, so a request's rows depend on its
wave's composition (at the ~1e-2 level).  A wave's concatenated output is
bit-identical to a serial ``score_nodes`` call over the same concatenated
nodes — that is the serving bit-identity contract, and what
``benchmarks/bench_serving.py`` replays and asserts.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.analysis.sanitizer import tracked_condition


class BatcherClosed(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` after :meth:`MicroBatcher.close`."""


class ScoreRequest:
    """One caller's pending score request (a minimal future).

    Created by :meth:`MicroBatcher.submit`; the dispatcher fills in either
    ``probabilities`` (+ serving metadata) or an exception, then sets the
    event.  Callers block in :meth:`result`.
    """

    __slots__ = (
        "nodes", "barrier_seq", "enqueued_at", "started_at", "finished_at",
        "delta_seq", "wave_requests", "wave_nodes", "probabilities", "error",
        "trace", "trace_parent", "trace_owned", "_done", "_clock",
    )

    def __init__(
        self,
        nodes: np.ndarray,
        barrier_seq: int,
        enqueued_at: float,
        clock: Callable[[], float] = time.monotonic,
        trace=None,
        trace_parent: Optional[int] = None,
        trace_owned: bool = False,
    ) -> None:
        self.nodes = nodes
        #: Optional :class:`repro.obs.Trace` riding along so the dispatcher
        #: can record this request's queue-wait/wave spans after the fact
        #: (``trace_parent`` is the span id they attach under; a trace the
        #: service itself started — ``trace_owned`` — is finished by the
        #: dispatcher when the request resolves).
        self.trace = trace
        self.trace_parent = trace_parent
        self.trace_owned = bool(trace_owned)
        # All three timestamps must come from the same clock (the batcher's,
        # injectable for deterministic tests) or latency_s/queue_wait_s mix
        # clock domains.
        self._clock = clock
        #: Delta-log sequence the caller observed at submit time; the
        #: dispatcher must apply at least this prefix before scoring
        #: (read-your-writes).
        self.barrier_seq = barrier_seq
        self.enqueued_at = enqueued_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Delta-log prefix actually applied when this request was scored.
        self.delta_seq: int = -1
        self.wave_requests: int = 0
        self.wave_nodes: int = 0
        self.probabilities: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self._done = threading.Event()

    @property
    def num_nodes(self) -> int:
        return int(self.nodes.size)

    def done(self) -> bool:
        return self._done.is_set()

    def _resolve(self, probabilities: np.ndarray) -> None:
        self.probabilities = probabilities
        self.finished_at = self._clock()
        self._done.set()

    def _reject(self, error: BaseException) -> None:
        self.error = error
        self.finished_at = self._clock()
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the wave holding this request executed; return rows.

        Re-raises the wave's exception in the caller's thread when scoring
        failed.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"score request for {self.num_nodes} node(s) not served "
                f"within {timeout}s"
            )
        if self.error is not None:
            raise self.error
        return self.probabilities

    @property
    def latency_s(self) -> float:
        """Submit-to-result wall time (0.0 until the request resolved)."""
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.enqueued_at

    @property
    def queue_wait_s(self) -> float:
        """Submit-to-wave-start wall time (0.0 until the wave started)."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.enqueued_at


class MicroBatcher:
    """Thread-safe request queue with max-batch-size / max-wait coalescing."""

    def __init__(
        self,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        adaptive_wait: bool = False,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        #: Adaptive linger policy: halve the effective wait after a wave
        #: dispatches full (under sustained load the queue refills by
        #: itself — lingering only adds latency), double it back toward the
        #: configured ``max_wait_ms`` cap after a half-empty wave (sparse
        #: traffic needs the linger to coalesce at all).  Only wave
        #: *boundaries* move; each realized wave's bit-identity contract is
        #: untouched.
        self.adaptive_wait = bool(adaptive_wait)
        self._clock = clock
        self._condition = tracked_condition("MicroBatcher._condition")
        self._queue: List[ScoreRequest] = []
        self._closed = False
        self._current_wait_s = self.max_wait_s  # guarded-by: _condition

    # ------------------------------------------------------------------
    # Caller side
    # ------------------------------------------------------------------
    def submit(
        self,
        nodes: Sequence[int],
        barrier_seq: int = -1,
        trace=None,
        trace_parent: Optional[int] = None,
        trace_owned: bool = False,
    ) -> ScoreRequest:
        """Enqueue a score request; returns the caller's wait handle."""
        array = np.asarray(
            nodes if isinstance(nodes, np.ndarray) else list(nodes)
        ).astype(np.int64).ravel()
        request = ScoreRequest(
            array,
            barrier_seq,
            self._clock(),
            clock=self._clock,
            trace=trace,
            trace_parent=trace_parent,
            trace_owned=trace_owned,
        )
        with self._condition:
            if self._closed:
                raise BatcherClosed("batcher is closed")
            self._queue.append(request)
            self._condition.notify_all()
        return request

    @property
    def pending(self) -> int:
        with self._condition:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------
    def next_wave(self, poll_timeout: Optional[float] = None) -> List[ScoreRequest]:
        """Block for the next wave of coalesced requests (FIFO prefix).

        Returns an empty list when ``poll_timeout`` elapses with an empty
        queue, or when the batcher was closed and fully drained — dispatcher
        loops use the empty return to check for shutdown / idle work.

        The wave is the longest queue prefix whose node rows fit in
        ``max_batch_size`` (always at least one request, so an oversized
        single request still ships).  When the prefix is short of the limit,
        the call lingers to let stragglers coalesce — but dispatches early
        the moment the queue stops growing: ``max_wait_ms`` is the *worst
        case* added latency, paid only while requests keep trickling in, not
        a fixed tax on every wave.
        """
        with self._condition:
            if not self._queue:
                if self._closed:
                    return []
                self._condition.wait(poll_timeout)
                if not self._queue:
                    return []
            # Linger for stragglers until the head request's deadline, until
            # the prefix fills the wave, or until one stability window
            # passes with no new arrivals (a concurrent burst lands within
            # microseconds of itself; waiting out the full deadline after it
            # stopped would only add latency).
            wait_s = self._current_wait_s if self.adaptive_wait else self.max_wait_s
            deadline = self._queue[0].enqueued_at + wait_s
            stability_window = max(wait_s / 8.0, 1e-4)
            while not self._closed:
                if self._prefix_nodes() >= self.max_batch_size:
                    break
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                length_before = len(self._queue)
                self._condition.wait(min(remaining, stability_window))
                if len(self._queue) == length_before:
                    break
            length = self._wave_prefix_length()
            wave = self._queue[:length]
            del self._queue[:length]
            if self.adaptive_wait and wave:
                self._adapt_wait_locked(sum(r.num_nodes for r in wave))
            self._condition.notify_all()
        started = self._clock()
        for request in wave:
            request.started_at = started
        return wave

    def _adapt_wait_locked(self, wave_nodes: int) -> None:
        """Move the effective linger after one dispatched wave.

        Caller holds ``_condition``.  Full wave → halve (approaches 0 but
        never reaches it, so a traffic lull still gets a nonzero linger to
        recover from); at most half-full → double back toward the
        ``max_wait_s`` cap, restarting from ``max_wait_s / 64`` when the
        wait has decayed below that.  Waves in between leave it unchanged.
        """
        if wave_nodes >= self.max_batch_size:
            self._current_wait_s /= 2.0
        elif wave_nodes <= self.max_batch_size // 2:
            floor = self.max_wait_s / 64.0
            self._current_wait_s = min(
                self.max_wait_s, max(self._current_wait_s, floor) * 2.0
            )

    @property
    def current_wait_ms(self) -> float:
        """Effective linger in ms (== ``max_wait_ms`` when not adaptive)."""
        with self._condition:
            wait_s = self._current_wait_s if self.adaptive_wait else self.max_wait_s
        return wait_s * 1000.0

    def _prefix_nodes(self) -> int:
        """Node rows carried by the head prefix.  Caller holds ``_condition``."""
        total = 0
        for request in self._queue:
            total += request.num_nodes
            if total >= self.max_batch_size:
                break
        return total

    def _wave_prefix_length(self) -> int:
        """Number of head requests whose rows fit one wave (min. one).

        Caller holds ``_condition``.
        """
        total = 0
        length = 0
        for request in self._queue:
            if length > 0 and total + request.num_nodes > self.max_batch_size:
                break
            total += request.num_nodes
            length += 1
            if total >= self.max_batch_size:
                break
        return length

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, reject_pending: bool = False) -> int:
        """Refuse new submissions.  Pending requests are still dispatchable
        (the service drains them) unless ``reject_pending`` is set, in which
        case they fail immediately with :class:`BatcherClosed`.  Returns the
        number of rejected requests (0 when keeping them dispatchable)."""
        with self._condition:
            self._closed = True
            if reject_pending:
                pending, self._queue = self._queue, []
            else:
                pending = []
            self._condition.notify_all()
        for request in pending:
            request._reject(BatcherClosed("batcher closed before dispatch"))
        return len(pending)

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed
