"""Shard planner: partition a graph into halo-padded serving shards.

The cluster serving layer (:class:`repro.serving.cluster.ShardRouter`) runs
one :class:`repro.serving.DetectionService` per shard.  Each shard *owns* a
subset of centers (the nodes it may be asked to score) and carries a local
copy of the graph whose edges are restricted to its **closure** — the owned
nodes plus a halo of boundary neighbors — so subgraph construction never
reads edges the shard doesn't have.

The contract the planner guarantees is the serving bit-identity invariant,
extended to shards: scoring an owned center against the shard-local graph
must produce *exactly* the rows a single full-graph session would, at the
same batching.  Three properties make that hold, and :func:`plan_shards`
verifies the data-dependent ones instead of assuming a fixed halo depth is
enough:

1. **Embeddings** — shard graphs keep the full node space and a full copy
   of the feature matrix, so the preclassifier's hidden representations are
   computed from bitwise-identical input (no row slicing, no remapping).
2. **PPR equality** — for every relation, the push-PPR rows of every owned
   center on the shard-local symmetrized adjacency must equal the rows on
   the full symmetrized adjacency bit-for-bit.  A boundary node with a
   truncated neighbor list has a smaller local degree, which perturbs both
   the push threshold and the transition row; the halo exists to push that
   truncation beyond the reach of any owned center's push.
3. **Support containment** — the union of nonzero PPR columns of owned
   centers must lie inside the closure, so every top-k member set is a
   closure subset and the induced adjacency blocks
   (``adjacency[members][:, members]``) are identical locally and globally
   (the local graph keeps *every* edge incident to the closure).

When verification fails for a shard, the planner widens that shard's halo
by one BFS hop and retries — terminating in the worst case when the closure
covers the component and the local graph degenerates to the full one.

Ownership itself comes from :func:`repro.sampling.clustering.greedy_partition`
(the ClusterGCN-style BFS partitioner), which keeps most edges inside parts
so halos stay thin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.graph import HeteroGraph
from repro.ppr.batch import multi_source_ppr
from repro.sampling.clustering import greedy_partition


@dataclass
class ShardSpec:
    """One shard: owned centers, halo closure, and the local graph."""

    shard_id: int
    #: Sorted global ids of the centers this shard scores.
    owned: np.ndarray
    #: Sorted global ids of owned ∪ halo; the local graph keeps every edge
    #: incident to this set.
    closure: np.ndarray
    #: BFS hops of halo this shard needed to pass verification.
    halo_hops: int
    #: Full-node-space graph whose relations hold only closure-incident
    #: edges.  Node ids are global everywhere — no remapping.
    graph: HeteroGraph
    #: Membership mask over the full node space (``mask[closure] == True``).
    closure_mask: np.ndarray = field(repr=False, default=None)

    @property
    def num_owned(self) -> int:
        return int(self.owned.size)

    @property
    def halo_size(self) -> int:
        return int(self.closure.size - self.owned.size)


@dataclass
class ShardPlan:
    """Partition of a graph into verified serving shards."""

    num_shards: int
    #: ``ownership[node]`` is the shard id that scores ``node``.
    ownership: np.ndarray
    shards: List[ShardSpec]
    seed: int
    #: Planner parameters the verification ran with (from the detector
    #: config at routing time) — kept for re-verification after deltas.
    ppr_alpha: float = 0.15
    ppr_epsilon: float = 1e-4
    verified: bool = False

    def shard_of(self, nodes: np.ndarray) -> np.ndarray:
        return self.ownership[nodes]

    def stats(self) -> Dict[str, object]:
        """JSON-friendly partition summary (sizes, halo widths, locality)."""
        return {
            "num_shards": self.num_shards,
            "seed": self.seed,
            "verified": self.verified,
            "owned_sizes": [spec.num_owned for spec in self.shards],
            "halo_sizes": [spec.halo_size for spec in self.shards],
            "halo_hops": [spec.halo_hops for spec in self.shards],
            "local_edge_fractions": [
                round(
                    spec.graph.num_edges
                    / max(int(spec.graph.metadata.get("full_num_edges", 0)), 1),
                    4,
                )
                for spec in self.shards
            ],
        }

    def verify(self, graph: HeteroGraph) -> None:
        """Re-check the bit-identity contract of every shard against ``graph``.

        Raises :class:`ShardPlanError` on the first violated shard.  Used at
        plan time (via :func:`plan_shards`) and re-callable after streaming
        deltas to assert the halo still contains every owned center's push
        reach.
        """
        full_sym = _symmetrized_relations(graph)
        for spec in self.shards:
            failure = _verify_shard(
                spec, full_sym, self.ppr_alpha, self.ppr_epsilon
            )
            if failure is not None:
                raise ShardPlanError(
                    f"shard {spec.shard_id} violates the halo contract: {failure}"
                )


class ShardPlanError(RuntimeError):
    """A shard plan failed the bit-identity verification."""


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def _symmetrized_relations(graph: HeteroGraph) -> Dict[str, sp.csr_matrix]:
    """Per-relation symmetrized adjacency — exactly what the builders push on."""
    out: Dict[str, sp.csr_matrix] = {}
    for name in graph.relation_names:
        adjacency = graph.relation(name).adjacency()
        sym = (adjacency + adjacency.T).tocsr()
        sym.data[:] = 1.0
        out[name] = sym
    return out


def _expand_closure(
    merged: sp.csr_matrix, owned_mask: np.ndarray, hops: int
) -> np.ndarray:
    """Boolean mask of nodes within ``hops`` BFS steps of ``owned_mask``."""
    closure = owned_mask.copy()
    frontier = owned_mask.copy()
    for _ in range(hops):
        rows = np.flatnonzero(frontier)
        if rows.size == 0:
            break
        reached = np.asarray(merged[rows].sum(axis=0)).ravel() > 0
        frontier = reached & ~closure
        closure |= reached
        if not frontier.any():
            break
    return closure


def _local_graph(
    graph: HeteroGraph, closure_mask: np.ndarray, shard_id: int
) -> HeteroGraph:
    """Full-node-space copy of ``graph`` keeping closure-incident edges only.

    Features/labels/masks are *copies*: each shard's session owns its
    feature matrix, so streaming feature deltas applied by one shard's
    dispatcher never race another shard's reads.
    """
    relations: Dict[str, tuple] = {}
    for name in graph.relation_names:
        rel = graph.relation(name)
        keep = closure_mask[rel.src] | closure_mask[rel.dst]
        relations[name] = (rel.src[keep].copy(), rel.dst[keep].copy())
    return HeteroGraph(
        num_nodes=graph.num_nodes,
        features=graph.features.copy(),
        labels=graph.labels.copy(),
        relations=relations,
        train_mask=graph.train_mask.copy(),
        val_mask=graph.val_mask.copy(),
        test_mask=graph.test_mask.copy(),
        name=f"{graph.name}-shard{shard_id}",
        metadata={
            **graph.metadata,
            "shard_id": shard_id,
            "full_num_edges": graph.num_edges,
        },
    )


def _verify_shard(
    spec: ShardSpec,
    full_sym: Dict[str, sp.csr_matrix],
    alpha: float,
    epsilon: float,
) -> Optional[str]:
    """One shard's bit-identity check; returns a failure description or None.

    Per relation: (a) push-PPR rows of every owned center must be exactly
    equal on the local and the full symmetrized adjacency, and (b) the
    nonzero-column support of those rows must lie inside the closure.
    Equal rows + contained support imply equal candidate sets, equal top-k
    member sets, and equal induced adjacency blocks — the whole per-center
    subgraph pipeline, hence (with identical embeddings and weights) equal
    scores at equal batching.
    """
    sources = spec.owned
    if sources.size == 0:
        return None
    local_sym = _symmetrized_relations(spec.graph)
    for name, full in full_sym.items():
        reference = multi_source_ppr(full, sources, alpha=alpha, epsilon=epsilon)
        local = multi_source_ppr(local_sym[name], sources, alpha=alpha, epsilon=epsilon)
        if (reference != local).nnz != 0:
            return f"PPR rows diverge on relation {name!r}"
        support = np.unique(reference.indices)
        if support.size and not spec.closure_mask[support].all():
            outside = int((~spec.closure_mask[support]).sum())
            return (
                f"PPR support escapes the closure on relation {name!r} "
                f"({outside} node(s) outside)"
            )
    return None


def plan_shards(
    graph: HeteroGraph,
    num_shards: int,
    *,
    halo_hops: int = 1,
    ppr_alpha: float = 0.15,
    ppr_epsilon: float = 1e-4,
    seed: int = 0,
    verify: bool = True,
    max_halo_hops: int = 16,
) -> ShardPlan:
    """Partition ``graph`` into ``num_shards`` verified serving shards.

    ``ppr_alpha`` / ``ppr_epsilon`` must match the detector config the
    shards will serve with (:class:`ShardRouter` reads them from the
    artifact manifest) — the verification pushes with exactly those
    parameters.  ``halo_hops`` is the *starting* halo width; shards that
    fail verification widen their own halo hop by hop up to
    ``max_halo_hops`` before the closure saturates to the full node set.

    With ``verify=False`` the plan is built structurally only (useful for
    very large graphs where the operator has verified a representative
    sample); the bit-identity contract then rests on the chosen
    ``halo_hops`` alone and :meth:`ShardPlan.verify` can be run later.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if halo_hops < 0:
        raise ValueError("halo_hops must be non-negative")
    merged = graph.merged_adjacency(symmetric=True)
    ownership = greedy_partition(merged, num_shards, seed=seed)
    full_sym = _symmetrized_relations(graph) if verify else {}
    shards: List[ShardSpec] = []
    for shard_id in range(num_shards):
        owned = np.flatnonzero(ownership == shard_id)
        owned_mask = ownership == shard_id
        hops = halo_hops
        while True:
            closure_mask = _expand_closure(merged, owned_mask, hops)
            spec = ShardSpec(
                shard_id=shard_id,
                owned=owned,
                closure=np.flatnonzero(closure_mask),
                halo_hops=hops,
                graph=_local_graph(graph, closure_mask, shard_id),
                closure_mask=closure_mask,
            )
            if not verify:
                break
            failure = _verify_shard(spec, full_sym, ppr_alpha, ppr_epsilon)
            if failure is None:
                break
            if hops >= max_halo_hops or closure_mask.all():
                raise ShardPlanError(
                    f"shard {shard_id} still fails at halo_hops={hops}: {failure}"
                )
            hops += 1
        shards.append(spec)
    return ShardPlan(
        num_shards=num_shards,
        ownership=ownership,
        shards=shards,
        seed=seed,
        ppr_alpha=ppr_alpha,
        ppr_epsilon=ppr_epsilon,
        verified=bool(verify),
    )
