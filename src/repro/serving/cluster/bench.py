"""Cluster benchmark core: scoring throughput vs shard count.

Shared by ``benchmarks/bench_cluster.py`` (which writes
``BENCH_cluster.json`` for the perf trajectory) and the CI perf gate
(which ratchets the headline ``cluster_throughput_scaling`` ratio).  The
workload is the horizontal-scaling scenario the cluster layer exists for:
many concurrent clients scoring small node lists against one fitted
BSG4Bot, served first by a single-shard router, then by progressively
wider shard ladders over the *same* artifact and the *same* offered load.

Traffic is **partition-local**: each client's nodes are drawn from one
shard's owned set (the greedy partition groups graph communities, and real
scoring traffic clusters by community — the accounts interacting with a
suspected botnet live in its neighborhood).  This is the load pattern
horizontal sharding serves: requests route whole to their shard, shards
fill their own waves, and wave execution — whose cost is dominated by
numpy/BLAS kernels that release the GIL — overlaps across shard
dispatcher threads.  The headline ratio is

    cluster_throughput_scaling = throughput(max shards) / throughput(1 shard)

**This ratio can only exceed 1.0 on a multi-core host.**  Sharding one
process never reduces the total work per request (that is the point: the
shards compute bit-identically what one session would); it buys the right
to execute waves concurrently.  On a single available CPU the ratio's
ceiling is ~1.0 minus fan-out overhead, so the result records
``available_cpus`` and callers pick the floor accordingly (see
``benchmarks/bench_cluster.py``): ≥2 cores must show real scaling, one
core must show *bounded sharding overhead*.

Correctness rides along exactly like the single-service benchmark: every
recorded wave on every shard must replay **bit-identically** through a
serial full-graph ``score_nodes`` call (the shard halo contract), one
streaming update must fan out with read-your-writes, and the final
teardown must leave no dispatcher threads, no shared pool, and no
shared-memory segments.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import api
from repro.datasets import load_benchmark
from repro.sampling import biased
from repro.serving.bench import _drive_clients
from repro.serving.cluster.planner import plan_shards
from repro.serving.cluster.router import ShardRouter

#: Deliberately light training schedule — the benchmark measures request
#: handling, not fitting — but a wide enough hidden layer that the per-wave
#: forward spends real time inside GIL-releasing BLAS kernels (that is the
#: overlap horizontal sharding buys on one process).
DEFAULT_OVERRIDES = {
    "pretrain_epochs": 20,
    "pretrain_hidden_dim": 32,
    "hidden_dim": 64,
    "subgraph_k": 8,
    "max_epochs": 4,
    "min_epochs": 1,
    "patience": 2,
    "batch_size": 64,
}


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-linux
        return os.cpu_count() or 1


def _partition_local_workload(
    rng: np.random.Generator,
    ownership: np.ndarray,
    num_shards: int,
    clients: int,
    requests_per_client: int,
    nodes_per_request: int,
) -> List[List[np.ndarray]]:
    """Each client's requests stay inside one shard's owned node set.

    Clients round-robin over the shards of the *widest* rung, so every
    rung sees the same byte-identical request stream: the 1-shard rung
    serves it all from one dispatcher, wider rungs split it by ownership
    without fragmenting any single request.
    """
    owned_sets = [
        np.flatnonzero(ownership == shard_id) for shard_id in range(num_shards)
    ]
    return [
        [
            rng.choice(owned_sets[client % num_shards], size=nodes_per_request)
            .astype(np.int64)
            for _ in range(requests_per_client)
        ]
        for client in range(clients)
    ]


def run_cluster_benchmark(
    num_users: int = 400,
    shard_ladder: Sequence[int] = (1, 2),
    clients: int = 16,
    requests_per_client: int = 16,
    nodes_per_request: int = 4,
    max_batch_size: int = 64,
    max_wait_ms: float = 6.0,
    seed: int = 0,
    repeats: int = 2,
    min_scaling: Optional[float] = None,
    overrides: Optional[Dict[str, object]] = None,
    artifact_dir: Optional[Path] = None,
    dataset: str = "mgtab",
) -> Dict[str, object]:
    """Run the shard-scaling benchmark; returns the JSON-ready result dict.

    Each rung drives the workload once untimed (warming the replay
    engine's shape buckets and the OS scheduler) and then ``repeats``
    timed passes, keeping the best — shared runners are noisy and the
    headline is a *ratio* of two wall-clock numbers.

    ``min_scaling`` (when given) turns the headline ratio into an
    assertion: throughput at the widest rung must be at least that multiple
    of the single-shard rung, else ``AssertionError`` — how CI keeps the
    horizontal-scaling claim honest.  The per-shard wave bit-identity
    replay and the leak-free teardown always assert.
    """
    shard_ladder = sorted(set(int(count) for count in shard_ladder))
    if shard_ladder[0] != 1:
        raise ValueError("shard_ladder must include the 1-shard baseline rung")
    if dataset == "synthetic":
        # The adapter-backed generator reaches node counts the bundled
        # benchmarks can't, with ground-truth labels for free.
        from repro.datasets.adapters import SyntheticBotnetAdapter

        graph = SyntheticBotnetAdapter(
            num_users=num_users, num_communities=max(4, num_users // 100),
            avg_degree=6.0, seed=seed,
        ).ingest()
    elif dataset == "mgtab":
        graph = load_benchmark(
            "mgtab", num_users=num_users, tweets_per_user=8, seed=seed
        ).graph
    else:
        raise ValueError(f"unknown benchmark dataset {dataset!r} (mgtab|synthetic)")
    detector = api.create_detector(
        {
            "name": "bsg4bot",
            "scale": None,
            "seed": seed,
            "overrides": dict(overrides if overrides is not None else DEFAULT_OVERRIDES),
        }
    )
    train_started = time.perf_counter()
    detector.fit(graph)
    train_s = time.perf_counter() - train_started

    # Partition-local workload, drawn against the widest rung's ownership
    # (plan_shards is deterministic in (graph, num_shards, seed), so the
    # widest rung's router recomputes the identical partition).
    rng = np.random.default_rng(seed + 1)
    ownership = plan_shards(graph, shard_ladder[-1], seed=seed, verify=False).ownership
    workload = _partition_local_workload(
        rng, ownership, shard_ladder[-1], clients, requests_per_client,
        nodes_per_request,
    )
    # Pre-build every requested center before the artifact is written: the
    # saved store then warm-starts every shard on every rung, so no rung
    # pays cold subgraph construction inside its timed window.
    requested = np.unique(np.concatenate([n for per in workload for n in per]))
    detector.predict_proba_nodes(requested)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as scratch:
        root = Path(artifact_dir) if artifact_dir is not None else Path(scratch)
        artifact = api.save_detector(detector, root / "artifact")

        ladder: List[Dict[str, object]] = []
        bit_identical_waves = 0
        for num_shards in shard_ladder:
            router = ShardRouter.from_artifact(
                artifact,
                graph=graph,
                num_shards=num_shards,
                seed=seed,
                release_pool_on_close=False,
                max_batch_size=max_batch_size,
                max_wait_ms=max_wait_ms,
                record_waves=True,
            )
            try:
                call = lambda nodes: router.score(nodes, timeout=60.0)  # noqa: E731
                _drive_clients(workload, call)  # warmup: replay buckets, caches
                entry = max(
                    (_drive_clients(workload, call) for _ in range(max(repeats, 1))),
                    key=lambda run: run["throughput_rps"],
                )
                # One streaming update mid-semantics check: the fan-out must
                # acknowledge on every shard it touches (read-your-writes).
                node = int(requested[0])
                sequences = router.submit_update(
                    features_changed={node: graph.features[node].copy()}
                )
                assert sequences, "feature delta fanned out to no shard"
                router.drain()
                snapshot = router.snapshot()
                entry.update(
                    num_shards=num_shards,
                    waves=snapshot["cluster_totals"]["waves"],
                    batch_occupancy=(
                        snapshot["cluster_totals"]["wave_nodes"]
                        / max(snapshot["cluster_totals"]["waves"], 1)
                    ),
                    delta_shards_touched=len(sequences),
                    plan=snapshot["plan"],
                )
                ladder.append(entry)
                # Per-shard halo contract: every wave every shard executed
                # replays bit-identically through serial full-graph scoring
                # (the one delta above rewrote a feature row with its
                # current value, changing nothing — one oracle covers the
                # whole rung).
                oracle = api.DetectionSession(detector, graph)
                try:
                    for service in router.services:
                        for wave_nodes, wave_probabilities, _ in service.wave_log:
                            reference = oracle.score_nodes(wave_nodes)
                            assert np.array_equal(reference, wave_probabilities), (
                                f"sharded wave diverged from serial scoring "
                                f"at {num_shards} shard(s)"
                            )
                            bit_identical_waves += 1
                finally:
                    oracle.close(release_pool=False)
            finally:
                router.close()
            for service in router.services:
                assert not service._thread.is_alive(), (
                    "dispatcher thread survived router close()"
                )

    # End-of-run teardown: nothing may linger once the shared pool goes.
    biased.shutdown_shared_pool()
    assert biased._shared_pool is None, "shared pool survived shutdown"
    assert not biased._shared_payload_registry, "shared segments survived shutdown"

    baseline = ladder[0]
    widest = ladder[-1]
    scaling = widest["throughput_rps"] / baseline["throughput_rps"]
    result: Dict[str, object] = {
        "scale": {
            "benchmark": dataset,
            "num_users": num_users,
            "num_nodes": int(graph.num_nodes),
            "clients": clients,
            "requests_per_client": requests_per_client,
            "nodes_per_request": nodes_per_request,
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
            "seed": seed,
            "partition_local": True,
        },
        "available_cpus": available_cpus(),
        "train_s": train_s,
        "shard_ladder": ladder,
        "cluster_throughput_scaling": scaling,
        "bit_identical_waves": bit_identical_waves,
    }
    if min_scaling is not None:
        assert scaling >= min_scaling, (
            f"{widest['num_shards']}-shard throughput is only {scaling:.2f}x "
            f"the 1-shard baseline (required >= {min_scaling:g}x on "
            f"{result['available_cpus']} CPU(s))"
        )
    return result


def default_min_scaling(cpus: Optional[int] = None) -> float:
    """Host-aware acceptance floor for the scaling ratio.

    On ≥2 CPUs shard dispatchers genuinely overlap, so the widest rung must
    *beat* the single-shard baseline.  On one CPU the ceiling is ~1.0 by
    conservation of work (same waves, one core), so the claim the floor can
    honestly enforce is *bounded sharding overhead*: fan-out, fan-in, and
    GIL handoff between dispatchers may not cost more than ~40% of baseline
    throughput.
    """
    cpus = available_cpus() if cpus is None else cpus
    return 1.05 if cpus >= 2 else 0.60


def format_result(result: Dict[str, object]) -> str:
    """Human-readable summary (benchmark stdout)."""
    scale = result["scale"]
    lines = [
        f"graph: {scale['benchmark']} ({scale['num_nodes']} nodes), "
        f"{scale['clients']} clients x {scale['requests_per_client']} "
        f"partition-local requests, batch<={scale['max_batch_size']}, "
        f"wait<={scale['max_wait_ms']}ms, {result['available_cpus']} cpu(s)"
    ]
    for entry in result["shard_ladder"]:
        plan = entry["plan"]
        lines.append(
            f"{entry['num_shards']:>2} shard(s): {entry['throughput_rps']:>8.1f} req/s   "
            f"p50 {entry['p50_ms']:>7.2f}ms  p99 {entry['p99_ms']:>7.2f}ms   "
            f"occupancy {entry['batch_occupancy']:.1f} rows/wave "
            f"({entry['waves']} waves, halos {plan['halo_hops']})"
        )
    lines.append(
        f"scaling at {result['shard_ladder'][-1]['num_shards']} shards: "
        f"{result['cluster_throughput_scaling']:.2f}x the 1-shard baseline "
        f"({result['bit_identical_waves']} waves replayed bit-identically)"
    )
    if result["available_cpus"] < 2:
        lines.append(
            "note: single available CPU — shard dispatchers cannot overlap, "
            "so the ratio's ceiling here is ~1.0 (the floor checks bounded "
            "sharding overhead; run on >=2 cores to express real scaling)"
        )
    return "\n".join(lines)
