"""``repro.serving.cluster`` — horizontally sharded serving.

Three layers on top of :class:`repro.serving.DetectionService`:

* :func:`plan_shards` / :class:`ShardPlan` — partition the graph by center
  ownership (:func:`repro.sampling.clustering.greedy_partition`) with a
  verified halo of boundary neighbors per shard, so every owned center's
  subgraph construction is fully local and bit-identical to the full graph.
* :class:`ShardRouter` — N per-shard services behind one ``score`` /
  ``submit_update`` API: fan-out by ownership, fan-in in caller order,
  delta routing by closure incidence with per-shard read-your-writes.
* :class:`ClusterHTTPServer` / :func:`run_server` — the asyncio HTTP/JSON
  front door (``/score``, ``/update``, ``/healthz``, ``/metrics``) with
  bounded admission, wired to the ``repro serve`` CLI.

.. code-block:: python

    from repro.serving.cluster import ShardRouter

    with ShardRouter.from_artifact("artifacts/bsg4bot-mgtab", num_shards=4) as router:
        probabilities = router.score([17, 42, 108])   # fans out by ownership
        router.submit_update(edges_added={"followers": ([17], [42])})
        probabilities = router.score([17])            # sees the new edge
"""

from repro.serving.cluster.bench import run_cluster_benchmark
from repro.serving.cluster.http import ClusterHTTPServer, run_server
from repro.serving.cluster.planner import (
    ShardPlan,
    ShardPlanError,
    ShardSpec,
    plan_shards,
)
from repro.serving.cluster.router import ClusterRequest, ShardRouter

__all__ = [
    "ClusterHTTPServer",
    "ClusterRequest",
    "ShardPlan",
    "ShardPlanError",
    "ShardRouter",
    "ShardSpec",
    "plan_shards",
    "run_cluster_benchmark",
    "run_server",
]
