"""``ShardRouter``: fan-out/fan-in front of N per-shard detection services.

The router owns one :class:`repro.serving.DetectionService` per shard of a
:class:`repro.serving.cluster.ShardPlan`.  Scoring splits a request's nodes
by center ownership, submits each slice to its shard's micro-batcher (all
slices are in flight concurrently — each shard has its own dispatcher
thread), and scatters the per-shard rows back into the caller's node order.
Updates fan out to every shard whose closure the delta touches, sequenced
through each shard's :class:`repro.serving.DeltaLog`, so read-your-writes
survives sharding: once :meth:`ShardRouter.submit_update` returns, every
subsequent score on any shard is served at a log prefix that includes the
delta on that shard.

Construction from one artifact (:meth:`ShardRouter.from_artifact`) plans
the shards with the artifact's own PPR parameters, then loads one detector
copy per shard bound to that shard's local graph — the artifact's saved
subgraph store warm-starts every shard (stores are keyed by global node
ids, which shard graphs preserve).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sanitizer import tracked_rlock
from repro.api import load_detector, read_manifest
from repro.api.session import validate_edge_additions, validate_feature_rows
from repro.graph import HeteroGraph
from repro.obs.registry import MetricFamily, MetricsRegistry, global_registry
from repro.obs.trace import ROOT_SPAN_ID, Trace, Tracer
from repro.serving.cluster.planner import ShardPlan, plan_shards
from repro.serving.metrics import aggregate_serving_metrics
from repro.serving.service import DetectionService, ServiceClosed


class ClusterRequest:
    """Fan-out handle: one pending score split across shard sub-requests."""

    __slots__ = ("num_nodes", "_parts", "delta_seqs", "trace", "_trace_owned")

    def __init__(
        self,
        num_nodes: int,
        parts: List[Tuple[int, np.ndarray, "object", Optional[int], float]],
        trace: Optional[Trace] = None,
        trace_owned: bool = False,
    ) -> None:
        self.num_nodes = num_nodes
        #: ``(shard_id, positions, handle, leg_span_id, submitted_at)``
        #: tuples; ``positions`` are the caller-order row indices the
        #: shard's rows scatter back into, ``leg_span_id`` the reserved span
        #: this leg records once its handle resolves.
        self._parts = parts
        #: shard id -> delta-log prefix its slice was served at (filled by
        #: :meth:`result`).
        self.delta_seqs: Dict[int, int] = {}
        #: The request's trace (one trace covers every shard leg); owned
        #: means :meth:`result` finishes it (the direct ``router.score``
        #: path — the HTTP front door keeps ownership of its own traces).
        self.trace = trace
        self._trace_owned = bool(trace_owned)

    def result(self, timeout: Optional[float] = 60.0) -> np.ndarray:
        """Block for every shard slice; rows come back in caller order."""
        deadline = None if timeout is None else time.monotonic() + timeout
        output: Optional[np.ndarray] = None
        for shard_id, positions, handle, leg_span, submitted_at in self._parts:
            remaining = None if deadline is None else max(deadline - time.monotonic(), 0.0)
            rows = handle.result(remaining)
            if output is None:
                output = np.empty((self.num_nodes, rows.shape[1]), dtype=rows.dtype)
            output[positions] = rows
            self.delta_seqs[shard_id] = handle.delta_seq
            if self.trace is not None and leg_span is not None:
                self.trace.record_span(
                    leg_span,
                    "shard_leg",
                    submitted_at,
                    time.monotonic() - submitted_at,
                    ROOT_SPAN_ID,
                    {"shard": int(shard_id), "nodes": int(positions.size)},
                )
        if output is None:
            output = np.zeros((0, 2))
        if self._trace_owned and self.trace is not None:
            self._trace_owned = False  # finish exactly once
            tracer = self.trace.tracer
            if tracer is not None:
                tracer.finish_trace(self.trace)
        return output


class ShardRouter:
    """Horizontally sharded scoring: N services behind one score/update API."""

    def __init__(
        self,
        plan: ShardPlan,
        services: Sequence[DetectionService],
        *,
        graph: Optional[HeteroGraph] = None,
        release_pool_on_close: bool = True,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if len(services) != plan.num_shards:
            raise ValueError(
                f"plan has {plan.num_shards} shard(s) but {len(services)} "
                "service(s) were provided"
            )
        self.plan = plan
        self.services = list(services)
        #: Validation reference for updates (num_nodes / relation names /
        #: feature width are shard-invariant).  Falls back to shard 0's
        #: local graph when the planner's source graph wasn't kept.
        self.graph = graph if graph is not None else plan.shards[0].graph
        #: One tracer for the whole cluster: a trace started here (or handed
        #: in by the HTTP front door) covers every shard leg.
        self.tracer = tracer if tracer is not None else Tracer.from_env()
        self._release_pool_on_close = release_pool_on_close
        self._lock = tracked_rlock("ShardRouter._lock")
        self._closed = False  # guarded-by: _lock
        self._requests = 0  # guarded-by: _lock
        self._updates = 0  # guarded-by: _lock
        self._started_at = time.monotonic()
        # The router owns cluster exposition: per-shard families labeled
        # ``shard=<id>`` plus router-level counters, all behind one
        # collector — shard services' own collectors are withdrawn so the
        # same counters never appear twice.
        self.registry = registry if registry is not None else global_registry()
        for service in self.services:
            # Duck-typed: router tests stub out services without exposition.
            withdraw = getattr(service, "unregister_metrics", None)
            if withdraw is not None:
                withdraw()
        self._registry_key: Optional[str] = f"cluster:{id(self):x}"
        self.registry.register(self._registry_key, self._collect_metric_families)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(
        cls,
        path,
        graph: Optional[HeteroGraph] = None,
        *,
        num_shards: int = 2,
        halo_hops: int = 1,
        seed: int = 0,
        verify: bool = True,
        release_pool_on_close: bool = True,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        **service_kwargs,
    ) -> "ShardRouter":
        """Plan shards for ``graph`` and load one service per shard.

        Without ``graph``, the artifact's dataset provenance is replayed —
        the same convention as :meth:`DetectionService.from_artifact`.  The
        shard plan verifies PPR locality with the artifact's own
        ``ppr_alpha`` / ``ppr_epsilon``, so the halo contract matches what
        the loaded detectors will actually push.  ``service_kwargs`` pass
        through to every per-shard :class:`DetectionService` (batching,
        replay, recording).
        """
        manifest = read_manifest(path)
        if graph is None:
            dataset = manifest.get("dataset")
            if not dataset:
                raise ValueError(
                    "artifact has no dataset provenance; pass the serving "
                    "graph explicitly: ShardRouter.from_artifact(path, graph=...)"
                )
            from repro.datasets import resolve_dataset_graph

            graph = resolve_dataset_graph(dataset)
        config = manifest.get("config", {})
        plan = plan_shards(
            graph,
            num_shards,
            halo_hops=halo_hops,
            ppr_alpha=float(config.get("ppr_alpha", 0.15)),
            ppr_epsilon=float(config.get("ppr_epsilon", 1e-4)),
            seed=seed,
            verify=verify,
        )
        services: List[DetectionService] = []
        try:
            for spec in plan.shards:
                detector = load_detector(path, graph=spec.graph)
                services.append(
                    DetectionService(
                        detector,
                        spec.graph,
                        release_pool_on_close=False,
                        register_metrics=False,
                        **service_kwargs,
                    )
                )
        except BaseException:
            for service in services:
                service.close(drain=False)
            raise
        return cls(
            plan,
            services,
            graph=graph,
            release_pool_on_close=release_pool_on_close,
            tracer=tracer,
            registry=registry,
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def submit(
        self, nodes: Sequence[int], trace: Optional[Trace] = None
    ) -> ClusterRequest:
        """Fan a score request out by center ownership; returns the handle.

        Each shard slice preserves the caller's relative node order, so a
        single-shard request coalesces into its shard's waves exactly like
        a direct :meth:`DetectionService.submit` would.

        A caller-owned ``trace`` (the HTTP front door's) rides through the
        fan-out: each shard leg gets a reserved span the handle records at
        fan-in, and the per-shard queue/wave spans parent to it — one trace
        covers every leg.  Without one, an armed ``self.tracer`` starts a
        router-owned trace that :meth:`ClusterRequest.result` finishes.
        """
        array = np.asarray(
            nodes if isinstance(nodes, np.ndarray) else list(nodes)
        ).astype(np.int64).ravel()
        if array.size and (array.min() < 0 or array.max() >= self.graph.num_nodes):
            raise ValueError("node id out of range for the cluster graph")
        with self._lock:
            if self._closed:
                raise ServiceClosed("cluster router is closed")
            self._requests += 1
        trace_owned = False
        if trace is None and self.tracer is not None:
            trace = self.tracer.start_trace(
                "score", attributes={"num_nodes": int(array.size)}
            )
            trace_owned = trace is not None
        parts: List[Tuple[int, np.ndarray, object, Optional[int], float]] = []
        if array.size:
            route_started = time.monotonic()
            owners = self.plan.shard_of(array)
            unique_shards = np.unique(owners)
            for shard_id in unique_shards:
                positions = np.flatnonzero(owners == shard_id)
                submitted_at = time.monotonic()
                if trace is not None:
                    leg_span = trace.allocate_span()
                    handle = self.services[int(shard_id)].submit(
                        array[positions], trace=trace, trace_parent=leg_span
                    )
                else:
                    # Positional call keeps duck-typed (stub) services working.
                    leg_span = None
                    handle = self.services[int(shard_id)].submit(array[positions])
                parts.append(
                    (int(shard_id), positions, handle, leg_span, submitted_at)
                )
            if trace is not None:
                trace.add_span(
                    "route",
                    route_started,
                    time.monotonic() - route_started,
                    parent_id=ROOT_SPAN_ID,
                    shards=int(unique_shards.size),
                )
        return ClusterRequest(
            int(array.size), parts, trace=trace, trace_owned=trace_owned
        )

    def score(
        self, nodes: Sequence[int], timeout: Optional[float] = 60.0
    ) -> np.ndarray:
        """Bot probabilities for ``nodes`` (blocking fan-out/fan-in)."""
        return self.submit(nodes).result(timeout)

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------
    def submit_update(
        self,
        edges_added: Optional[Mapping[str, Tuple[Iterable[int], Iterable[int]]]] = None,
        features_changed: Optional[Mapping[int, Iterable[float]]] = None,
        trace: Optional[Trace] = None,
    ) -> Dict[int, int]:
        """Route a delta to every shard it touches; returns shard -> seq.

        Edge additions go to each shard whose closure contains either
        endpoint — exactly the shards whose local graphs keep that edge
        under the closure-incidence invariant.  Feature rows go to *every*
        shard (each shard owns a full feature copy; rows must stay
        consistent everywhere a future subgraph might read them).  Each
        touched shard sequences the delta through its own
        :class:`repro.serving.DeltaLog`, so scores submitted after this
        call returns see it on whichever shard serves them.

        A caller-owned ``trace`` (the HTTP front door's) gets
        ``delta_validate`` and per-shard ``delta_route`` spans; ownership
        stays with the caller (updates resolve synchronously, so no handle
        needs to finish anything).
        """
        with self._lock:
            if self._closed:
                raise ServiceClosed("cluster router is closed")
            self._updates += 1
        # One global validation pass: a bad delta fails here with nothing
        # enqueued on any shard (no partially-applied fan-out).
        validate_started = time.monotonic()
        validated_edges = {
            relation: (src, dst)
            for relation, src, dst in validate_edge_additions(self.graph, edges_added)
            if src.size
        }
        validated_features = validate_feature_rows(self.graph, features_changed)
        if trace is not None:
            trace.add_span(
                "delta_validate",
                validate_started,
                time.monotonic() - validate_started,
                parent_id=ROOT_SPAN_ID,
                relations=len(validated_edges),
                feature_rows=len(validated_features),
            )
        sequences: Dict[int, int] = {}
        for spec, service in zip(self.plan.shards, self.services):
            shard_edges: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
            for relation, (src, dst) in validated_edges.items():
                keep = spec.closure_mask[src] | spec.closure_mask[dst]
                if keep.any():
                    shard_edges[relation] = (src[keep], dst[keep])
            if not shard_edges and not validated_features:
                continue
            route_started = time.monotonic()
            sequences[spec.shard_id] = service.submit_update(
                edges_added=shard_edges or None,
                features_changed=validated_features or None,
            )
            if trace is not None:
                trace.add_span(
                    "delta_route",
                    route_started,
                    time.monotonic() - route_started,
                    parent_id=ROOT_SPAN_ID,
                    shard=spec.shard_id,
                    seq=sequences[spec.shard_id],
                )
        return sequences

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = 60.0) -> None:
        """Block until every shard served its backlog and applied its deltas."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for service in self.services:
            remaining = None if deadline is None else max(deadline - time.monotonic(), 0.0)
            service.drain(remaining)

    def close(self, drain: bool = True, timeout: Optional[float] = 60.0) -> None:
        """Close every shard service, then release the shared pool once.

        Idempotent.  Shard services are constructed with
        ``release_pool_on_close=False`` — the construction pool and its
        shared-memory segments are process-global, so the router (the last
        owner standing) shuts them down exactly once at the end.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            registry_key, self._registry_key = self._registry_key, None
        if registry_key is not None:
            self.registry.unregister(registry_key)
        try:
            for service in self.services:
                service.close(drain=drain, timeout=timeout)
        finally:
            if self._release_pool_on_close:
                from repro.sampling.biased import shutdown_shared_pool

                shutdown_shared_pool()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "ShardRouter":
        with self._lock:
            if self._closed:
                raise ServiceClosed("cluster router is closed")
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        """Cheap liveness summary for the HTTP front end."""
        with self._lock:
            closed = self._closed
        return {
            "status": "closed" if closed else "ok",
            "num_shards": self.plan.num_shards,
            "uptime_s": time.monotonic() - self._started_at,
            "shards": [
                {"shard_id": spec.shard_id, "closed": service.closed}
                for spec, service in zip(self.plan.shards, self.services)
            ],
        }

    def snapshot(self) -> Dict[str, object]:
        """Aggregated serving telemetry: cluster totals + per-shard detail.

        Totals come from :func:`repro.serving.metrics.aggregate_serving_metrics`
        — the one place cluster aggregation lives — so latency percentiles
        are merged at the histogram-bucket level (a true cluster p99), not
        the max of per-shard p99s.
        """
        shard_snapshots = [service.snapshot() for service in self.services]
        totals = aggregate_serving_metrics(
            [
                service.metrics
                for service in self.services
                if getattr(service, "metrics", None) is not None
            ]
        )
        with self._lock:
            router_counters = {
                "requests": self._requests,
                "updates": self._updates,
                "closed": self._closed,
            }
        return {
            "router": {**router_counters, "uptime_s": time.monotonic() - self._started_at},
            "cluster_totals": totals,
            "plan": self.plan.stats(),
            "shards": shard_snapshots,
        }

    def _collect_metric_families(self) -> List[MetricFamily]:
        """Cluster exposition: per-shard serving families + router counters.

        Runs at scrape time (registry collectors execute outside the
        registry lock).  Each shard's families carry a ``shard=<id>`` label;
        duplicate family *definitions* across shards merge by name in the
        registry, and the label keeps their samples distinct.
        """
        families: List[MetricFamily] = []
        for spec, service in zip(self.plan.shards, self.services):
            metrics = getattr(service, "metrics", None)
            if metrics is None:  # stubbed service in router unit tests
                continue
            families.extend(
                metrics.metric_families({"shard": str(spec.shard_id)})
            )
        with self._lock:
            requests, updates = self._requests, self._updates
        families.append(
            MetricFamily(
                "repro_cluster_requests_total",
                "counter",
                "Score requests accepted by the cluster router.",
                [({}, float(requests))],
            )
        )
        families.append(
            MetricFamily(
                "repro_cluster_updates_total",
                "counter",
                "Streaming updates accepted by the cluster router.",
                [({}, float(updates))],
            )
        )
        families.append(
            MetricFamily(
                "repro_cluster_shards",
                "gauge",
                "Number of shards behind the cluster router.",
                [({}, float(self.plan.num_shards))],
            )
        )
        return families

    def __repr__(self) -> str:
        with self._lock:
            state = "closed" if self._closed else "open"
        return f"ShardRouter(num_shards={self.plan.num_shards}, {state})"
