"""``ShardRouter``: fan-out/fan-in front of N per-shard detection services.

The router owns one :class:`repro.serving.DetectionService` per shard of a
:class:`repro.serving.cluster.ShardPlan`.  Scoring splits a request's nodes
by center ownership, submits each slice to its shard's micro-batcher (all
slices are in flight concurrently — each shard has its own dispatcher
thread), and scatters the per-shard rows back into the caller's node order.
Updates fan out to every shard whose closure the delta touches, sequenced
through each shard's :class:`repro.serving.DeltaLog`, so read-your-writes
survives sharding: once :meth:`ShardRouter.submit_update` returns, every
subsequent score on any shard is served at a log prefix that includes the
delta on that shard.

Construction from one artifact (:meth:`ShardRouter.from_artifact`) plans
the shards with the artifact's own PPR parameters, then loads one detector
copy per shard bound to that shard's local graph — the artifact's saved
subgraph store warm-starts every shard (stores are keyed by global node
ids, which shard graphs preserve).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sanitizer import tracked_rlock
from repro.api import load_detector, read_manifest
from repro.api.session import validate_edge_additions, validate_feature_rows
from repro.graph import HeteroGraph
from repro.serving.cluster.planner import ShardPlan, plan_shards
from repro.serving.service import DetectionService, ServiceClosed


class ClusterRequest:
    """Fan-out handle: one pending score split across shard sub-requests."""

    __slots__ = ("num_nodes", "_parts", "delta_seqs")

    def __init__(
        self,
        num_nodes: int,
        parts: List[Tuple[int, np.ndarray, "object"]],
    ) -> None:
        self.num_nodes = num_nodes
        #: ``(shard_id, positions, handle)`` triples; ``positions`` are the
        #: caller-order row indices the shard's rows scatter back into.
        self._parts = parts
        #: shard id -> delta-log prefix its slice was served at (filled by
        #: :meth:`result`).
        self.delta_seqs: Dict[int, int] = {}

    def result(self, timeout: Optional[float] = 60.0) -> np.ndarray:
        """Block for every shard slice; rows come back in caller order."""
        deadline = None if timeout is None else time.monotonic() + timeout
        output: Optional[np.ndarray] = None
        for shard_id, positions, handle in self._parts:
            remaining = None if deadline is None else max(deadline - time.monotonic(), 0.0)
            rows = handle.result(remaining)
            if output is None:
                output = np.empty((self.num_nodes, rows.shape[1]), dtype=rows.dtype)
            output[positions] = rows
            self.delta_seqs[shard_id] = handle.delta_seq
        if output is None:
            output = np.zeros((0, 2))
        return output


class ShardRouter:
    """Horizontally sharded scoring: N services behind one score/update API."""

    def __init__(
        self,
        plan: ShardPlan,
        services: Sequence[DetectionService],
        *,
        graph: Optional[HeteroGraph] = None,
        release_pool_on_close: bool = True,
    ) -> None:
        if len(services) != plan.num_shards:
            raise ValueError(
                f"plan has {plan.num_shards} shard(s) but {len(services)} "
                "service(s) were provided"
            )
        self.plan = plan
        self.services = list(services)
        #: Validation reference for updates (num_nodes / relation names /
        #: feature width are shard-invariant).  Falls back to shard 0's
        #: local graph when the planner's source graph wasn't kept.
        self.graph = graph if graph is not None else plan.shards[0].graph
        self._release_pool_on_close = release_pool_on_close
        self._lock = tracked_rlock("ShardRouter._lock")
        self._closed = False  # guarded-by: _lock
        self._requests = 0  # guarded-by: _lock
        self._updates = 0  # guarded-by: _lock
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(
        cls,
        path,
        graph: Optional[HeteroGraph] = None,
        *,
        num_shards: int = 2,
        halo_hops: int = 1,
        seed: int = 0,
        verify: bool = True,
        release_pool_on_close: bool = True,
        **service_kwargs,
    ) -> "ShardRouter":
        """Plan shards for ``graph`` and load one service per shard.

        Without ``graph``, the artifact's dataset provenance is replayed —
        the same convention as :meth:`DetectionService.from_artifact`.  The
        shard plan verifies PPR locality with the artifact's own
        ``ppr_alpha`` / ``ppr_epsilon``, so the halo contract matches what
        the loaded detectors will actually push.  ``service_kwargs`` pass
        through to every per-shard :class:`DetectionService` (batching,
        replay, recording).
        """
        manifest = read_manifest(path)
        if graph is None:
            dataset = manifest.get("dataset")
            if not dataset:
                raise ValueError(
                    "artifact has no dataset provenance; pass the serving "
                    "graph explicitly: ShardRouter.from_artifact(path, graph=...)"
                )
            from repro.datasets import resolve_dataset_graph

            graph = resolve_dataset_graph(dataset)
        config = manifest.get("config", {})
        plan = plan_shards(
            graph,
            num_shards,
            halo_hops=halo_hops,
            ppr_alpha=float(config.get("ppr_alpha", 0.15)),
            ppr_epsilon=float(config.get("ppr_epsilon", 1e-4)),
            seed=seed,
            verify=verify,
        )
        services: List[DetectionService] = []
        try:
            for spec in plan.shards:
                detector = load_detector(path, graph=spec.graph)
                services.append(
                    DetectionService(
                        detector,
                        spec.graph,
                        release_pool_on_close=False,
                        **service_kwargs,
                    )
                )
        except BaseException:
            for service in services:
                service.close(drain=False)
            raise
        return cls(
            plan, services, graph=graph, release_pool_on_close=release_pool_on_close
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def submit(self, nodes: Sequence[int]) -> ClusterRequest:
        """Fan a score request out by center ownership; returns the handle.

        Each shard slice preserves the caller's relative node order, so a
        single-shard request coalesces into its shard's waves exactly like
        a direct :meth:`DetectionService.submit` would.
        """
        array = np.asarray(
            nodes if isinstance(nodes, np.ndarray) else list(nodes)
        ).astype(np.int64).ravel()
        if array.size and (array.min() < 0 or array.max() >= self.graph.num_nodes):
            raise ValueError("node id out of range for the cluster graph")
        with self._lock:
            if self._closed:
                raise ServiceClosed("cluster router is closed")
            self._requests += 1
        parts: List[Tuple[int, np.ndarray, object]] = []
        if array.size:
            owners = self.plan.shard_of(array)
            for shard_id in np.unique(owners):
                positions = np.flatnonzero(owners == shard_id)
                handle = self.services[int(shard_id)].submit(array[positions])
                parts.append((int(shard_id), positions, handle))
        return ClusterRequest(int(array.size), parts)

    def score(
        self, nodes: Sequence[int], timeout: Optional[float] = 60.0
    ) -> np.ndarray:
        """Bot probabilities for ``nodes`` (blocking fan-out/fan-in)."""
        return self.submit(nodes).result(timeout)

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------
    def submit_update(
        self,
        edges_added: Optional[Mapping[str, Tuple[Iterable[int], Iterable[int]]]] = None,
        features_changed: Optional[Mapping[int, Iterable[float]]] = None,
    ) -> Dict[int, int]:
        """Route a delta to every shard it touches; returns shard -> seq.

        Edge additions go to each shard whose closure contains either
        endpoint — exactly the shards whose local graphs keep that edge
        under the closure-incidence invariant.  Feature rows go to *every*
        shard (each shard owns a full feature copy; rows must stay
        consistent everywhere a future subgraph might read them).  Each
        touched shard sequences the delta through its own
        :class:`repro.serving.DeltaLog`, so scores submitted after this
        call returns see it on whichever shard serves them.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosed("cluster router is closed")
            self._updates += 1
        # One global validation pass: a bad delta fails here with nothing
        # enqueued on any shard (no partially-applied fan-out).
        validated_edges = {
            relation: (src, dst)
            for relation, src, dst in validate_edge_additions(self.graph, edges_added)
            if src.size
        }
        validated_features = validate_feature_rows(self.graph, features_changed)
        sequences: Dict[int, int] = {}
        for spec, service in zip(self.plan.shards, self.services):
            shard_edges: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
            for relation, (src, dst) in validated_edges.items():
                keep = spec.closure_mask[src] | spec.closure_mask[dst]
                if keep.any():
                    shard_edges[relation] = (src[keep], dst[keep])
            if not shard_edges and not validated_features:
                continue
            sequences[spec.shard_id] = service.submit_update(
                edges_added=shard_edges or None,
                features_changed=validated_features or None,
            )
        return sequences

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = 60.0) -> None:
        """Block until every shard served its backlog and applied its deltas."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for service in self.services:
            remaining = None if deadline is None else max(deadline - time.monotonic(), 0.0)
            service.drain(remaining)

    def close(self, drain: bool = True, timeout: Optional[float] = 60.0) -> None:
        """Close every shard service, then release the shared pool once.

        Idempotent.  Shard services are constructed with
        ``release_pool_on_close=False`` — the construction pool and its
        shared-memory segments are process-global, so the router (the last
        owner standing) shuts them down exactly once at the end.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            for service in self.services:
                service.close(drain=drain, timeout=timeout)
        finally:
            if self._release_pool_on_close:
                from repro.sampling.biased import shutdown_shared_pool

                shutdown_shared_pool()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "ShardRouter":
        with self._lock:
            if self._closed:
                raise ServiceClosed("cluster router is closed")
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        """Cheap liveness summary for the HTTP front end."""
        with self._lock:
            closed = self._closed
        return {
            "status": "closed" if closed else "ok",
            "num_shards": self.plan.num_shards,
            "uptime_s": time.monotonic() - self._started_at,
            "shards": [
                {"shard_id": spec.shard_id, "closed": service.closed}
                for spec, service in zip(self.plan.shards, self.services)
            ],
        }

    def snapshot(self) -> Dict[str, object]:
        """Aggregated serving telemetry: cluster totals + per-shard detail."""
        shard_snapshots = [service.snapshot() for service in self.services]
        totals: Dict[str, float] = {}
        for snap in shard_snapshots:
            for key in (
                "requests",
                "nodes_scored",
                "waves",
                "wave_nodes",
                "deltas_enqueued",
                "deltas_applied",
                "subgraphs_invalidated",
                "errors",
                "replay_hits",
                "replay_misses",
            ):
                totals[key] = totals.get(key, 0) + snap.get(key, 0)
        with self._lock:
            router_counters = {
                "requests": self._requests,
                "updates": self._updates,
                "closed": self._closed,
            }
        return {
            "router": {**router_counters, "uptime_s": time.monotonic() - self._started_at},
            "cluster_totals": totals,
            "plan": self.plan.stats(),
            "shards": shard_snapshots,
        }

    def __repr__(self) -> str:
        with self._lock:
            state = "closed" if self._closed else "open"
        return f"ShardRouter(num_shards={self.plan.num_shards}, {state})"
