"""Asyncio HTTP/JSON front end for the sharded serving cluster.

A deliberately small HTTP/1.1 server on stdlib ``asyncio`` streams (no new
dependencies): parse one request, answer JSON, close the connection.  The
event loop only shuttles bytes and JSON; every blocking router call
(``score``, ``submit_update`` — lock acquisition, wave waits) runs on a
bounded worker pool via ``run_in_executor`` so the loop keeps accepting
connections while waves execute.

Endpoints
---------

* ``POST /score`` — body ``{"nodes": [17, 42], "timeout": 30.0}`` →
  ``{"probabilities": [[h, b], ...], "delta_seqs": {"0": 3}}`` in request
  node order.
* ``POST /update`` — body ``{"edges_added": {"followers": [[17], [42]]},
  "features_changed": {"7": [0.1, ...]}}`` → ``{"shards": {"0": 4}}``
  (per-shard delta sequence numbers: the caller's read-your-writes
  barrier).
* ``GET /healthz`` — liveness + per-shard open/closed flags.
* ``GET /metrics`` — content negotiated: ``Accept: text/plain`` answers
  Prometheus text exposition from the metrics registry; anything else gets
  the aggregated :meth:`ShardRouter.snapshot` JSON (cluster totals, plan
  stats, per-shard serving telemetry).
* ``GET /traces`` — the tracer's ring buffer (``?limit=N`` caps the
  count), most recent first, plus tracer stats.

Request tracing
---------------

Every ``/score`` / ``/update`` request gets a request id — minted here, or
taken from an ``X-Repro-Request-Id`` header when the client sent one — and
the id is echoed back on the response.  When the router's tracer is armed,
the front door starts one trace per request (admission span here, route /
shard-leg / queue-wait / wave spans recorded downstream) and finishes it
when the response is ready: one trace covers the whole fan-out.

Backpressure
------------

Admission is bounded twice: at most ``max_inflight`` scoring/update
requests may be in flight (the excess gets an immediate ``429`` with
``Retry-After`` instead of a queue slot — saturation costs the client a
retry, never the server unbounded memory), and request bodies are capped
at ``max_body_bytes`` (oversized uploads get ``413`` before being read
into memory).
"""

from __future__ import annotations

import asyncio
import functools
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple, Union

from repro.analysis.sanitizer import tracked_rlock
from repro.obs.registry import MetricsRegistry, global_registry
from repro.obs.trace import ROOT_SPAN_ID, Trace, Tracer, mint_request_id
from repro.serving.cluster.router import ShardRouter

_MAX_HEADER_BYTES = 16 * 1024
_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ClusterHTTPServer:
    """One router behind four HTTP/JSON endpoints with bounded admission."""

    def __init__(
        self,
        router: ShardRouter,
        host: str = "127.0.0.1",
        port: int = 8099,
        *,
        max_inflight: int = 64,
        max_body_bytes: int = 8 * 1024 * 1024,
        score_timeout_s: float = 60.0,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.router = router
        self.host = host
        self.port = port
        #: Trace/metrics plumbing defaults to the router's own — the front
        #: door mints request ids and owns per-request traces, the router
        #: and its shard services fill in the downstream spans.  (getattr:
        #: HTTP tests drive the server with duck-typed stub routers.)
        self.tracer = tracer if tracer is not None else getattr(router, "tracer", None)
        if registry is None:
            registry = getattr(router, "registry", None)
        if registry is None:
            registry = global_registry()
        self.registry = registry
        self.max_inflight = int(max_inflight)
        self.max_body_bytes = int(max_body_bytes)
        self.score_timeout_s = float(score_timeout_s)
        self._server: Optional[asyncio.AbstractServer] = None
        # Blocking router calls (wave waits, delta validation) run here so
        # the event loop never blocks; the pool is deliberately smaller than
        # the admission bound — admitted requests queue on the executor,
        # which is fine, while *admission* itself stays bounded.
        self._executor = ThreadPoolExecutor(
            max_workers=min(self.max_inflight, 16),
            thread_name_prefix="repro-serve-http",
        )
        self._lock = tracked_rlock("ClusterHTTPServer._lock")
        self._inflight = 0  # guarded-by: _lock
        self._rejected = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (port 0 picks a free port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, wait for the acceptor, release the worker pool.

        The router is *not* closed here — the server is one front end over
        it; the owning process (``repro serve``) closes the router after
        the last front end is down.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self) -> bool:
        """Reserve one in-flight slot; False means answer 429 immediately."""
        with self._lock:
            if self._inflight >= self.max_inflight:
                self._rejected += 1
                return False
            self._inflight += 1
            return True

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1

    def admission_stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "rejected": self._rejected,
            }

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload, extra_headers = await self._handle_request(reader)
            await self._write_response(writer, status, payload, extra_headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, str, Dict[str, str]]:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > _MAX_HEADER_BYTES:
            raise ValueError("request head too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _version = lines[0].split(" ", 2)
        except ValueError as error:
            raise ValueError(f"malformed request line: {lines[0]!r}") from error
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        path, _, query = path.partition("?")
        return method.upper(), path, query, headers

    @staticmethod
    def _query_int(query: str, name: str) -> Optional[int]:
        """``?limit=25``-style single-int query parameter (None when absent
        or unparsable — telemetry endpoints degrade, never 400)."""
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == name:
                try:
                    return int(value)
                except ValueError:
                    return None
        return None

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Union[Dict[str, object], str], Dict[str, str]]:
        try:
            method, path, query, headers = await self._read_head(reader)
        except (ValueError, asyncio.LimitOverrunError) as error:
            return 400, {"error": str(error)}, {}
        content_length = int(headers.get("content-length", "0") or "0")
        if content_length > self.max_body_bytes:
            return 413, {
                "error": f"body of {content_length} bytes exceeds "
                f"{self.max_body_bytes}-byte cap"
            }, {}
        body = await reader.readexactly(content_length) if content_length else b""

        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET /healthz"}, {}
            health = self.router.healthz()
            health["admission"] = self.admission_stats()
            return 200, health, {}
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET /metrics"}, {}
            if "text/plain" in headers.get("accept", ""):
                return 200, self.registry.prometheus_text(), {}
            snapshot = self.router.snapshot()
            snapshot["admission"] = self.admission_stats()
            return 200, snapshot, {}
        if path == "/traces":
            if method != "GET":
                return 405, {"error": "use GET /traces"}, {}
            if self.tracer is None:
                return 200, {"enabled": False, "stats": {}, "traces": []}, {}
            return 200, {
                "enabled": True,
                "stats": self.tracer.stats(),
                "traces": self.tracer.recent(self._query_int(query, "limit")),
            }, {}
        if path in ("/score", "/update"):
            if method != "POST":
                return 405, {"error": f"use POST {path}"}, {}
            request_id = headers.get("x-repro-request-id") or mint_request_id()
            extra_headers = {"X-Repro-Request-Id": request_id}
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return 400, {"error": f"invalid JSON body: {error}"}, extra_headers
            if not isinstance(payload, dict):
                return 400, {"error": "JSON body must be an object"}, extra_headers
            trace: Optional[Trace] = None
            if self.tracer is not None:
                trace = self.tracer.start_trace(
                    f"http{path.replace('/', '_')}",
                    request_id=request_id,
                    attributes={"path": path},
                )
            try:
                admit_started = time.monotonic()
                admitted = self._admit()
                if trace is not None:
                    trace.add_span(
                        "admission",
                        admit_started,
                        time.monotonic() - admit_started,
                        parent_id=ROOT_SPAN_ID,
                        granted=admitted,
                    )
                if not admitted:
                    return 429, {
                        "error": "admission queue full",
                        "retry_after_s": 0.05,
                    }, extra_headers
                try:
                    loop = asyncio.get_running_loop()
                    if path == "/score":
                        call = functools.partial(self._do_score, payload, trace)
                    else:
                        call = functools.partial(self._do_update, payload, trace)
                    status, answer = await loop.run_in_executor(self._executor, call)
                    if isinstance(answer, dict):
                        answer.setdefault("request_id", request_id)
                    return status, answer, extra_headers
                finally:
                    self._release()
            finally:
                if trace is not None:
                    self.tracer.finish_trace(trace)
        return 404, {"error": f"unknown path {path!r}"}, {}

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict[str, object], str],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if isinstance(payload, str):  # Prometheus text exposition
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        reason = _HTTP_REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
        )
        for name, value in (extra_headers or {}).items():
            head += f"{name}: {value}\r\n"
        if status == 429:
            head += "Retry-After: 1\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Endpoint bodies (run on the worker pool — blocking is fine here)
    # ------------------------------------------------------------------
    def _do_score(
        self, payload: Dict[str, object], trace: Optional[Trace] = None
    ) -> Tuple[int, Dict[str, object]]:
        nodes = payload.get("nodes")
        if not isinstance(nodes, list):
            return 400, {"error": "'nodes' must be a list of node ids"}
        timeout = payload.get("timeout", self.score_timeout_s)
        try:
            if trace is not None:
                handle = self.router.submit(nodes, trace=trace)
            else:  # positional: HTTP tests drive stub routers without tracing
                handle = self.router.submit(nodes)
            probabilities = handle.result(float(timeout))
        except (ValueError, TypeError, KeyError) as error:
            return 400, {"error": str(error)}
        except TimeoutError as error:
            return 503, {"error": str(error)}
        except RuntimeError as error:  # ServiceClosed and friends
            return 503, {"error": str(error)}
        return 200, {
            "nodes": [int(node) for node in nodes],
            "probabilities": probabilities.tolist(),
            "delta_seqs": {str(k): int(v) for k, v in handle.delta_seqs.items()},
        }

    def _do_update(
        self, payload: Dict[str, object], trace: Optional[Trace] = None
    ) -> Tuple[int, Dict[str, object]]:
        edges_raw = payload.get("edges_added") or {}
        features_raw = payload.get("features_changed") or {}
        if not isinstance(edges_raw, dict) or not isinstance(features_raw, dict):
            return 400, {
                "error": "'edges_added' and 'features_changed' must be objects"
            }
        try:
            edges = {
                relation: (list(pair[0]), list(pair[1]))
                for relation, pair in edges_raw.items()
            }
            features = {int(node): list(row) for node, row in features_raw.items()}
            update_kwargs = {} if trace is None else {"trace": trace}
            sequences = self.router.submit_update(
                edges_added=edges or None,
                features_changed=features or None,
                **update_kwargs,
            )
        except (ValueError, TypeError, KeyError, IndexError) as error:
            return 400, {"error": str(error)}
        except RuntimeError as error:
            return 503, {"error": str(error)}
        return 200, {"shards": {str(k): int(v) for k, v in sequences.items()}}


def run_server(
    router: ShardRouter,
    host: str = "127.0.0.1",
    port: int = 8099,
    *,
    max_inflight: int = 64,
    ready_message: bool = True,
) -> None:
    """Blocking entry point for ``repro serve``: serve until SIGINT/SIGTERM.

    Owns the full lifecycle: bind, announce readiness on stdout (the CI
    smoke step waits for this line), serve, and on the first signal stop
    accepting, drain the router, and close it — a clean exit leaves no
    dispatcher threads, no pool, and no shared-memory segments.
    """
    import signal

    async def _main() -> None:
        server = ClusterHTTPServer(
            router, host, port, max_inflight=max_inflight
        )
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # non-unix event loops
                signal.signal(signum, lambda *_args: stop.set())
        if ready_message:
            print(
                f"repro serve: listening on http://{server.host}:{server.port} "
                f"({router.plan.num_shards} shard(s))",
                flush=True,
            )
        await stop.wait()
        await server.close()

    try:
        asyncio.run(_main())
    finally:
        router.close()
