"""Command-line interface for the reproduction.

Every subcommand goes through :mod:`repro.api` — the CLI constructs, trains,
persists, and queries detectors exactly the way library consumers do:

``python -m repro benchmarks``
    Print Table I statistics for the three synthetic benchmarks.

``python -m repro run <experiment> [--scale small|medium] [--seed N] [--output DIR]``
    Run one experiment (``table1`` ... ``fig10``), print the regenerated
    table or series, and optionally write the raw result JSON (the same
    schema ``repro report`` consumes).

``python -m repro report <results_dir> [--experiment ID]``
    Re-render experiment results previously saved by ``run --output`` or the
    benchmark suite.

``python -m repro fit <benchmark> --output DIR [--detector NAME] [...]``
    Train a detector on a synthetic benchmark and persist it as an artifact
    directory (train once).

``python -m repro score <artifact> [--nodes 1,2,17]``
    Load a saved artifact, rebuild its benchmark from the recorded
    provenance, and score the requested nodes (serve many).

``python -m repro serve-bench [--clients 1,8,32] [--output FILE]``
    Benchmark the online serving layer: micro-batched concurrent scoring
    through :class:`repro.serving.DetectionService` vs naive per-request
    ``score_nodes``, across an offered-load ladder (throughput, p50/p99
    latency, batch occupancy).

``python -m repro serve <artifact> [--port 8099] [--num-shards 2]``
    Run the sharded asyncio HTTP/JSON scoring service: partition the
    artifact's graph into per-shard sessions behind a fan-out router and
    serve ``POST /score``, ``POST /update``, ``GET /healthz``,
    ``GET /metrics`` until SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

import repro
from repro import api
from repro.datasets import load_benchmark
from repro.experiments import EXPERIMENTS, run_experiment, table1
from repro.experiments.report import render_results_dir
from repro.experiments.settings import MEDIUM, SMALL

_SCALES = {"small": SMALL, "medium": MEDIUM}

_BENCHMARK_NAMES = ("twibot-20", "twibot-22", "mgtab")


def _parse_override(text: str) -> tuple:
    """Parse one ``key=value`` override; values go through JSON when possible
    (so ``subgraph_k=8`` is an int and ``use_semantic_attention=false`` a
    bool) and fall back to the raw string."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(f"override {text!r} is not of the form key=value")
    key, _, raw = text.partition("=")
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key.strip(), value


def _parse_nodes(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"bad node list {text!r}: {error}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BSG4Bot reproduction: train, persist, and query detectors.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {repro.__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("benchmarks", help="print statistics of the synthetic benchmarks")

    run_parser = subparsers.add_parser("run", help="run one experiment (table/figure)")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run_parser.add_argument("--scale", choices=sorted(_SCALES), default="small")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--output", default=None, metavar="DIR",
        help="also write the raw result as DIR/<experiment>.json (readable by 'repro report')",
    )

    report_parser = subparsers.add_parser("report", help="render saved benchmark results")
    report_parser.add_argument("results_dir", help="directory with <experiment>.json files")
    report_parser.add_argument(
        "--experiment", action="append", dest="experiments", default=None,
        help="limit the report to one experiment (repeatable)",
    )

    fit_parser = subparsers.add_parser(
        "fit", help="train a detector on a benchmark or a dataset spec, save the artifact"
    )
    fit_parser.add_argument(
        "benchmark", nargs="?", choices=_BENCHMARK_NAMES, default=None,
        help="bundled synthetic benchmark (alternative: --dataset)",
    )
    fit_parser.add_argument(
        "--dataset", default=None, metavar="SPEC",
        help="train on a dataset spec (.yaml/.json) instead of a bundled benchmark",
    )
    fit_parser.add_argument(
        "--test", action="store_true",
        help="with --dataset: ingest only the spec's test_sample node cap",
    )
    fit_parser.add_argument("--output", required=True, metavar="DIR", help="artifact directory")
    fit_parser.add_argument("--detector", default="bsg4bot",
                            help="registry name (see 'repro detectors')")
    fit_parser.add_argument("--scale", choices=sorted(_SCALES), default="small")
    fit_parser.add_argument("--seed", type=int, default=0)
    fit_parser.add_argument(
        "--override", action="append", dest="overrides", default=[],
        type=_parse_override, metavar="KEY=VALUE",
        help="detector config override (repeatable), e.g. --override subgraph_k=8",
    )
    fit_parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="trace the run (ingest + training phases) into a JSONL file and "
        "print the waterfall (render saved files with 'repro trace FILE')",
    )

    score_parser = subparsers.add_parser(
        "score", help="score nodes with a saved detector artifact"
    )
    score_parser.add_argument("artifact", help="artifact directory written by 'repro fit'")
    score_parser.add_argument(
        "--nodes", type=_parse_nodes, default=None, metavar="N,N,...",
        help="node ids to score (default: the dataset's test split)",
    )
    score_parser.add_argument(
        "--dataset", default=None, metavar="SPEC",
        help="rebuild the graph from this spec instead of the artifact's provenance "
        "(must describe the same graph shape)",
    )

    ingest_parser = subparsers.add_parser(
        "ingest", help="ingest a dataset spec into a graph and print its statistics"
    )
    ingest_parser.add_argument("spec", help="dataset spec file (.yaml/.json)")
    ingest_parser.add_argument(
        "--test", action="store_true",
        help="cap ingestion at the spec's test_sample for fast iteration",
    )
    ingest_parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="rows per streamed chunk (default: the adapter's)",
    )
    ingest_parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk ingest cache",
    )
    ingest_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print machine-readable JSON instead of text",
    )

    serve_parser = subparsers.add_parser(
        "serve-bench", help="benchmark micro-batched serving vs per-request scoring"
    )
    serve_parser.add_argument("--users", type=int, default=200,
                              help="synthetic benchmark size (default: 200)")
    serve_parser.add_argument(
        "--clients", type=_parse_nodes, default=[1, 8, 32], metavar="N,N,...",
        help="offered-load ladder: concurrent client counts (default: 1,8,32)",
    )
    serve_parser.add_argument("--requests", type=int, default=16,
                              help="requests per client (default: 16)")
    serve_parser.add_argument("--nodes-per-request", type=int, default=1)
    serve_parser.add_argument("--max-batch", type=int, default=64,
                              help="micro-batch node budget per wave")
    serve_parser.add_argument("--max-wait-ms", type=float, default=2.0,
                              help="max linger before a short wave dispatches")
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument("--min-speedup", type=float, default=None,
                              help="fail unless batched/naive throughput >= this")
    serve_parser.add_argument("--output", default=None, metavar="FILE",
                              help="also write the raw result JSON")

    cluster_parser = subparsers.add_parser(
        "serve", help="run the sharded HTTP/JSON scoring service from an artifact"
    )
    cluster_parser.add_argument("artifact", help="artifact directory written by 'repro fit'")
    cluster_parser.add_argument("--host", default="127.0.0.1")
    cluster_parser.add_argument("--port", type=int, default=8099,
                                help="TCP port (0 picks a free one; default: 8099)")
    cluster_parser.add_argument("--num-shards", type=int, default=2,
                                help="graph partitions / per-shard sessions (default: 2)")
    cluster_parser.add_argument("--halo-hops", type=int, default=1,
                                help="starting halo width; widens per shard until verified")
    cluster_parser.add_argument("--no-verify", action="store_true",
                                help="skip the plan-time PPR bit-identity verification")
    cluster_parser.add_argument("--max-batch", type=int, default=64,
                                help="micro-batch node budget per wave, per shard")
    cluster_parser.add_argument("--max-wait-ms", type=float, default=2.0,
                                help="max linger before a short wave dispatches")
    cluster_parser.add_argument("--max-inflight", type=int, default=64,
                                help="admission bound before 429 backpressure")
    cluster_parser.add_argument("--delta-max-pending", type=int, default=None,
                                help="delta watermark: force application at N pending")
    cluster_parser.add_argument("--delta-max-age-s", type=float, default=None,
                                help="delta watermark: force application after S seconds")
    cluster_parser.add_argument("--seed", type=int, default=0,
                                help="partitioner seed")
    cluster_parser.add_argument(
        "--trace-sample", type=float, default=None, metavar="RATE",
        help="trace this fraction of requests (0..1; also via REPRO_TRACE_SAMPLE)",
    )
    cluster_parser.add_argument(
        "--trace-slow-ms", type=float, default=None, metavar="MS",
        help="always keep traces slower than MS milliseconds",
    )
    cluster_parser.add_argument(
        "--trace-dump", default=None, metavar="FILE",
        help="append kept slow traces to this JSONL file",
    )
    cluster_parser.add_argument(
        "--trace-buffer", type=int, default=None, metavar="N",
        help="kept traces retained in the GET /traces ring buffer",
    )

    subparsers.add_parser("detectors", help="list registered detector names")

    trace_parser = subparsers.add_parser(
        "trace", help="render traces from a JSONL dump as waterfalls"
    )
    trace_parser.add_argument(
        "file", help="JSONL trace dump ('repro serve --trace-dump', 'repro fit --trace')"
    )
    trace_parser.add_argument(
        "--top", type=int, default=3, metavar="N",
        help="waterfalls to render, slowest first (default: 3)",
    )

    lint_parser = subparsers.add_parser(
        "lint", help="run the invariant checkers (lock/shm/reduction/oracle/resource)"
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to check (default: the installed repro package)",
    )
    lint_parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file (default: the committed analysis/baseline.json)",
    )
    lint_parser.add_argument(
        "--write-baseline", action="store_true",
        help="record every current finding as the new baseline and exit",
    )
    lint_parser.add_argument(
        "--check", action="store_true",
        help="CI mode: also fail on stale baseline entries",
    )
    lint_parser.add_argument(
        "--show-baselined", action="store_true",
        help="print suppressed pre-existing findings too",
    )
    lint_parser.add_argument(
        "--only", action="append", default=None, metavar="CHECKER",
        help="run only this checker id (repeatable)",
    )
    return parser


def _write_result(output: str, experiment: str, result) -> Path:
    """Persist a run's raw result in the schema ``repro report`` reads."""
    directory = Path(output)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{experiment}.json"
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, default=float)
    return path


def _cmd_run(args) -> int:
    scale = _SCALES[args.scale]
    module = EXPERIMENTS[args.experiment]
    kwargs = {"scale": scale}
    # Every experiment accepts a seed except where it is irrelevant.
    if "seed" in module.run.__code__.co_varnames:
        kwargs["seed"] = args.seed
    result = run_experiment(args.experiment, **kwargs)
    print(module.format_result(result))
    if args.output:
        path = _write_result(args.output, args.experiment, result)
        print(f"\nresult written to {path}")
    return 0


def _cmd_ingest(args) -> int:
    from repro.datasets.adapters import AdapterError, ingest_spec

    try:
        result = ingest_spec(
            args.spec,
            test=args.test,
            chunk_size=args.chunk_size,
            use_cache=not args.no_cache,
        )
    except AdapterError as exc:
        raise SystemExit(f"ingest failed: {exc}") from None
    graph = result.graph
    stats = {
        "name": graph.name,
        "adapter": result.spec.adapter,
        "num_nodes": graph.num_nodes,
        "num_features": graph.num_features,
        "num_edges": graph.num_edges,
        "relations": {
            name: graph.relation(name).num_edges for name in graph.relation_names
        },
        "class_counts": {str(k): v for k, v in graph.class_counts().items()},
        "dropped_edges": graph.metadata.get("dropped_edges", 0),
        "fingerprint": result.fingerprint,
        "cache_hit": result.cache_hit,
        "elapsed_s": round(result.elapsed_s, 4),
        "test": bool(args.test),
    }
    if args.as_json:
        print(json.dumps(stats, indent=2))
        return 0
    print(f"{stats['name']}: {stats['num_nodes']} nodes x {stats['num_features']} features, "
          f"{stats['num_edges']} edges")
    for name, count in stats["relations"].items():
        print(f"  relation {name}: {count} edges")
    print(f"  classes: {stats['class_counts']}   dropped edges: {stats['dropped_edges']}")
    print(f"  fingerprint: {stats['fingerprint']}")
    source = "cache hit" if result.cache_hit else "fresh ingest"
    print(f"  {source} in {stats['elapsed_s']}s")
    return 0


def _cmd_fit(args) -> int:
    # Fail before training, not after: only BSG4Bot artifacts are
    # persistable today, and a detector that cannot be saved would waste the
    # whole training run.
    if args.detector.lower() != "bsg4bot":
        raise SystemExit(
            f"'repro fit' persists artifacts, which {args.detector!r} does not "
            "support yet (only 'bsg4bot'); train other detectors "
            "programmatically via repro.api.create_detector"
        )
    if (args.benchmark is None) == (args.dataset is None):
        raise SystemExit(
            "'repro fit' needs exactly one data source: either a bundled "
            f"benchmark name ({', '.join(_BENCHMARK_NAMES)}) or --dataset SPEC"
        )
    if args.test and args.dataset is None:
        raise SystemExit("--test only applies to --dataset specs")
    if not args.trace:
        return _run_fit(args)
    # One always-kept trace for the whole run; the ambient contextvar lets
    # ingest and the pipeline's phase_span calls attach their spans.
    from repro.obs import Tracer, activate_trace, render_waterfall

    # slow_threshold_s=0.0 marks every trace slow, so the one fit trace is
    # always appended to the dump file (dumping is slow-only by design).
    tracer = Tracer(1.0, slow_threshold_s=0.0, dump_path=args.trace)
    trace = tracer.start_trace("fit", attributes={"detector": args.detector})
    try:
        with activate_trace(trace):
            return _run_fit(args)
    finally:
        tracer.finish_trace(trace)
        print()
        print(render_waterfall(trace.to_dict()))
        print(f"trace written to {args.trace}")


def _run_fit(args) -> int:
    scale = _SCALES[args.scale]
    if args.dataset is not None:
        from repro.datasets.adapters import AdapterError, ingest_spec

        try:
            result = ingest_spec(args.dataset, test=args.test)
        except AdapterError as exc:
            raise SystemExit(f"ingest failed: {exc}") from None
        graph = result.graph
        dataset: Dict[str, object] = {
            "spec": result.spec.to_dict(),
            "test": bool(args.test),
        }
        print(
            f"Ingested {graph.name}: {graph.num_nodes} nodes, "
            f"{graph.num_edges} edges ({'cache hit' if result.cache_hit else 'fresh'}, "
            f"fingerprint {result.fingerprint[:12]})"
        )
    else:
        dataset = {
            "name": args.benchmark,
            "num_users": scale.users_for(args.benchmark),
            "tweets_per_user": scale.tweets_per_user,
            "seed": args.seed,
        }
        print(f"Building {args.benchmark} benchmark ({dataset['num_users']} users)...")
        graph = load_benchmark(**dataset).graph
    detector = api.create_detector(
        {
            "name": args.detector,
            "scale": scale,
            "seed": args.seed,
            "overrides": dict(args.overrides),
        }
    )
    print(f"Training {args.detector}...")
    history = detector.fit(graph)
    metrics = detector.evaluate(graph)
    print(
        f"  {history.num_epochs} epochs ({history.total_time:.1f}s)   "
        f"test accuracy = {metrics['accuracy']:.2f}   test F1 = {metrics['f1']:.2f}"
    )
    path = api.save_detector(detector, args.output, dataset=dataset)
    print(f"artifact saved to {path}")
    return 0


def _cmd_score(args) -> int:
    from repro.datasets.adapters import AdapterError, ingest_spec, resolve_dataset_graph

    manifest = api.read_manifest(args.artifact)
    try:
        if args.dataset is not None:
            graph = ingest_spec(args.dataset, test=bool(manifest.get("dataset", {}).get("test"))).graph
        else:
            dataset = manifest.get("dataset")
            if not dataset:
                raise SystemExit(
                    "artifact has no dataset provenance; pass --dataset SPEC or score "
                    "programmatically via repro.api.load_detector(path, graph=...)"
                )
            graph = resolve_dataset_graph(dataset)
    except AdapterError as exc:
        raise SystemExit(f"ingest failed: {exc}") from None
    detector = api.load_detector(args.artifact, graph=graph)
    nodes = args.nodes if args.nodes is not None else graph.test_indices().tolist()
    with api.DetectionSession(detector, graph) as session:
        probabilities = session.score_nodes(nodes)
    labels = graph.labels
    print(f"{'node':>8}  {'p(bot)':>8}  {'verdict':<7}  truth")
    for node, row in zip(nodes, probabilities):
        verdict = "bot" if row[1] >= 0.5 else "human"
        truth = "bot" if labels[node] == 1 else "human"
        print(f"{node:>8}  {row[1]:>8.3f}  {verdict:<7}  {truth}")
    predictions = probabilities.argmax(axis=1)
    agreement = float(np.mean(predictions == labels[np.asarray(nodes)])) * 100.0
    print(f"\n{len(nodes)} nodes scored; agreement with labels: {agreement:.1f}%")
    return 0


def _cmd_serve_bench(args) -> int:
    # Imported lazily: the serving layer (and its benchmark) pulls in the
    # whole detector stack, which every other subcommand doesn't need.
    from repro.serving import format_result, run_serving_benchmark

    result = run_serving_benchmark(
        num_users=args.users,
        clients_ladder=args.clients,
        requests_per_client=args.requests,
        nodes_per_request=args.nodes_per_request,
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        seed=args.seed,
        min_speedup=args.min_speedup,
    )
    print(format_result(result))
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(result, handle, indent=2, default=float)
        print(f"\nresult written to {path}")
    return 0


def _cmd_serve(args) -> int:
    # Lazy import for the same reason as serve-bench: the cluster layer
    # pulls in the whole detector + serving stack.
    from repro.obs import Tracer
    from repro.serving.cluster import ShardRouter, run_server

    tracer = None
    if (
        args.trace_sample is not None
        or args.trace_slow_ms is not None
        or args.trace_dump is not None
        or args.trace_buffer is not None
    ):
        tracer = Tracer(
            sample_rate=args.trace_sample or 0.0,
            slow_threshold_s=(
                None if args.trace_slow_ms is None else args.trace_slow_ms / 1000.0
            ),
            capacity=args.trace_buffer or 256,
            dump_path=args.trace_dump,
        )
    print(
        f"Planning {args.num_shards} shard(s) from {args.artifact} "
        f"(halo_hops>={args.halo_hops}, verify={not args.no_verify})..."
    )
    router = ShardRouter.from_artifact(
        args.artifact,
        num_shards=args.num_shards,
        halo_hops=args.halo_hops,
        seed=args.seed,
        verify=not args.no_verify,
        tracer=tracer,  # None falls back to REPRO_TRACE_* (Tracer.from_env)
        max_batch_size=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        adaptive_wait=True,
        delta_max_pending=args.delta_max_pending,
        delta_max_age_s=args.delta_max_age_s,
    )
    stats = router.plan.stats()
    print(
        f"  shards: owned={stats['owned_sizes']} halo={stats['halo_sizes']} "
        f"hops={stats['halo_hops']} verified={stats['verified']}"
    )
    run_server(
        router, host=args.host, port=args.port, max_inflight=args.max_inflight
    )
    print("repro serve: shut down cleanly")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import read_traces, render_waterfall, summarize_traces

    try:
        traces = read_traces(args.file)
    except OSError as exc:
        raise SystemExit(f"cannot read trace dump: {exc}") from None
    if not traces:
        print(f"no traces in {args.file}")
        return 1
    print(summarize_traces(traces))
    slowest = sorted(
        traces, key=lambda t: float(t.get("duration_s", 0.0)), reverse=True
    )
    for trace in slowest[: max(args.top, 0)]:
        print()
        print(render_waterfall(trace))
    return 0


def _cmd_lint(args) -> int:
    # Lazy import: the checker suite is pure stdlib but there is no reason
    # to parse it for every ``repro run``.
    from pathlib import Path as _Path

    from repro.analysis import (
        collect_findings,
        default_baseline_path,
        run_lint,
        save_baseline,
    )

    paths = [_Path(p) for p in args.paths] if args.paths else None
    baseline_path = (
        _Path(args.baseline) if args.baseline else default_baseline_path()
    )
    if args.write_baseline:
        findings = collect_findings(paths, only=args.only)
        count = save_baseline(baseline_path, findings)
        print(f"wrote {count} finding(s) to {baseline_path}")
        return 0
    report = run_lint(paths, baseline_path=baseline_path, only=args.only)
    print(report.render(show_baselined=args.show_baselined))
    if not report.ok:
        return 1
    if args.check and report.stale_keys:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "benchmarks":
        result = table1.run(scale=SMALL)
        print(table1.format_result(result))
        return 0

    if args.command == "run":
        return _cmd_run(args)

    if args.command == "report":
        print(render_results_dir(args.results_dir, args.experiments))
        return 0

    if args.command == "ingest":
        return _cmd_ingest(args)

    if args.command == "fit":
        return _cmd_fit(args)

    if args.command == "score":
        return _cmd_score(args)

    if args.command == "serve-bench":
        return _cmd_serve_bench(args)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "detectors":
        for name in api.available_detectors():
            print(name)
        return 0

    if args.command == "trace":
        return _cmd_trace(args)

    if args.command == "lint":
        return _cmd_lint(args)

    return 1  # pragma: no cover - argparse enforces the choices above


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
