"""Command-line interface for the reproduction.

Three subcommands cover the common workflows:

``python -m repro benchmarks``
    Print Table I statistics for the three synthetic benchmarks.

``python -m repro run <experiment> [--scale small|medium] [--seed N]``
    Run one experiment (``table1`` ... ``fig10``) and print the regenerated
    table or series.

``python -m repro report <results_dir> [--experiment ID]``
    Re-render experiment results previously saved by the benchmark suite.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS, run_experiment, table1
from repro.experiments.report import render_results_dir
from repro.experiments.settings import MEDIUM, SMALL

_SCALES = {"small": SMALL, "medium": MEDIUM}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BSG4Bot reproduction: run experiments and inspect results.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("benchmarks", help="print statistics of the synthetic benchmarks")

    run_parser = subparsers.add_parser("run", help="run one experiment (table/figure)")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    run_parser.add_argument("--scale", choices=sorted(_SCALES), default="small")
    run_parser.add_argument("--seed", type=int, default=0)

    report_parser = subparsers.add_parser("report", help="render saved benchmark results")
    report_parser.add_argument("results_dir", help="directory with <experiment>.json files")
    report_parser.add_argument(
        "--experiment", action="append", dest="experiments", default=None,
        help="limit the report to one experiment (repeatable)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "benchmarks":
        result = table1.run(scale=SMALL)
        print(table1.format_result(result))
        return 0

    if args.command == "run":
        scale = _SCALES[args.scale]
        module = EXPERIMENTS[args.experiment]
        kwargs = {"scale": scale}
        # Every experiment accepts a seed except where it is irrelevant.
        if "seed" in module.run.__code__.co_varnames:
            kwargs["seed"] = args.seed
        result = run_experiment(args.experiment, **kwargs)
        print(module.format_result(result))
        return 0

    if args.command == "report":
        print(render_results_dir(args.results_dir, args.experiments))
        return 0

    return 1  # pragma: no cover - argparse enforces the choices above


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
