"""Temporal activity feature (Section II-B and Eq. 3, the x_tmp block).

The paper records the number of tweets posted per month over the past 12
months, fills missing months with zeros, converts counts to per-month
percentages and passes them through a fully connected layer.  Here we produce
the percentage vector plus two summary statistics (activity regularity and
burstiness) that the downstream linear projection can exploit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.users import UserRecord


def temporal_activity_features(
    users: Sequence[UserRecord],
    months: int = 12,
) -> np.ndarray:
    """Per-month tweet percentage over the last ``months`` months + stats."""
    rows = []
    for user in users:
        counts = user.monthly_tweet_counts(months=months)
        total = counts.sum()
        percentages = counts / total if total > 0 else np.zeros_like(counts)
        mean = counts.mean()
        std = counts.std()
        regularity = std / (mean + 1e-9)  # coefficient of variation
        active_months = float(np.count_nonzero(counts)) / months
        rows.append(np.concatenate([percentages, [regularity, active_months]]))
    if not rows:
        return np.zeros((0, months + 2))
    return np.stack(rows)
