"""Description and tweet-content embeddings (the x_des and x_tweet blocks)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.users import UserRecord
from repro.text import PseudoTextEncoder


def description_features(
    users: Sequence[UserRecord],
    encoder: PseudoTextEncoder,
) -> np.ndarray:
    """Embed each user's profile description."""
    return encoder.encode_batch([user.description for user in users])


def tweet_features(
    users: Sequence[UserRecord],
    encoder: PseudoTextEncoder,
    max_tweets: int | None = None,
) -> np.ndarray:
    """Average embedding of each user's (most recent) tweets."""
    rows = []
    for user in users:
        tweets = user.tweets if max_tweets is None else user.tweets[:max_tweets]
        rows.append(encoder.encode_user(tweet.text for tweet in tweets))
    if not rows:
        return np.zeros((0, encoder.dim))
    return np.stack(rows)
