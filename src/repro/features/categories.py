"""Tweet content-category feature (Section II-B and Eq. 3, the x_ctg block).

For each user the most recent tweets are embedded, all tweet embeddings are
clustered into ``n_categories`` clusters with K-Means, and the user feature
is the z-scored number of distinct categories the user posted in,
concatenated with the per-category percentage of their tweets.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.datasets.users import UserRecord
from repro.features.metadata import zscore
from repro.text import KMeans, PseudoTextEncoder


def cluster_tweets(
    users: Sequence[UserRecord],
    encoder: PseudoTextEncoder,
    n_categories: int = 20,
    max_tweets: int = 200,
    seed: int = 0,
) -> Tuple[List[np.ndarray], KMeans]:
    """Cluster all tweets; return per-user cluster assignments and the model."""
    texts: List[str] = []
    owners: List[int] = []
    for index, user in enumerate(users):
        for tweet in user.tweets[:max_tweets]:
            texts.append(tweet.text)
            owners.append(index)
    if not texts:
        return [np.empty(0, dtype=np.int64) for _ in users], KMeans(n_clusters=n_categories, seed=seed)
    embeddings = encoder.encode_batch(texts)
    n_clusters = min(n_categories, embeddings.shape[0])
    kmeans = KMeans(n_clusters=n_clusters, seed=seed)
    assignments = kmeans.fit_predict(embeddings)
    owners_arr = np.asarray(owners)
    per_user = [assignments[owners_arr == index] for index in range(len(users))]
    return per_user, kmeans


def category_counts(per_user_assignments: Sequence[np.ndarray], n_categories: int) -> np.ndarray:
    """Number of distinct content categories used by each user."""
    return np.asarray(
        [float(np.unique(assignment).size) for assignment in per_user_assignments]
    )


def content_category_features(
    users: Sequence[UserRecord],
    encoder: PseudoTextEncoder,
    n_categories: int = 20,
    max_tweets: int = 200,
    seed: int = 0,
) -> np.ndarray:
    """The x_ctg block: z-scored category count + per-category percentages."""
    per_user, kmeans = cluster_tweets(
        users, encoder, n_categories=n_categories, max_tweets=max_tweets, seed=seed
    )
    effective_categories = kmeans.n_clusters
    counts = category_counts(per_user, effective_categories)
    counts_z = zscore(counts[:, None])

    percentages = np.zeros((len(users), n_categories))
    for index, assignment in enumerate(per_user):
        if assignment.size == 0:
            continue
        values, value_counts = np.unique(assignment, return_counts=True)
        percentages[index, values] = value_counts / assignment.size
    return np.concatenate([counts_z, percentages], axis=1)
