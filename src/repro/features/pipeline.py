"""End-to-end feature assembly (Eq. 3) with per-block slices for ablations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.datasets.users import UserRecord
from repro.features.categories import content_category_features
from repro.features.metadata import (
    categorical_metadata_features,
    numerical_metadata_features,
)
from repro.features.temporal import temporal_activity_features
from repro.features.textual import description_features, tweet_features
from repro.text import PseudoTextEncoder


@dataclass
class FeatureConfig:
    """Which feature blocks to compute and their dimensions.

    ``include_category_feature`` and ``include_temporal_feature`` are the
    ablation switches of Table V ("w/o tweet category feature", "w/o tweet
    temporal feature").
    """

    text_dim: int = 32
    n_categories: int = 20
    temporal_months: int = 12
    max_tweets: int = 200
    include_description: bool = True
    include_tweet: bool = True
    include_numerical: bool = True
    include_categorical: bool = True
    include_category_feature: bool = True
    include_temporal_feature: bool = True
    seed: int = 0


class FeaturePipeline:
    """Assemble the node feature matrix from raw user records."""

    def __init__(self, config: FeatureConfig | None = None) -> None:
        self.config = config or FeatureConfig()
        self.encoder = PseudoTextEncoder(dim=self.config.text_dim, seed=self.config.seed)
        self.block_slices: Dict[str, slice] = {}

    def transform(self, users: Sequence[UserRecord]) -> np.ndarray:
        """Return the ``(n_users, feature_dim)`` matrix of Eq. 3."""
        config = self.config
        blocks: List[Tuple[str, np.ndarray]] = []
        if config.include_description:
            blocks.append(("description", description_features(users, self.encoder)))
        if config.include_tweet:
            blocks.append(("tweet", tweet_features(users, self.encoder, max_tweets=config.max_tweets)))
        if config.include_numerical:
            blocks.append(("numerical", numerical_metadata_features(users)))
        if config.include_categorical:
            blocks.append(("categorical", categorical_metadata_features(users)))
        if config.include_category_feature:
            blocks.append(
                (
                    "category",
                    content_category_features(
                        users,
                        self.encoder,
                        n_categories=config.n_categories,
                        max_tweets=config.max_tweets,
                        seed=config.seed,
                    ),
                )
            )
        if config.include_temporal_feature:
            blocks.append(
                ("temporal", temporal_activity_features(users, months=config.temporal_months))
            )
        if not blocks:
            raise ValueError("at least one feature block must be enabled")

        self.block_slices = {}
        offset = 0
        for name, block in blocks:
            width = block.shape[1]
            self.block_slices[name] = slice(offset, offset + width)
            offset += width
        return np.concatenate([block for _, block in blocks], axis=1)

    @property
    def feature_names(self) -> List[str]:
        return list(self.block_slices.keys())
