"""Metadata feature encoders (numerical and categorical), as in BotRGCN."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.datasets.users import UserRecord

NUMERICAL_FIELDS = (
    "followers_count",
    "friends_count",
    "listed_count",
    "statuses_count",
    "favourites_count",
    "account_age_days",
)

CATEGORICAL_FIELDS = (
    "verified",
    "default_profile_image",
    "has_url",
    "has_location",
)


def zscore(matrix: np.ndarray, axis: int = 0, eps: float = 1e-9) -> np.ndarray:
    """Column-wise z-score normalisation."""
    matrix = np.asarray(matrix, dtype=np.float64)
    mean = matrix.mean(axis=axis, keepdims=True)
    std = matrix.std(axis=axis, keepdims=True)
    return (matrix - mean) / (std + eps)


def numerical_metadata_features(users: Sequence[UserRecord]) -> np.ndarray:
    """Log-scaled, z-scored numeric metadata (followers, friends, ...)."""
    rows: List[List[float]] = []
    for user in users:
        row = [float(getattr(user, field)) for field in NUMERICAL_FIELDS]
        rows.append(row)
    matrix = np.asarray(rows, dtype=np.float64)
    # Heavy-tailed counters are log-compressed before normalisation.
    matrix = np.log1p(np.clip(matrix, 0.0, None))
    return zscore(matrix)


def categorical_metadata_features(users: Sequence[UserRecord]) -> np.ndarray:
    """Binary categorical properties plus a screen-name digit indicator."""
    rows: List[List[float]] = []
    for user in users:
        row = [float(bool(getattr(user, field))) for field in CATEGORICAL_FIELDS]
        row.append(float(any(ch.isdigit() for ch in user.screen_name)))
        row.append(float(len(user.screen_name)) / 20.0)
        rows.append(row)
    return np.asarray(rows, dtype=np.float64)
