"""Feature pipeline implementing the node feature initialisation of Eq. 3.

``x_i = [x_des ; x_tweet ; x_num ; x_cat ; x_ctg ; x_tmp]`` where the first
four blocks follow BotRGCN (description embedding, tweet embedding, numeric
metadata, categorical metadata) and the last two are the features the paper
adds after the data observation of Section II-B: tweet content categories
and temporal activity.
"""

from repro.features.metadata import (
    categorical_metadata_features,
    numerical_metadata_features,
    zscore,
)
from repro.features.textual import description_features, tweet_features
from repro.features.categories import content_category_features
from repro.features.temporal import temporal_activity_features
from repro.features.pipeline import FeatureConfig, FeaturePipeline

__all__ = [
    "zscore",
    "numerical_metadata_features",
    "categorical_metadata_features",
    "description_features",
    "tweet_features",
    "content_category_features",
    "temporal_activity_features",
    "FeatureConfig",
    "FeaturePipeline",
]
