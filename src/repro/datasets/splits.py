"""Train/validation/test split helpers."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def split_masks(
    num_nodes: int,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    seed: int = 0,
    labels: np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random (optionally label-stratified) train/val/test boolean masks."""
    if train_fraction <= 0 or val_fraction < 0 or train_fraction + val_fraction >= 1:
        raise ValueError("fractions must satisfy 0 < train, 0 <= val, train + val < 1")
    rng = np.random.default_rng(seed)
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)

    if labels is None:
        groups = [np.arange(num_nodes)]
    else:
        labels = np.asarray(labels)
        groups = [np.flatnonzero(labels == value) for value in np.unique(labels)]

    for group in groups:
        permuted = rng.permutation(group)
        n_train = max(int(round(train_fraction * group.size)), 1)
        n_val = int(round(val_fraction * group.size))
        train_mask[permuted[:n_train]] = True
        val_mask[permuted[n_train : n_train + n_val]] = True
        test_mask[permuted[n_train + n_val :]] = True
    return train_mask, val_mask, test_mask


def subsample_train_mask(
    train_mask: np.ndarray,
    fraction: float,
    seed: int = 0,
    labels: np.ndarray | None = None,
) -> np.ndarray:
    """Keep only ``fraction`` of the training nodes (Figure 7 sweep).

    When ``labels`` are given the subsample is stratified so that small
    fractions still contain both classes.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    indices = np.flatnonzero(train_mask)
    new_mask = np.zeros_like(train_mask)
    if labels is None:
        groups = [indices]
    else:
        labels = np.asarray(labels)
        groups = [indices[labels[indices] == value] for value in np.unique(labels[indices])]
    for group in groups:
        if group.size == 0:
            continue
        keep = max(int(round(fraction * group.size)), 1)
        chosen = rng.permutation(group)[:keep]
        new_mask[chosen] = True
    return new_mask
