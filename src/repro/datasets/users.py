"""Synthetic user and tweet records.

:class:`UserSimulator` draws user profiles whose metadata, tweet topics and
temporal activity differ between bots and genuine users in the way the paper
observes (Section II-B):

* bots focus on a handful of content categories, humans are broad;
* bots tweet at a regular cadence, humans are bursty with spikes and gaps;
* bot accounts carry tell-tale metadata (young accounts, default profile
  images, follower/friend imbalance).

Crucially, the separation is *imperfect* — this is what makes the benchmarks
hard in the same way the real ones are.  Each bot independently mimics human
metadata, content breadth and temporal burstiness with probability
``difficulty`` (the adversarial "well-designed features" of Figure 1), and a
fraction of genuine users naturally exhibit bot-like traits (narrow interests,
regular posting, sparse profiles).  TwiBot-22-style data uses a high
difficulty, TwiBot-20-style data a lower one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.topics import (
    BOT_PREFERRED_TOPICS,
    TOPIC_NAMES,
    compose_tweet,
)

HUMAN = 0
BOT = 1

ACTIVITY_MONTHS = 18


@dataclass
class TweetRecord:
    """One synthetic tweet: text plus the month (0..17, most recent last)."""

    text: str
    month: int
    topic: str


@dataclass
class UserRecord:
    """A synthetic account with the raw fields the feature pipeline consumes."""

    user_id: int
    label: int
    followers_count: int
    friends_count: int
    listed_count: int
    statuses_count: int
    favourites_count: int
    account_age_days: int
    verified: bool
    default_profile_image: bool
    has_url: bool
    has_location: bool
    screen_name: str
    description: str
    topics: List[str] = field(default_factory=list)
    tweets: List[TweetRecord] = field(default_factory=list)
    community: int = 0

    @property
    def is_bot(self) -> bool:
        return self.label == BOT

    def monthly_tweet_counts(self, months: int = ACTIVITY_MONTHS) -> np.ndarray:
        """Number of tweets in each of the last ``months`` months."""
        counts = np.zeros(months, dtype=np.float64)
        for tweet in self.tweets:
            if 0 <= tweet.month < months:
                counts[tweet.month] += 1
        return counts


@dataclass
class _BehaviourProfile:
    """Which behavioural axes of an account look bot-like vs human-like."""

    botlike_metadata: bool
    botlike_content: bool
    botlike_temporal: bool


class UserSimulator:
    """Draws :class:`UserRecord` instances with label-dependent behaviour."""

    #: Fraction of genuine users that naturally show each bot-like trait.
    HUMAN_NARROW_PROB = 0.30
    HUMAN_REGULAR_PROB = 0.25
    HUMAN_SPARSE_PROFILE_PROB = 0.20

    def __init__(
        self,
        seed: int = 0,
        difficulty: float = 0.3,
        tweets_per_user: int = 24,
        months: int = ACTIVITY_MONTHS,
    ) -> None:
        if not 0.0 <= difficulty <= 1.0:
            raise ValueError("difficulty must be in [0, 1]")
        self.rng = np.random.default_rng(seed)
        self.difficulty = difficulty
        self.tweets_per_user = tweets_per_user
        self.months = months

    # ------------------------------------------------------------------
    # Behaviour assignment
    # ------------------------------------------------------------------
    def _draw_behaviour(self, label: int, rng: np.random.Generator) -> _BehaviourProfile:
        if label == BOT:
            # Each axis is independently mimicked with probability `difficulty`.
            return _BehaviourProfile(
                botlike_metadata=rng.random() >= self.difficulty,
                botlike_content=rng.random() >= self.difficulty,
                botlike_temporal=rng.random() >= self.difficulty,
            )
        return _BehaviourProfile(
            botlike_metadata=rng.random() < self.HUMAN_SPARSE_PROFILE_PROB,
            botlike_content=rng.random() < self.HUMAN_NARROW_PROB,
            botlike_temporal=rng.random() < self.HUMAN_REGULAR_PROB,
        )

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def _draw_metadata(self, botlike: bool, rng: np.random.Generator) -> Dict[str, float]:
        """Metadata counters; bot-like accounts are young with follower deficits."""
        if botlike:
            followers = rng.lognormal(mean=3.6, sigma=1.3)
            friends = rng.lognormal(mean=6.0, sigma=1.1)
            listed = rng.poisson(2.0)
            statuses = rng.lognormal(mean=7.2, sigma=1.0)
            favourites = rng.lognormal(mean=3.0, sigma=1.3)
            age_days = rng.integers(30, 1200)
            verified = rng.random() < 0.01
            default_image = rng.random() < 0.35
            has_url = rng.random() < 0.3
            has_location = rng.random() < 0.3
        else:
            followers = rng.lognormal(mean=5.2, sigma=1.5)
            friends = rng.lognormal(mean=5.2, sigma=1.2)
            listed = rng.poisson(5.0)
            statuses = rng.lognormal(mean=6.8, sigma=1.3)
            favourites = rng.lognormal(mean=5.6, sigma=1.4)
            age_days = rng.integers(150, 4500)
            verified = rng.random() < 0.07
            default_image = rng.random() < 0.08
            has_url = rng.random() < 0.55
            has_location = rng.random() < 0.65
        return {
            "followers_count": int(followers),
            "friends_count": int(friends),
            "listed_count": int(listed),
            "statuses_count": int(statuses),
            "favourites_count": int(favourites),
            "account_age_days": int(age_days),
            "verified": bool(verified),
            "default_profile_image": bool(default_image),
            "has_url": bool(has_url),
            "has_location": bool(has_location),
        }

    # ------------------------------------------------------------------
    # Topics, description and tweets
    # ------------------------------------------------------------------
    def _draw_topics(self, label: int, botlike_content: bool, rng: np.random.Generator) -> List[str]:
        if botlike_content:
            count = int(rng.integers(1, 4))
            if label == BOT:
                preferred = list(BOT_PREFERRED_TOPICS)
                rng.shuffle(preferred)
                topics = preferred[:count]
            else:
                topics = list(rng.choice(TOPIC_NAMES, size=count, replace=False))
        else:
            count = int(rng.integers(5, 12))
            topics = list(rng.choice(TOPIC_NAMES, size=count, replace=False))
        return topics

    def _draw_description(
        self, label: int, botlike_content: bool, topics: Sequence[str], rng: np.random.Generator
    ) -> str:
        pieces = list(topics[:3])
        if label == BOT and botlike_content and rng.random() < 0.7:
            pieces += ["follow", "link", "free", "dm", "promo"]
        else:
            pieces += ["family", "coffee", "opinions", "mine", "love"]
        rng.shuffle(pieces)
        return " ".join(pieces)

    def _draw_screen_name(self, botlike_metadata: bool, rng: np.random.Generator) -> str:
        letters = "abcdefghijklmnopqrstuvwxyz"
        length = int(rng.integers(5, 12))
        name = "".join(rng.choice(list(letters), size=length))
        digit_prob = 0.6 if botlike_metadata else 0.2
        if rng.random() < digit_prob:
            name += str(rng.integers(10, 99999))
        return name

    def _draw_monthly_profile(self, botlike_temporal: bool, rng: np.random.Generator) -> np.ndarray:
        """Unnormalised per-month tweeting intensity over the activity window."""
        months = self.months
        if botlike_temporal:
            base = rng.uniform(0.8, 1.2)
            profile = base + rng.normal(0.0, 0.1, size=months)
        else:
            profile = rng.gamma(shape=0.8, scale=1.0, size=months)
            for _ in range(int(rng.integers(1, 4))):
                spike_month = rng.integers(0, months)
                profile[spike_month] += rng.uniform(2.0, 6.0)
            quiet = rng.integers(0, months, size=int(rng.integers(1, 4)))
            profile[quiet] *= 0.1
        return np.clip(profile, 0.0, None) + 1e-6

    def _draw_tweets(
        self,
        botlike_content: bool,
        botlike_temporal: bool,
        topics: Sequence[str],
        rng: np.random.Generator,
    ) -> List[TweetRecord]:
        profile = self._draw_monthly_profile(botlike_temporal, rng)
        probabilities = profile / profile.sum()
        months = rng.choice(self.months, size=self.tweets_per_user, p=probabilities)
        if botlike_content and len(topics) > 1:
            # Task-oriented accounts hammer their first topic most of the time.
            topic_probs = np.full(len(topics), 0.2 / (len(topics) - 1))
            topic_probs[0] = 0.8
        else:
            topic_probs = np.full(len(topics), 1.0 / len(topics))
        tweets: List[TweetRecord] = []
        for month in months:
            topic = str(rng.choice(topics, p=topic_probs))
            tweets.append(TweetRecord(text=compose_tweet(topic, rng), month=int(month), topic=topic))
        return tweets

    # ------------------------------------------------------------------
    def draw_user(self, user_id: int, label: int, community: int = 0) -> UserRecord:
        """Draw one user with the given label and community assignment."""
        rng = self.rng
        behaviour = self._draw_behaviour(label, rng)
        metadata = self._draw_metadata(behaviour.botlike_metadata, rng)
        topics = self._draw_topics(label, behaviour.botlike_content, rng)
        record = UserRecord(
            user_id=user_id,
            label=label,
            community=community,
            screen_name=self._draw_screen_name(behaviour.botlike_metadata, rng),
            description=self._draw_description(label, behaviour.botlike_content, topics, rng),
            topics=topics,
            tweets=self._draw_tweets(
                behaviour.botlike_content, behaviour.botlike_temporal, topics, rng
            ),
            **metadata,
        )
        return record

    def draw_population(
        self,
        labels: Sequence[int],
        communities: Optional[Sequence[int]] = None,
    ) -> List[UserRecord]:
        """Draw one user per entry of ``labels``."""
        if communities is None:
            communities = [0] * len(labels)
        if len(communities) != len(labels):
            raise ValueError("labels and communities must have equal length")
        return [
            self.draw_user(user_id=i, label=int(label), community=int(comm))
            for i, (label, comm) in enumerate(zip(labels, communities))
        ]
