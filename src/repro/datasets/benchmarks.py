"""Benchmark factories: synthetic TwiBot-20, TwiBot-22 and MGTAB equivalents.

Each factory simulates the raw accounts, generates the relation graph,
assembles the Eq. 3 node features and packs everything into a
:class:`BotBenchmark`.  Sizes are scaled down from Table I so the whole
evaluation runs on a laptop; class balance, relation counts, homophily
profile and the community structure of TwiBot-22 are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.datasets.network import NetworkConfig, generate_relations
from repro.datasets.splits import split_masks
from repro.datasets.users import BOT, HUMAN, UserRecord, UserSimulator
from repro.features.pipeline import FeatureConfig, FeaturePipeline
from repro.graph import HeteroGraph


@dataclass
class BotBenchmark:
    """A benchmark instance: the graph, the raw records and the communities."""

    name: str
    graph: HeteroGraph
    users: List[UserRecord]
    communities: np.ndarray
    feature_pipeline: FeaturePipeline
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_communities(self) -> int:
        return int(self.communities.max()) + 1 if self.communities.size else 0

    def community_indices(self, community: int) -> np.ndarray:
        return np.flatnonzero(self.communities == community)

    def community_graph(self, community: int) -> HeteroGraph:
        """Induced subgraph of one community (used in the Figure 9 study)."""
        return self.graph.node_subgraph(self.community_indices(community))

    def statistics(self) -> dict:
        stats = self.graph.statistics()
        stats["num_communities"] = self.num_communities
        return stats


def _build_benchmark(
    name: str,
    num_users: int,
    bot_fraction: float,
    num_communities: int,
    network_config: NetworkConfig,
    difficulty: float,
    feature_config: FeatureConfig,
    seed: int,
    tweets_per_user: int,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    has_temporal_data: bool = True,
) -> BotBenchmark:
    rng = np.random.default_rng(seed)
    labels = (rng.random(num_users) < bot_fraction).astype(np.int64)
    # Guarantee both classes exist even for tiny instances.
    if labels.sum() == 0:
        labels[rng.integers(num_users)] = BOT
    if labels.sum() == num_users:
        labels[rng.integers(num_users)] = HUMAN
    communities = rng.integers(0, num_communities, size=num_users)

    simulator = UserSimulator(
        seed=seed + 1,
        difficulty=difficulty,
        tweets_per_user=tweets_per_user,
    )
    users = simulator.draw_population(labels, communities)

    relations = generate_relations(labels, communities, network_config)

    pipeline = FeaturePipeline(feature_config)
    features = pipeline.transform(users)

    train_mask, val_mask, test_mask = split_masks(
        num_users,
        train_fraction=train_fraction,
        val_fraction=val_fraction,
        seed=seed + 2,
        labels=labels,
    )

    graph = HeteroGraph(
        num_nodes=num_users,
        features=features,
        labels=labels,
        relations=relations,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        name=name,
        metadata={
            "difficulty": difficulty,
            "has_temporal_data": has_temporal_data,
            "feature_blocks": dict(pipeline.block_slices),
        },
    )
    return BotBenchmark(
        name=name,
        graph=graph,
        users=users,
        communities=communities,
        feature_pipeline=pipeline,
        metadata={
            "difficulty": difficulty,
            "bot_fraction": bot_fraction,
            "has_temporal_data": has_temporal_data,
            "seed": seed,
        },
    )


def twibot20(
    num_users: int = 1200,
    seed: int = 0,
    feature_config: Optional[FeatureConfig] = None,
    tweets_per_user: int = 24,
) -> BotBenchmark:
    """TwiBot-20-like benchmark: ~56% bots, 2 relations, relatively separable.

    The real TwiBot-20 has 229,580 users of which 11,826 are labelled
    (5,237 human / 6,589 bot); like prior work we model the labelled core.
    The paper notes the raw data lacks tweet timestamps, so the temporal
    ablation is skipped on this benchmark (``has_temporal_data=False``).
    """
    config = feature_config or FeatureConfig(seed=seed)
    return _build_benchmark(
        name="twibot-20",
        num_users=num_users,
        bot_fraction=0.557,
        num_communities=3,
        network_config=NetworkConfig.twitter_two_relations(seed=seed + 10, bot_to_bot=0.2),
        difficulty=0.28,
        feature_config=config,
        seed=seed,
        tweets_per_user=tweets_per_user,
        has_temporal_data=False,
    )


def twibot22(
    num_users: int = 2000,
    seed: int = 0,
    feature_config: Optional[FeatureConfig] = None,
    num_communities: int = 10,
    tweets_per_user: int = 24,
) -> BotBenchmark:
    """TwiBot-22-like benchmark: ~14% bots, 2 relations, 10 communities, hard.

    The higher ``difficulty`` makes a large fraction of bots mimic human
    metadata and content, which is what pushes every model's F1 into the
    50-60 range in the paper's Table II.
    """
    config = feature_config or FeatureConfig(seed=seed)
    return _build_benchmark(
        name="twibot-22",
        num_users=num_users,
        bot_fraction=0.14,
        num_communities=num_communities,
        network_config=NetworkConfig.twitter_two_relations(seed=seed + 10, bot_to_bot=0.1),
        difficulty=0.45,
        feature_config=config,
        seed=seed,
        tweets_per_user=tweets_per_user,
    )


def mgtab(
    num_users: int = 1000,
    seed: int = 0,
    feature_config: Optional[FeatureConfig] = None,
    tweets_per_user: int = 24,
) -> BotBenchmark:
    """MGTAB-like benchmark: ~27% bots, 7 relations, graph homophily ~0.65."""
    config = feature_config or FeatureConfig(seed=seed)
    return _build_benchmark(
        name="mgtab",
        num_users=num_users,
        bot_fraction=0.27,
        num_communities=3,
        network_config=NetworkConfig.mgtab_seven_relations(seed=seed + 10),
        difficulty=0.15,
        feature_config=config,
        seed=seed,
        tweets_per_user=tweets_per_user,
    )


_BENCHMARK_FACTORIES: Dict[str, Callable[..., BotBenchmark]] = {
    "twibot-20": twibot20,
    "twibot-22": twibot22,
    "mgtab": mgtab,
}


def available_benchmarks() -> List[str]:
    """Names accepted by :func:`load_benchmark`."""
    return list(_BENCHMARK_FACTORIES.keys())


def load_benchmark(name: str, **kwargs) -> BotBenchmark:
    """Build a benchmark by name (``twibot-20``, ``twibot-22`` or ``mgtab``)."""
    key = name.lower()
    if key not in _BENCHMARK_FACTORIES:
        raise KeyError(f"unknown benchmark {name!r}; options: {available_benchmarks()}")
    return _BENCHMARK_FACTORIES[key](**kwargs)
