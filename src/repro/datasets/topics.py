"""Topic vocabularies used to synthesise tweet text.

Each topic has a handful of signature keywords.  A tweet about a topic mixes
several of its keywords with generic filler words, so the pseudo-RoBERTa
encoder places tweets of the same topic close together and K-Means recovers
topic-like content categories — reproducing the behaviour the paper observes
in Figure 2.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

TOPIC_KEYWORDS: Dict[str, List[str]] = {
    "politics": ["election", "senate", "vote", "policy", "congress", "campaign"],
    "sports": ["game", "score", "team", "league", "playoffs", "coach"],
    "crypto": ["bitcoin", "token", "airdrop", "blockchain", "wallet", "pump"],
    "music": ["album", "concert", "tour", "single", "playlist", "band"],
    "movies": ["trailer", "premiere", "boxoffice", "sequel", "director", "cast"],
    "tech": ["startup", "gadget", "software", "launch", "update", "device"],
    "science": ["research", "study", "experiment", "journal", "data", "lab"],
    "health": ["fitness", "diet", "wellness", "sleep", "workout", "nutrition"],
    "finance": ["stocks", "market", "earnings", "dividend", "portfolio", "trading"],
    "travel": ["flight", "hotel", "beach", "itinerary", "passport", "adventure"],
    "food": ["recipe", "restaurant", "dinner", "baking", "chef", "delicious"],
    "fashion": ["outfit", "style", "designer", "runway", "trend", "collection"],
    "gaming": ["console", "stream", "esports", "patch", "speedrun", "lobby"],
    "weather": ["storm", "forecast", "heatwave", "rainfall", "hurricane", "snow"],
    "news": ["breaking", "report", "headline", "coverage", "update", "sources"],
    "memes": ["lol", "meme", "viral", "funny", "relatable", "mood"],
    "pets": ["puppy", "kitten", "rescue", "adopt", "vet", "fluffy"],
    "books": ["novel", "author", "chapter", "reading", "bookclub", "library"],
    "cars": ["engine", "horsepower", "roadtrip", "electric", "garage", "torque"],
    "promo": ["discount", "giveaway", "promo", "limited", "offer", "deal"],
    "conspiracy": ["coverup", "truth", "exposed", "agenda", "wake", "sheeple"],
    "spam": ["follow", "followback", "gain", "free", "click", "link"],
}

FILLER_WORDS: List[str] = [
    "today",
    "really",
    "just",
    "think",
    "people",
    "time",
    "right",
    "never",
    "always",
    "great",
    "new",
    "best",
    "check",
    "this",
    "wow",
]

TOPIC_NAMES: List[str] = list(TOPIC_KEYWORDS.keys())

# Topics that bots disproportionately focus on (task-oriented behaviour).
BOT_PREFERRED_TOPICS: List[str] = ["crypto", "promo", "spam", "politics", "conspiracy", "news"]


def compose_tweet(topic: str, rng: np.random.Generator, mention: str | None = None) -> str:
    """Build one synthetic tweet string dominated by ``topic`` keywords."""
    keywords = TOPIC_KEYWORDS[topic]
    chosen = list(rng.choice(keywords, size=min(3, len(keywords)), replace=False))
    fillers = list(rng.choice(FILLER_WORDS, size=3, replace=False))
    words = chosen + fillers
    rng.shuffle(words)
    text = " ".join(words)
    if mention is not None:
        text = f"@{mention} " + text
    if rng.random() < 0.3:
        text += f" #{topic}"
    return text
