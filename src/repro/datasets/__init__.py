"""Synthetic benchmark substrate.

The public TwiBot-20, TwiBot-22 and MGTAB benchmarks cannot be shipped with
this reproduction (they are large and access-gated), so this package builds
laptop-scale synthetic equivalents that preserve the statistical structure
the paper's mechanisms rely on:

* class balance and relation counts of Table I (scaled down),
* the structural pattern of Figure 1 (humans interconnect; bots connect
  mostly to humans), giving the homophily profile reported in Figure 8,
* the feature observations of Section II-B (bots tweet about few content
  categories with regular temporal activity; humans are broad and bursty),
* TwiBot-22's ten non-overlapping communities used for the generalization
  study (Figure 9).
"""

from repro.datasets.benchmarks import (
    BotBenchmark,
    available_benchmarks,
    load_benchmark,
    mgtab,
    twibot20,
    twibot22,
)
from repro.datasets.users import TweetRecord, UserRecord, UserSimulator
from repro.datasets.network import NetworkConfig, generate_relations
from repro.datasets.splits import split_masks, subsample_train_mask
from repro.datasets.adapters import (
    AdapterError,
    DatasetAdapter,
    DatasetSpec,
    SyntheticBotnetAdapter,
    available_adapters,
    create_adapter,
    graph_fingerprint,
    ingest_spec,
    load_dataset_spec,
    register_adapter,
    resolve_dataset_graph,
)

__all__ = [
    "AdapterError",
    "DatasetAdapter",
    "DatasetSpec",
    "SyntheticBotnetAdapter",
    "available_adapters",
    "create_adapter",
    "graph_fingerprint",
    "ingest_spec",
    "load_dataset_spec",
    "register_adapter",
    "resolve_dataset_graph",
    "BotBenchmark",
    "twibot20",
    "twibot22",
    "mgtab",
    "load_benchmark",
    "available_benchmarks",
    "UserRecord",
    "TweetRecord",
    "UserSimulator",
    "NetworkConfig",
    "generate_relations",
    "split_masks",
    "subsample_train_mask",
]
