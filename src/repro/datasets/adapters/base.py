"""Dataset adapter base: stream external graphs into :class:`HeteroGraph`.

Every adapter turns one external data source — CSV/JSONL edge lists, an
exported follower graph, a synthetic generator — into the repo's native
:class:`repro.graph.HeteroGraph` through a single chunked-ingestion
contract:

* :meth:`DatasetAdapter.iter_node_chunks` yields :class:`NodeChunk`\\ s
  (external ids, feature rows, labels) in a **deterministic order that does
  not depend on the chunk size**;
* :meth:`DatasetAdapter.iter_edge_chunks` yields :class:`EdgeChunk`\\ s
  referencing nodes by their external ids.

The base class owns the assembly: :meth:`DatasetAdapter.ingest` is the
chunked fast path (incremental id mapping, per-chunk feature blocks,
streaming edge remap — node payloads never have to fit in one Python list),
and :meth:`DatasetAdapter.ingest_oneshot` is the obviously-correct reference
that materializes the whole stream first.  The two must agree
**bit-for-bit** — the same oracle discipline as the PPR frontier and the
collation pack (ROADMAP "Invariants to preserve"); the equivalence is
asserted per adapter in ``tests/test_dataset_adapters.py`` via
:func:`graph_fingerprint`.

Adapters register in :data:`ADAPTERS` (mirroring
:class:`repro.api.DetectorRegistry`) and are constructed from plain config
dicts — the same dicts a ``spec.yaml`` carries::

    adapter = create_adapter({"adapter": "csv", "nodes": "nodes.csv",
                              "edges": "edges.csv"})
    graph = adapter.ingest()
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.splits import split_masks
from repro.graph import HeteroGraph


class AdapterError(ValueError):
    """Malformed source data or a bad adapter configuration.

    Every rejection an adapter performs — missing columns, dangling edge
    endpoints, duplicate node ids or labels, inconsistent feature widths —
    raises this one type with a message naming the offending record, so
    callers (CLI, CI matrix legs) can distinguish "your data is broken"
    from a genuine bug.
    """


@dataclass
class NodeChunk:
    """One streamed block of nodes: external ids, feature rows, labels."""

    ids: List[object]
    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.features.ndim != 2:
            raise AdapterError("node chunk features must be a 2-d array")
        if len(self.ids) != self.features.shape[0] or len(self.ids) != self.labels.shape[0]:
            raise AdapterError("node chunk ids/features/labels lengths disagree")


@dataclass
class EdgeChunk:
    """One streamed block of directed edges for a single relation."""

    relation: str
    src: List[object]
    dst: List[object]

    def __post_init__(self) -> None:
        if len(self.src) != len(self.dst):
            raise AdapterError(
                f"edge chunk for relation {self.relation!r} has "
                f"{len(self.src)} sources but {len(self.dst)} destinations"
            )


@dataclass
class SplitPolicy:
    """Declarative train/val/test split applied at ingest time."""

    train_fraction: float = 0.6
    val_fraction: float = 0.2
    seed: int = 0
    stratify: bool = True

    def masks(self, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return split_masks(
            labels.shape[0],
            train_fraction=self.train_fraction,
            val_fraction=self.val_fraction,
            seed=self.seed,
            labels=labels if self.stratify else None,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "train_fraction": self.train_fraction,
            "val_fraction": self.val_fraction,
            "seed": self.seed,
            "stratify": self.stratify,
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, object]]) -> "SplitPolicy":
        data = dict(data or {})
        unknown = sorted(set(data) - {"train_fraction", "val_fraction", "seed", "stratify"})
        if unknown:
            raise AdapterError(f"unknown split key(s) {unknown}")
        return cls(**data)  # type: ignore[arg-type]


class _ChunkedAssembler:
    """Incremental graph assembly: the state behind the chunked fast path.

    External ids map to dense indices in first-seen order; feature blocks
    stay per-chunk until one final concatenate; edges remap per chunk so a
    dangling endpoint fails (or drops) as soon as it streams past, not at
    the end of a multi-gigabyte file.
    """

    def __init__(self, drop_dangling: bool, max_nodes: Optional[int]) -> None:
        self.drop_dangling = drop_dangling
        self.max_nodes = max_nodes
        self.id_index: Dict[object, int] = {}
        self.feature_blocks: List[np.ndarray] = []
        self.label_blocks: List[np.ndarray] = []
        self.edges: Dict[str, Tuple[List[np.ndarray], List[np.ndarray]]] = {}
        self.dropped_edges = 0
        self.full = False
        self._width: Optional[int] = None
        # True while every external id seen so far is exactly its own dense
        # index (0, 1, 2, ...).  Generators like the synthetic adapter emit
        # such ids, and then edge remapping is the identity — a vectorized
        # bounds check replaces the per-endpoint dict lookup.  Values and
        # dtypes are unchanged, so the one-shot oracle still holds.
        self._dense = True

    # -- nodes ----------------------------------------------------------
    def add_nodes(self, chunk: NodeChunk) -> None:
        if self.full:
            return
        ids, features, labels = chunk.ids, chunk.features, chunk.labels
        if self.max_nodes is not None:
            room = self.max_nodes - len(self.id_index)
            if room <= 0:
                self.full = True
                return
            if len(ids) > room:
                ids, features, labels = ids[:room], features[:room], labels[:room]
                self.full = True
        if self._width is None:
            self._width = features.shape[1]
        elif features.shape[1] != self._width:
            raise AdapterError(
                f"inconsistent feature width: chunk has {features.shape[1]} "
                f"columns, earlier chunks had {self._width}"
            )
        base = len(self.id_index)
        for offset, node_id in enumerate(ids):
            if node_id in self.id_index:
                raise AdapterError(f"duplicate node id {node_id!r}")
            if self._dense and not (
                isinstance(node_id, (int, np.integer)) and int(node_id) == base + offset
            ):
                self._dense = False
            self.id_index[node_id] = base + offset
        self.feature_blocks.append(features)
        self.label_blocks.append(labels)

    # -- edges ----------------------------------------------------------
    def add_edges(self, chunk: EdgeChunk) -> None:
        if self._dense:
            src_arr = np.asarray(chunk.src)
            dst_arr = np.asarray(chunk.dst)
            if src_arr.dtype.kind in "iu" and dst_arr.dtype.kind in "iu":
                self._add_edges_dense(
                    chunk.relation,
                    src_arr.astype(np.int64, copy=False),
                    dst_arr.astype(np.int64, copy=False),
                )
                return
        try:
            src = [self.id_index[v] for v in chunk.src]
            dst = [self.id_index[v] for v in chunk.dst]
        except KeyError:
            if not self.drop_dangling:
                bad = next(
                    v for v in list(chunk.src) + list(chunk.dst) if v not in self.id_index
                )
                raise AdapterError(
                    f"dangling edge endpoint {bad!r} in relation "
                    f"{chunk.relation!r}: no such node id"
                ) from None
            kept = [
                (s, d)
                for s, d in zip(chunk.src, chunk.dst)
                if s in self.id_index and d in self.id_index
            ]
            self.dropped_edges += len(chunk.src) - len(kept)
            src = [self.id_index[s] for s, _ in kept]
            dst = [self.id_index[d] for _, d in kept]
        if chunk.relation not in self.edges:
            self.edges[chunk.relation] = ([], [])
        src_blocks, dst_blocks = self.edges[chunk.relation]
        src_blocks.append(np.asarray(src, dtype=np.int64))
        dst_blocks.append(np.asarray(dst, dtype=np.int64))

    def _add_edges_dense(
        self, relation: str, src: np.ndarray, dst: np.ndarray
    ) -> None:
        num_nodes = len(self.id_index)
        valid = (src >= 0) & (src < num_nodes) & (dst >= 0) & (dst < num_nodes)
        if not valid.all():
            if not self.drop_dangling:
                bad_src = src[(src < 0) | (src >= num_nodes)]
                bad = int(bad_src[0]) if bad_src.size else int(
                    dst[(dst < 0) | (dst >= num_nodes)][0]
                )
                raise AdapterError(
                    f"dangling edge endpoint {bad!r} in relation "
                    f"{relation!r}: no such node id"
                )
            self.dropped_edges += int((~valid).sum())
            src = src[valid]
            dst = dst[valid]
        if relation not in self.edges:
            self.edges[relation] = ([], [])
        src_blocks, dst_blocks = self.edges[relation]
        src_blocks.append(src)
        dst_blocks.append(dst)

    # -- finish ---------------------------------------------------------
    def finish(
        self, name: str, split: SplitPolicy, metadata: Dict[str, object]
    ) -> HeteroGraph:
        if not self.feature_blocks:
            raise AdapterError("adapter produced no nodes")
        features = np.concatenate(self.feature_blocks, axis=0)
        labels = np.concatenate(self.label_blocks, axis=0)
        relations = {
            relation: (np.concatenate(srcs), np.concatenate(dsts))
            for relation, (srcs, dsts) in self.edges.items()
        }
        train_mask, val_mask, test_mask = split.masks(labels)
        metadata = dict(metadata)
        metadata["dropped_edges"] = self.dropped_edges
        return HeteroGraph(
            num_nodes=features.shape[0],
            features=features,
            labels=labels,
            relations=relations,
            train_mask=train_mask,
            val_mask=val_mask,
            test_mask=test_mask,
            name=name,
            metadata=metadata,
        )


class DatasetAdapter:
    """Base class: subclasses stream chunks, the base assembles graphs."""

    #: Registry name; subclasses override.
    name = "abstract"
    #: Config keys whose values are filesystem paths — a spec loader
    #: resolves these relative to the spec file, and the ingest cache
    #: digests the files behind them for its content-addressed key.
    PATH_PARAMS: Tuple[str, ...] = ()
    #: Default rows per streamed chunk.
    default_chunk_size = 4096

    def __init__(
        self,
        split: Optional[SplitPolicy] = None,
        max_nodes: Optional[int] = None,
        drop_dangling: Optional[bool] = None,
    ) -> None:
        self.split = split or SplitPolicy()
        if max_nodes is not None and int(max_nodes) <= 0:
            raise AdapterError("max_nodes must be positive")
        self.max_nodes = int(max_nodes) if max_nodes is not None else None
        # A capped sample necessarily severs edges that point past the cap;
        # dropping them is the documented --test semantics.  Uncapped
        # ingestion keeps the strict default: a dangling endpoint is an
        # error unless the adapter config opts out explicitly.
        if drop_dangling is None:
            drop_dangling = self.max_nodes is not None
        self.drop_dangling = bool(drop_dangling)

    # -- subclass contract ----------------------------------------------
    def iter_node_chunks(self, chunk_size: int) -> Iterator[NodeChunk]:
        raise NotImplementedError

    def iter_edge_chunks(self, chunk_size: int) -> Iterator[EdgeChunk]:
        raise NotImplementedError

    def graph_name(self) -> str:
        return self.name

    def metadata(self) -> Dict[str, object]:
        """JSON-safe provenance recorded on the ingested graph."""
        return {"adapter": self.name}

    def source_files(self) -> List[Path]:
        """Files whose contents parameterize this adapter (cache keying)."""
        return []

    # -- ingestion ------------------------------------------------------
    def ingest(self, chunk_size: Optional[int] = None) -> HeteroGraph:  # oracle: ingest_oneshot
        """Chunked streaming ingestion (the fast path).

        Nodes stream first (building the external-id -> dense-index map
        incrementally), then edges remap chunk by chunk.  Bit-identical to
        :meth:`ingest_oneshot` for every chunk size — chunking may change
        peak memory, never a single output bit.
        """
        chunk = int(chunk_size) if chunk_size else self.default_chunk_size
        if chunk <= 0:
            raise AdapterError("chunk_size must be positive")
        assembler = _ChunkedAssembler(self.drop_dangling, self.max_nodes)
        for node_chunk in self.iter_node_chunks(chunk):
            assembler.add_nodes(node_chunk)
            if assembler.full:
                break
        for edge_chunk in self.iter_edge_chunks(chunk):
            assembler.add_edges(edge_chunk)
        return assembler.finish(self.graph_name(), self.split, self.metadata())

    def ingest_oneshot(self) -> HeteroGraph:
        """Reference one-shot construction (the ingestion oracle).

        Materializes the entire node and edge stream into flat Python
        lists, then builds every array in one pass — obviously correct and
        memory-hungry.  :meth:`ingest` must reproduce its output
        bit-for-bit; ``tests/test_dataset_adapters.py`` compares the two
        through :func:`graph_fingerprint` for every adapter.
        """
        chunk = self.default_chunk_size
        ids: List[object] = []
        feature_rows: List[np.ndarray] = []
        label_values: List[int] = []
        for node_chunk in self.iter_node_chunks(chunk):
            for offset, node_id in enumerate(node_chunk.ids):
                ids.append(node_id)
                feature_rows.append(node_chunk.features[offset])
                label_values.append(int(node_chunk.labels[offset]))
        if self.max_nodes is not None:
            ids = ids[: self.max_nodes]
            feature_rows = feature_rows[: self.max_nodes]
            label_values = label_values[: self.max_nodes]
        index: Dict[object, int] = {}
        for position, node_id in enumerate(ids):
            if node_id in index:
                raise AdapterError(f"duplicate node id {node_id!r}")
            index[node_id] = position
        if not ids:
            raise AdapterError("adapter produced no nodes")
        widths = {row.shape[0] for row in feature_rows}
        if len(widths) > 1:
            raise AdapterError(
                f"inconsistent feature width: chunk has {max(widths)} "
                f"columns, earlier chunks had {min(widths)}"
            )
        dropped = 0
        relations: Dict[str, Tuple[List[int], List[int]]] = {}
        for edge_chunk in self.iter_edge_chunks(chunk):
            src_list, dst_list = relations.setdefault(edge_chunk.relation, ([], []))
            for s, d in zip(edge_chunk.src, edge_chunk.dst):
                if s not in index or d not in index:
                    if self.drop_dangling:
                        dropped += 1
                        continue
                    bad = s if s not in index else d
                    raise AdapterError(
                        f"dangling edge endpoint {bad!r} in relation "
                        f"{edge_chunk.relation!r}: no such node id"
                    )
                src_list.append(index[s])
                dst_list.append(index[d])
        features = np.asarray(feature_rows, dtype=np.float64)
        labels = np.asarray(label_values, dtype=np.int64)
        train_mask, val_mask, test_mask = self.split.masks(labels)
        metadata = dict(self.metadata())
        metadata["dropped_edges"] = dropped
        return HeteroGraph(
            num_nodes=features.shape[0],
            features=features,
            labels=labels,
            relations={
                name: (
                    np.asarray(srcs, dtype=np.int64),
                    np.asarray(dsts, dtype=np.int64),
                )
                for name, (srcs, dsts) in relations.items()
            },
            train_mask=train_mask,
            val_mask=val_mask,
            test_mask=test_mask,
            name=self.graph_name(),
            metadata=metadata,
        )


def graph_fingerprint(graph: HeteroGraph) -> str:
    """Content hash of everything that defines an ingested graph.

    Covers node count, features, labels, the three split masks, and every
    relation's edge arrays in relation order — two graphs with the same
    fingerprint are bit-identical inputs for training and scoring.  The CI
    dataset matrix uses this to prove seed-deterministic regeneration of
    the synthetic adapter, and the adapter tests use it for the
    chunked-vs-one-shot oracle comparison.
    """
    digest = hashlib.sha256()
    digest.update(f"n={graph.num_nodes};d={graph.num_features}".encode())
    digest.update(np.ascontiguousarray(graph.features).tobytes())
    digest.update(np.ascontiguousarray(graph.labels).tobytes())
    for mask in (graph.train_mask, graph.val_mask, graph.test_mask):
        digest.update(np.ascontiguousarray(mask).astype(np.uint8).tobytes())
    for name in graph.relation_names:
        relation = graph.relation(name)
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(relation.src).tobytes())
        digest.update(np.ascontiguousarray(relation.dst).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Registry (mirrors repro.api.DetectorRegistry)
# ----------------------------------------------------------------------

#: A builder receives the validated params dict (spec minus the reserved
#: keys) and returns a fresh adapter instance.
AdapterBuilder = Callable[[dict], DatasetAdapter]

#: Keys of an adapter spec dict that the registry itself consumes.
_RESERVED_KEYS = frozenset({"adapter"})


class AdapterRegistry:
    """Name -> builder mapping with decorator registration."""

    def __init__(self) -> None:
        self._builders: Dict[str, AdapterBuilder] = {}
        self._path_params: Dict[str, Tuple[str, ...]] = {}

    def register(
        self,
        name: str,
        *,
        replace: bool = False,
        path_params: Sequence[str] = (),
    ) -> Callable[[AdapterBuilder], AdapterBuilder]:
        """Decorator registering a builder under ``name`` (case-insensitive).

        ``path_params`` names the config keys whose values are filesystem
        paths; the spec loader resolves those relative to the spec file.
        """
        key = name.lower()

        def decorator(builder: AdapterBuilder) -> AdapterBuilder:
            if key in self._builders and not replace:
                raise ValueError(f"adapter {key!r} is already registered")
            self._builders[key] = builder
            self._path_params[key] = tuple(path_params)
            return builder

        return decorator

    def path_params(self, name: str) -> Tuple[str, ...]:
        return self._path_params.get(name.lower(), ())

    def names(self) -> List[str]:
        return list(self._builders)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._builders

    def create(self, spec: Union[str, dict]) -> DatasetAdapter:
        """Build an adapter from a name or an ``{"adapter": ..., ...}`` dict."""
        if isinstance(spec, str):
            spec = {"adapter": spec}
        if not isinstance(spec, dict):
            raise TypeError(
                f"spec must be an adapter name or dict, got {type(spec).__name__}"
            )
        if "adapter" not in spec:
            raise AdapterError("adapter spec requires an 'adapter' key")
        key = str(spec["adapter"]).lower()
        if key not in self._builders:
            raise KeyError(f"unknown adapter {key!r}; options: {self.names()}")
        params = {k: v for k, v in spec.items() if k not in _RESERVED_KEYS}
        return self._builders[key](params)


#: The default registry used by :func:`create_adapter`, the spec loader
#: and the CLI.
ADAPTERS = AdapterRegistry()

register_adapter = ADAPTERS.register


def create_adapter(spec: Union[str, dict]) -> DatasetAdapter:
    """Build an adapter from the default registry (see module docstring)."""
    return ADAPTERS.create(spec)


def available_adapters() -> List[str]:
    """Names accepted by :func:`create_adapter` and ``spec.yaml``."""
    return ADAPTERS.names()


def _pop_common(params: dict) -> dict:
    """Extract the base-class kwargs every adapter accepts from a spec."""
    common = {}
    if "split" in params:
        common["split"] = SplitPolicy.from_dict(params.pop("split"))
    for key in ("max_nodes", "drop_dangling"):
        if key in params:
            common[key] = params.pop(key)
    return common


def _require(params: dict, *keys: str) -> None:
    missing = sorted(k for k in keys if k not in params)
    if missing:
        raise AdapterError(f"adapter config missing required key(s) {missing}")


def _reject_unknown(params: dict, accepted: Sequence[str]) -> None:
    unknown = sorted(set(params) - set(accepted))
    if unknown:
        raise AdapterError(
            f"unknown adapter config key(s) {unknown}; accepted: {sorted(accepted)}"
        )
