"""Pluggable dataset adapters: stream external graphs into ``HeteroGraph``.

See :mod:`repro.datasets.adapters.base` for the chunked-ingestion contract
and :mod:`repro.datasets.adapters.spec` for the declarative ``spec.yaml``
format consumed by ``repro ingest / fit --dataset / score --dataset``.
"""

from repro.datasets.adapters.base import (
    ADAPTERS,
    AdapterError,
    AdapterRegistry,
    DatasetAdapter,
    EdgeChunk,
    NodeChunk,
    SplitPolicy,
    available_adapters,
    create_adapter,
    graph_fingerprint,
    register_adapter,
)
from repro.datasets.adapters.cache import CACHE_VERSION, IngestCache, cache_key
from repro.datasets.adapters.follower import FollowerExportAdapter
from repro.datasets.adapters.spec import (
    CACHE_ENV,
    DatasetSpec,
    IngestResult,
    ingest_spec,
    load_dataset_spec,
    resolve_dataset_graph,
)
from repro.datasets.adapters.synthetic import SyntheticBotnetAdapter, synthetic_graph
from repro.datasets.adapters.tabular import CSVEdgeListAdapter, JSONLEdgeListAdapter

__all__ = [
    "ADAPTERS",
    "AdapterError",
    "AdapterRegistry",
    "CACHE_ENV",
    "CACHE_VERSION",
    "CSVEdgeListAdapter",
    "DatasetAdapter",
    "DatasetSpec",
    "EdgeChunk",
    "FollowerExportAdapter",
    "IngestCache",
    "IngestResult",
    "JSONLEdgeListAdapter",
    "NodeChunk",
    "SplitPolicy",
    "SyntheticBotnetAdapter",
    "available_adapters",
    "cache_key",
    "create_adapter",
    "graph_fingerprint",
    "ingest_spec",
    "load_dataset_spec",
    "register_adapter",
    "resolve_dataset_graph",
    "synthetic_graph",
]
