"""Declarative dataset specs: one file describes source + split + cache.

A spec is a small YAML (or JSON) document::

    name: my-botnet
    adapter: csv
    source:
      nodes: nodes.csv          # paths resolve relative to the spec file
      edges: edges.csv
      labels: labels.csv
      columns:
        id: user_id
        features: [f0, f1, f2]
    split:
      train_fraction: 0.6
      val_fraction: 0.2
      seed: 7
    cache:
      dir: .ingest-cache        # optional; REPRO_INGEST_CACHE also works
    test_sample: 96             # node cap applied under --test

:func:`ingest_spec` turns one into a :class:`HeteroGraph` through the
adapter registry, consulting the content-addressed :class:`IngestCache`
when a cache directory is configured.  ``repro ingest/fit/score`` and
artifact provenance all speak this format: a fitted artifact stores the
spec dict, and :func:`resolve_dataset_graph` rebuilds the exact graph from
it (or from classic ``load_benchmark`` provenance) at scoring time.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

try:  # PyYAML ships with the runtime image but is optional for the library
    import yaml as _yaml
except ImportError:  # pragma: no cover - exercised only without pyyaml
    _yaml = None

from repro.datasets.adapters.base import (
    ADAPTERS,
    AdapterError,
    DatasetAdapter,
    SplitPolicy,
    create_adapter,
    graph_fingerprint,
)
from repro.datasets.adapters.cache import IngestCache, cache_key
from repro.graph import HeteroGraph
from repro.obs.registry import global_registry
from repro.obs.trace import add_ambient_span

#: Environment variable naming a default ingest cache directory.
CACHE_ENV = "REPRO_INGEST_CACHE"

_SPEC_KEYS = frozenset({"name", "adapter", "source", "split", "cache", "test_sample"})


@dataclass
class DatasetSpec:
    """Parsed, path-resolved form of a spec file."""

    adapter: str
    params: Dict[str, object] = field(default_factory=dict)
    split: Dict[str, object] = field(default_factory=dict)
    name: Optional[str] = None
    cache_dir: Optional[str] = None
    test_sample: Optional[int] = None
    path: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict for artifact provenance (round-trips via from_dict)."""
        return {
            "adapter": self.adapter,
            "source": self.params,
            "split": self.split,
            "name": self.name,
            "cache": {"dir": self.cache_dir} if self.cache_dir else None,
            "test_sample": self.test_sample,
        }

    @classmethod
    def from_dict(
        cls, data: Dict[str, object], base_dir: Optional[Path] = None
    ) -> "DatasetSpec":
        if not isinstance(data, dict):
            raise AdapterError(f"dataset spec must be a mapping, got {type(data).__name__}")
        unknown = sorted(set(data) - _SPEC_KEYS)
        if unknown:
            raise AdapterError(
                f"unknown dataset spec key(s) {unknown}; accepted: {sorted(_SPEC_KEYS)}"
            )
        if "adapter" not in data:
            raise AdapterError("dataset spec requires an 'adapter' key")
        adapter = str(data["adapter"]).lower()
        if adapter not in ADAPTERS:
            raise AdapterError(
                f"unknown adapter {adapter!r}; options: {ADAPTERS.names()}"
            )
        params = dict(data.get("source") or {})
        if base_dir is not None:
            params = _resolve_paths(adapter, params, base_dir)
        split = dict(data.get("split") or {})
        SplitPolicy.from_dict(split)  # validate early, not at ingest time
        cache = data.get("cache") or {}
        if cache and (not isinstance(cache, dict) or set(cache) - {"dir"}):
            raise AdapterError("spec 'cache' section accepts only a 'dir' key")
        cache_dir = cache.get("dir") if isinstance(cache, dict) else None
        if cache_dir is not None and base_dir is not None:
            cache_dir = str((base_dir / str(cache_dir)).resolve())
        test_sample = data.get("test_sample")
        if test_sample is not None:
            test_sample = int(test_sample)
            if test_sample <= 0:
                raise AdapterError("test_sample must be positive")
        return cls(
            adapter=adapter,
            params=params,
            split=split,
            name=str(data["name"]) if data.get("name") else None,
            cache_dir=str(cache_dir) if cache_dir else None,
            test_sample=test_sample,
        )

    def build_adapter(self, test: bool = False) -> DatasetAdapter:
        params = dict(self.params)
        params["split"] = dict(self.split)
        if test:
            if self.test_sample is None:
                raise AdapterError(
                    "--test requested but the spec has no 'test_sample' entry"
                )
            params["max_nodes"] = self.test_sample
        return create_adapter({"adapter": self.adapter, **params})


def _resolve_paths(
    adapter: str, params: Dict[str, object], base_dir: Path
) -> Dict[str, object]:
    """Resolve the adapter's declared path params relative to the spec file."""

    def resolve(value: object) -> object:
        if isinstance(value, str):
            return str((base_dir / value).resolve())
        if isinstance(value, dict):
            return {k: resolve(v) for k, v in value.items()}
        if isinstance(value, list):
            return [resolve(v) for v in value]
        return value

    resolved = dict(params)
    for key in ADAPTERS.path_params(adapter):
        if key in resolved and resolved[key] is not None:
            resolved[key] = resolve(resolved[key])
    return resolved


def load_dataset_spec(path: Union[str, os.PathLike]) -> DatasetSpec:
    """Parse a ``.yaml``/``.yml``/``.json`` spec file."""
    spec_path = Path(path)
    if not spec_path.exists():
        raise AdapterError(f"dataset spec not found: {spec_path}")
    text = spec_path.read_text()
    if spec_path.suffix.lower() in (".yaml", ".yml"):
        if _yaml is None:
            raise AdapterError(
                "PyYAML is not installed; install pyyaml or use a .json spec"
            )
        try:
            data = _yaml.safe_load(text)
        except _yaml.YAMLError as exc:
            raise AdapterError(f"invalid YAML in {spec_path}: {exc}") from None
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise AdapterError(f"invalid JSON in {spec_path}: {exc.msg}") from None
    spec = DatasetSpec.from_dict(data, base_dir=spec_path.parent)
    spec.path = str(spec_path)
    return spec


@dataclass
class IngestResult:
    """What :func:`ingest_spec` hands back."""

    graph: HeteroGraph
    fingerprint: str
    cache_hit: bool
    elapsed_s: float
    spec: DatasetSpec


def _cache_directory(spec: DatasetSpec) -> Optional[str]:
    if spec.cache_dir:
        return spec.cache_dir
    return os.environ.get(CACHE_ENV) or None


def ingest_spec(
    spec: Union[str, os.PathLike, DatasetSpec],
    test: bool = False,
    chunk_size: Optional[int] = None,
    use_cache: bool = True,
) -> IngestResult:
    """Ingest a spec (path or parsed) into a graph, via the cache if any."""
    if not isinstance(spec, DatasetSpec):
        spec = load_dataset_spec(spec)
    started = time.perf_counter()
    span_started = time.monotonic()
    adapter = spec.build_adapter(test=test)
    cache_dir = _cache_directory(spec) if use_cache else None
    cache: Optional[IngestCache] = None
    key: Optional[str] = None
    if cache_dir:
        cache = IngestCache(cache_dir)
        key = cache_key(adapter, {**spec.params, "test": bool(test)})
        cached = cache.load(key)
        if cached is not None:
            graph, fingerprint = cached
            _observe_ingest(spec, span_started, cache_hit=True, cached=True)
            return IngestResult(
                graph=graph,
                fingerprint=fingerprint,
                cache_hit=True,
                elapsed_s=time.perf_counter() - started,
                spec=spec,
            )
    graph = adapter.ingest(chunk_size=chunk_size)
    if spec.name:
        graph.name = spec.name
    fingerprint = graph_fingerprint(graph)
    if cache is not None and key is not None:
        cache.store(key, graph, fingerprint)
    _observe_ingest(spec, span_started, cache_hit=False, cached=cache is not None)
    return IngestResult(
        graph=graph,
        fingerprint=fingerprint,
        cache_hit=False,
        elapsed_s=time.perf_counter() - started,
        spec=spec,
    )


def _observe_ingest(
    spec: DatasetSpec, span_started: float, *, cache_hit: bool, cached: bool
) -> None:
    """Telemetry tail of one ingest: registry counters + ambient span.

    Cache counters only move when a cache was actually consulted
    (``cached``) — an uncached ingest is not a "miss".
    """
    if cached:
        name = (
            "repro_ingest_cache_hits_total"
            if cache_hit
            else "repro_ingest_cache_misses_total"
        )
        help_text = (
            "Dataset ingests served from the content-addressed cache."
            if cache_hit
            else "Dataset ingests that ran the adapter and filled the cache."
        )
        global_registry().counter(name, help_text).inc()
    add_ambient_span(
        "ingest",
        span_started,
        time.monotonic() - span_started,
        dataset=spec.name or "",
        cache="hit" if cache_hit else ("miss" if cached else "off"),
    )


def resolve_dataset_graph(provenance: Dict[str, object]) -> HeteroGraph:
    """Rebuild the training graph from artifact provenance.

    Two provenance shapes exist: adapter-era artifacts store
    ``{"spec": <spec dict>, "test": bool}``; classic artifacts store
    ``load_benchmark`` keyword arguments.  Both return the exact graph the
    detector was fitted on.
    """
    if "spec" in provenance:
        spec = DatasetSpec.from_dict(provenance["spec"])  # paths already absolute
        return ingest_spec(spec, test=bool(provenance.get("test"))).graph
    from repro.datasets.benchmarks import load_benchmark

    return load_benchmark(**provenance).graph
