"""Seeded synthetic botnet graphs with known ground truth.

:class:`SyntheticBotnetAdapter` generates graphs that mimic the statistical
structure the paper's mechanisms rely on — humans interconnect while bots
attach mostly to humans (Figure 1 homophily), bots post with regular
temporal activity while humans are bursty (Section II-B) — but at **any**
size, from a single integer seed, bit-identically on regeneration.  That
makes it simultaneously:

* the third leg of the CI dataset matrix (the seed-determinism leg),
* the scale input for ``benchmarks/bench_scale.py`` /
  ``bench_cluster.py`` at node counts the bundled benchmarks can't reach,
* a controllable testbed: ``homophily``, ``bot_ratio`` and ``burstiness``
  knobs move the detection difficulty in known directions.

Everything is materialized once (vectorized numpy from a single
``default_rng(seed)`` stream) and the chunk iterators yield views — so the
stream is identical for every chunk size by construction, and the
chunked-vs-one-shot oracle holds trivially.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.datasets.adapters.base import (
    AdapterError,
    DatasetAdapter,
    EdgeChunk,
    NodeChunk,
    SplitPolicy,
    _pop_common,
    _reject_unknown,
    register_adapter,
)

#: Relation names assigned in order; generators past the list get ``relN``.
_RELATION_NAMES = ("following", "follower", "mention", "reply", "quote")


class SyntheticBotnetAdapter(DatasetAdapter):
    """Parametric bot/human graph generator with ground-truth labels."""

    name = "synthetic"

    def __init__(
        self,
        num_users: int = 1000,
        bot_ratio: float = 0.3,
        homophily: float = 0.7,
        bot_homophily: float = 0.15,
        burstiness: float = 0.5,
        avg_degree: float = 8.0,
        num_relations: int = 2,
        num_communities: int = 4,
        feature_dim: int = 12,
        temporal_dim: int = 8,
        separation: float = 1.0,
        cross_community: float = 0.05,
        seed: int = 0,
        split: Optional[SplitPolicy] = None,
        max_nodes: Optional[int] = None,
        drop_dangling: Optional[bool] = None,
    ) -> None:
        super().__init__(split=split, max_nodes=max_nodes, drop_dangling=drop_dangling)
        if num_users < 4:
            raise AdapterError("num_users must be at least 4")
        if not 0.0 < bot_ratio < 1.0:
            raise AdapterError("bot_ratio must be in (0, 1)")
        for key, value in (
            ("homophily", homophily),
            ("bot_homophily", bot_homophily),
            ("burstiness", burstiness),
            ("cross_community", cross_community),
        ):
            if not 0.0 <= value <= 1.0:
                raise AdapterError(f"{key} must be in [0, 1], got {value}")
        if avg_degree <= 0:
            raise AdapterError("avg_degree must be positive")
        if num_relations < 1 or num_communities < 1:
            raise AdapterError("num_relations and num_communities must be >= 1")
        if feature_dim < 1 or temporal_dim < 1:
            raise AdapterError("feature_dim and temporal_dim must be >= 1")
        self.num_users = int(num_users)
        self.bot_ratio = float(bot_ratio)
        self.homophily = float(homophily)
        self.bot_homophily = float(bot_homophily)
        self.burstiness = float(burstiness)
        self.avg_degree = float(avg_degree)
        self.num_relations = int(num_relations)
        self.num_communities = int(num_communities)
        self.feature_dim = int(feature_dim)
        self.temporal_dim = int(temporal_dim)
        self.separation = float(separation)
        self.cross_community = float(cross_community)
        self.seed = int(seed)
        self._materialized: Optional[
            Tuple[np.ndarray, np.ndarray, Dict[str, Tuple[np.ndarray, np.ndarray]]]
        ] = None

    # -- generation -----------------------------------------------------
    def _materialize(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, Tuple[np.ndarray, np.ndarray]]]:
        """Generate all arrays once; chunk iterators slice views of these."""
        if self._materialized is not None:
            return self._materialized
        rng = np.random.default_rng(self.seed)
        n = self.num_users

        labels = (rng.random(n) < self.bot_ratio).astype(np.int64)
        # Degenerate draws at tiny sizes: guarantee both classes exist so
        # stratified splits and binary training stay well-defined.
        if labels.sum() == 0:
            labels[0] = 1
        elif labels.sum() == n:
            labels[0] = 0
        communities = rng.integers(0, self.num_communities, size=n)

        features = self._draw_features(rng, labels, communities)
        relations: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for index in range(self.num_relations):
            if index < len(_RELATION_NAMES):
                rel_name = _RELATION_NAMES[index]
            else:
                rel_name = f"rel{index}"
            relations[rel_name] = self._draw_edges(rng, labels, communities)
        self._materialized = (features, labels, relations)
        return self._materialized

    def _draw_features(
        self, rng: np.random.Generator, labels: np.ndarray, communities: np.ndarray
    ) -> np.ndarray:
        n = labels.shape[0]
        bots = labels == 1
        # Static block: Gaussian noise + a class mean shift (detection
        # difficulty scales inversely with `separation`) + a small
        # community offset so communities are distinguishable structure.
        static = rng.standard_normal((n, self.feature_dim))
        direction = rng.standard_normal(self.feature_dim)
        direction /= np.linalg.norm(direction)
        static[bots] += self.separation * direction
        static += 0.25 * (communities[:, None] / max(1, self.num_communities - 1))
        # Temporal block: normalized activity histograms.  Humans get a
        # small gamma shape (spiky — a few bins dominate) that shrinks as
        # `burstiness` grows; bots get a large, flat shape (regular
        # activity, Section II-B).
        human_alpha = max(0.08, 1.5 * (1.0 - self.burstiness) + 0.05)
        bot_alpha = 6.0
        alphas = np.where(bots, bot_alpha, human_alpha)[:, None]
        temporal = rng.gamma(alphas, 1.0, size=(n, self.temporal_dim))
        temporal /= temporal.sum(axis=1, keepdims=True) + 1e-12
        return np.concatenate([static, temporal], axis=1)

    def _draw_edges(
        self, rng: np.random.Generator, labels: np.ndarray, communities: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One relation's edge lists via grouped vectorized sampling."""
        n = labels.shape[0]
        degrees = rng.poisson(self.avg_degree, size=n)
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        num_edges = src.shape[0]
        if num_edges == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))

        # Target label: same as source with the class's homophily.
        src_labels = labels[src]
        same_label_prob = np.where(src_labels == 1, self.bot_homophily, self.homophily)
        same_label = rng.random(num_edges) < same_label_prob
        dst_labels = np.where(same_label, src_labels, 1 - src_labels)
        # Target community: own community unless the edge escapes.
        escapes = rng.random(num_edges) < self.cross_community
        dst_comms = np.where(
            escapes, rng.integers(0, self.num_communities, size=num_edges), communities[src]
        )

        # Node pools per (community, label); empty pools fall back to the
        # global pool for that label (both classes are guaranteed above).
        label_pools = {c: np.flatnonzero(labels == c) for c in (0, 1)}
        dst = np.empty(num_edges, dtype=np.int64)
        for community in range(self.num_communities):
            for label in (0, 1):
                members = (dst_comms == community) & (dst_labels == label)
                count = int(members.sum())
                if count == 0:
                    continue
                pool = np.flatnonzero((communities == community) & (labels == label))
                if pool.shape[0] == 0:
                    pool = label_pools[label]
                dst[members] = pool[rng.integers(0, pool.shape[0], size=count)]
        keep = src != dst
        return (src[keep], dst[keep])

    # -- adapter contract -----------------------------------------------
    def iter_node_chunks(self, chunk_size: int) -> Iterator[NodeChunk]:
        features, labels, _ = self._materialize()
        for start in range(0, self.num_users, chunk_size):
            stop = min(start + chunk_size, self.num_users)
            yield NodeChunk(
                ids=list(range(start, stop)),
                features=features[start:stop],
                labels=labels[start:stop],
            )

    def iter_edge_chunks(self, chunk_size: int) -> Iterator[EdgeChunk]:
        _, _, relations = self._materialize()
        for rel_name, (src, dst) in relations.items():
            for start in range(0, src.shape[0], chunk_size):
                stop = min(start + chunk_size, src.shape[0])
                yield EdgeChunk(
                    relation=rel_name,
                    src=src[start:stop],
                    dst=dst[start:stop],
                )

    def graph_name(self) -> str:
        return f"synthetic-{self.num_users}-{self.seed}"

    def metadata(self) -> Dict[str, object]:
        return {
            "adapter": self.name,
            "num_users": self.num_users,
            "bot_ratio": self.bot_ratio,
            "homophily": self.homophily,
            "bot_homophily": self.bot_homophily,
            "burstiness": self.burstiness,
            "avg_degree": self.avg_degree,
            "num_relations": self.num_relations,
            "num_communities": self.num_communities,
            "seed": self.seed,
        }

    def source_files(self) -> List[Path]:
        return []


@register_adapter("synthetic")
def _build_synthetic(params: dict) -> SyntheticBotnetAdapter:
    common = _pop_common(params)
    _reject_unknown(
        params,
        (
            "num_users",
            "bot_ratio",
            "homophily",
            "bot_homophily",
            "burstiness",
            "avg_degree",
            "num_relations",
            "num_communities",
            "feature_dim",
            "temporal_dim",
            "separation",
            "cross_community",
            "seed",
        ),
    )
    return SyntheticBotnetAdapter(**params, **common)


def synthetic_graph(**params):
    """Convenience: materialize a synthetic graph in one call.

    Used by ``benchmarks/bench_scale.py`` / ``bench_cluster.py`` to get
    million-node-capable inputs with ground-truth labels.
    """
    return SyntheticBotnetAdapter(**params).ingest()
