"""Adapter for exported follower graphs (profile dump + edge text files).

The input shape mirrors what crawler exports of a Twitter-like platform
look like: one ``profiles.jsonl`` with raw account metadata, plus one
whitespace-separated ``src dst`` text file per relation (for example
``following.txt`` and ``followers.txt``).  Raw profile counters are turned
into a fixed, documented feature vector deterministically — log-compressed
magnitudes, rates, ratios and boolean profile flags — so the same export
always ingests to the same graph.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.datasets.adapters.base import (
    AdapterError,
    DatasetAdapter,
    EdgeChunk,
    NodeChunk,
    SplitPolicy,
    _pop_common,
    _reject_unknown,
    _require,
    register_adapter,
)
from repro.datasets.adapters.tabular import _open_path, _parse_label

#: Feature vector layout produced by :func:`_featurize`, in order.
FOLLOWER_FEATURES = (
    "log_followers",
    "log_friends",
    "log_statuses",
    "log_favourites",
    "log_listed",
    "follower_friend_ratio",
    "statuses_per_day",
    "verified",
    "default_profile_image",
    "has_url",
    "has_location",
)

_COUNT_FIELDS = (
    "followers_count",
    "friends_count",
    "statuses_count",
    "favourites_count",
    "listed_count",
)


def _featurize(record: dict, context: str) -> List[float]:
    counts = {}
    for field_name in _COUNT_FIELDS + ("account_age_days",):
        raw = record.get(field_name, 0)
        try:
            value = float(raw)
        except (TypeError, ValueError):
            raise AdapterError(
                f"{context}: field {field_name!r} value {raw!r} is not a number"
            ) from None
        if value < 0:
            raise AdapterError(f"{context}: field {field_name!r} is negative")
        counts[field_name] = value
    age = max(counts["account_age_days"], 1.0)
    return [
        math.log1p(counts["followers_count"]),
        math.log1p(counts["friends_count"]),
        math.log1p(counts["statuses_count"]),
        math.log1p(counts["favourites_count"]),
        math.log1p(counts["listed_count"]),
        counts["followers_count"] / (counts["friends_count"] + 1.0),
        counts["statuses_count"] / age,
        1.0 if record.get("verified") else 0.0,
        1.0 if record.get("default_profile_image") else 0.0,
        1.0 if record.get("url") or record.get("has_url") else 0.0,
        1.0 if record.get("location") or record.get("has_location") else 0.0,
    ]


class FollowerExportAdapter(DatasetAdapter):
    """Profiles + per-relation ``src dst`` edge files."""

    name = "follower-export"
    PATH_PARAMS = ("profiles", "relations")

    def __init__(
        self,
        profiles: str,
        relations: Dict[str, str],
        split: Optional[SplitPolicy] = None,
        max_nodes: Optional[int] = None,
        drop_dangling: Optional[bool] = None,
    ) -> None:
        super().__init__(split=split, max_nodes=max_nodes, drop_dangling=drop_dangling)
        self.profiles_path = Path(profiles)
        if not isinstance(relations, dict) or not relations:
            raise AdapterError(
                "follower-export requires a non-empty relations mapping "
                "{relation_name: edge_file}"
            )
        self.relation_paths = {str(k): Path(v) for k, v in relations.items()}

    def iter_node_chunks(self, chunk_size: int) -> Iterator[NodeChunk]:
        ids: List[object] = []
        rows: List[List[float]] = []
        labels: List[int] = []
        with _open_path(self.profiles_path, "profiles") as handle:
            for line_no, raw in enumerate(handle, start=1):
                raw = raw.strip()
                if not raw:
                    continue
                context = f"profiles file {self.profiles_path.name} line {line_no}"
                try:
                    record = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise AdapterError(f"{context}: invalid JSON ({exc.msg})") from None
                if not isinstance(record, dict) or "id" not in record:
                    raise AdapterError(f"{context}: expected an object with an 'id'")
                if "label" not in record:
                    raise AdapterError(f"{context}: missing 'label' field")
                ids.append(record["id"])
                rows.append(_featurize(record, context))
                labels.append(_parse_label(record["label"], context))
                if len(ids) >= chunk_size:
                    yield NodeChunk(ids=ids, features=np.asarray(rows), labels=np.asarray(labels))
                    ids, rows, labels = [], [], []
        if ids:
            yield NodeChunk(ids=ids, features=np.asarray(rows), labels=np.asarray(labels))

    def iter_edge_chunks(self, chunk_size: int) -> Iterator[EdgeChunk]:
        for rel_name, path in self.relation_paths.items():
            src_list: List[object] = []
            dst_list: List[object] = []
            with _open_path(path, f"relation {rel_name!r} edges") as handle:
                for line_no, raw in enumerate(handle, start=1):
                    raw = raw.strip()
                    if not raw or raw.startswith("#"):
                        continue
                    parts = raw.split()
                    if len(parts) != 2:
                        raise AdapterError(
                            f"edges file {path.name} line {line_no}: expected "
                            f"'src dst', got {raw!r}"
                        )
                    src_list.append(parts[0])
                    dst_list.append(parts[1])
                    if len(src_list) >= chunk_size:
                        yield EdgeChunk(relation=rel_name, src=src_list, dst=dst_list)
                        src_list, dst_list = [], []
            if src_list:
                yield EdgeChunk(relation=rel_name, src=src_list, dst=dst_list)

    def graph_name(self) -> str:
        return self.profiles_path.stem

    def metadata(self) -> Dict[str, object]:
        return {
            "adapter": self.name,
            "profiles": str(self.profiles_path),
            "relations": {k: str(v) for k, v in self.relation_paths.items()},
            "feature_names": list(FOLLOWER_FEATURES),
        }

    def source_files(self) -> List[Path]:
        return [self.profiles_path, *self.relation_paths.values()]


@register_adapter("follower-export", path_params=("profiles", "relations"))
def _build_follower(params: dict) -> FollowerExportAdapter:
    common = _pop_common(params)
    _require(params, "profiles", "relations")
    _reject_unknown(params, ("profiles", "relations"))
    return FollowerExportAdapter(**params, **common)
