"""Tabular edge-list adapters: CSV and JSONL sources.

Both adapters stream file rows in file order — the chunk boundaries move
with ``chunk_size`` but the row stream never does, which is what makes the
chunked-vs-one-shot oracle hold.  All validation failures (missing columns,
unparseable feature values, missing or duplicate labels, dangling edge
endpoints) surface as :class:`AdapterError` naming the offending row.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.adapters.base import (
    AdapterError,
    DatasetAdapter,
    EdgeChunk,
    NodeChunk,
    SplitPolicy,
    _pop_common,
    _reject_unknown,
    _require,
    register_adapter,
)


def _open_path(path: Path, kind: str):
    if not path.exists():
        raise AdapterError(f"{kind} file not found: {path}")
    return path.open("r", encoding="utf-8", newline="")


def _parse_label(raw: object, context: str) -> int:
    try:
        value = int(str(raw).strip())
    except (TypeError, ValueError):
        raise AdapterError(f"{context}: label {raw!r} is not an integer") from None
    if value not in (0, 1):
        raise AdapterError(f"{context}: label must be 0 or 1, got {value}")
    return value


def _load_label_file(path: Path, id_column: str, label_column: str) -> Dict[str, int]:
    labels: Dict[str, int] = {}
    with _open_path(path, "labels") as handle:
        reader = csv.DictReader(handle)
        fields = reader.fieldnames or []
        for column in (id_column, label_column):
            if column not in fields:
                raise AdapterError(
                    f"labels file {path.name} is missing column {column!r}; "
                    f"has {fields}"
                )
        for line_no, row in enumerate(reader, start=2):
            node_id = row[id_column]
            if node_id in labels:
                raise AdapterError(
                    f"labels file {path.name} line {line_no}: duplicate label "
                    f"for node id {node_id!r}"
                )
            labels[node_id] = _parse_label(
                row[label_column], f"labels file {path.name} line {line_no}"
            )
    return labels


class CSVEdgeListAdapter(DatasetAdapter):
    """Nodes + edges (+ optional label file) from CSV.

    ``columns`` maps logical roles onto header names::

        columns:
          id: user_id           # node id column in the nodes file
          label: is_bot         # label column (nodes file or label file)
          features: [f0, f1]    # typed feature columns, in this order
          src: source           # edge endpoints in the edges file
          dst: target
          relation: kind        # optional; absent -> all edges in `relation`

    When ``features`` is omitted, every nodes-file column except the id and
    label columns is treated as a float feature, in header order.  A
    separate ``labels`` CSV takes precedence over any label column in the
    nodes file; each node must end up with exactly one label.
    """

    name = "csv"
    PATH_PARAMS = ("nodes", "edges", "labels")

    def __init__(
        self,
        nodes: str,
        edges: str,
        labels: Optional[str] = None,
        columns: Optional[Dict[str, object]] = None,
        relation: str = "edges",
        split: Optional[SplitPolicy] = None,
        max_nodes: Optional[int] = None,
        drop_dangling: Optional[bool] = None,
    ) -> None:
        super().__init__(split=split, max_nodes=max_nodes, drop_dangling=drop_dangling)
        self.nodes_path = Path(nodes)
        self.edges_path = Path(edges)
        self.labels_path = Path(labels) if labels else None
        columns = dict(columns or {})
        _reject_unknown(columns, ("id", "label", "features", "src", "dst", "relation"))
        self.id_column = str(columns.get("id", "id"))
        self.label_column = str(columns.get("label", "label"))
        features = columns.get("features")
        if features is not None and (
            not isinstance(features, (list, tuple))
            or not all(isinstance(c, str) for c in features)
        ):
            raise AdapterError("columns.features must be a list of column names")
        self.feature_columns: Optional[List[str]] = (
            list(features) if features is not None else None
        )
        self.src_column = str(columns.get("src", "src"))
        self.dst_column = str(columns.get("dst", "dst"))
        self.relation_column = columns.get("relation")
        if self.relation_column is not None:
            self.relation_column = str(self.relation_column)
        self.default_relation = str(relation)

    # -- nodes ----------------------------------------------------------
    def _resolve_feature_columns(self, fields: Sequence[str]) -> List[str]:
        if self.feature_columns is not None:
            missing = [c for c in self.feature_columns if c not in fields]
            if missing:
                raise AdapterError(
                    f"nodes file {self.nodes_path.name} is missing feature "
                    f"column(s) {missing}; has {list(fields)}"
                )
            return self.feature_columns
        skip = {self.id_column, self.label_column}
        inferred = [c for c in fields if c not in skip]
        if not inferred:
            raise AdapterError(
                f"nodes file {self.nodes_path.name} has no feature columns "
                f"beyond {sorted(skip)}"
            )
        return inferred

    def iter_node_chunks(self, chunk_size: int) -> Iterator[NodeChunk]:
        file_labels = (
            _load_label_file(self.labels_path, self.id_column, self.label_column)
            if self.labels_path is not None
            else None
        )
        with _open_path(self.nodes_path, "nodes") as handle:
            reader = csv.DictReader(handle)
            fields = reader.fieldnames or []
            if self.id_column not in fields:
                raise AdapterError(
                    f"nodes file {self.nodes_path.name} is missing id column "
                    f"{self.id_column!r}; has {list(fields)}"
                )
            if file_labels is None and self.label_column not in fields:
                raise AdapterError(
                    f"nodes file {self.nodes_path.name} has no label column "
                    f"{self.label_column!r} and no labels file was configured"
                )
            feature_columns = self._resolve_feature_columns(fields)
            ids: List[str] = []
            rows: List[List[float]] = []
            labels: List[int] = []
            for line_no, row in enumerate(reader, start=2):
                context = f"nodes file {self.nodes_path.name} line {line_no}"
                node_id = row[self.id_column]
                values = []
                for column in feature_columns:
                    raw = row.get(column)
                    try:
                        values.append(float(raw))  # type: ignore[arg-type]
                    except (TypeError, ValueError):
                        raise AdapterError(
                            f"{context}: column {column!r} value {raw!r} is "
                            "not a number"
                        ) from None
                if file_labels is not None:
                    if node_id not in file_labels:
                        raise AdapterError(
                            f"{context}: node id {node_id!r} has no entry in "
                            f"labels file {self.labels_path.name}"
                        )
                    label = file_labels[node_id]
                else:
                    label = _parse_label(row[self.label_column], context)
                ids.append(node_id)
                rows.append(values)
                labels.append(label)
                if len(ids) >= chunk_size:
                    yield NodeChunk(ids=ids, features=np.asarray(rows), labels=np.asarray(labels))
                    ids, rows, labels = [], [], []
            if ids:
                yield NodeChunk(ids=ids, features=np.asarray(rows), labels=np.asarray(labels))

    # -- edges ----------------------------------------------------------
    def iter_edge_chunks(self, chunk_size: int) -> Iterator[EdgeChunk]:
        with _open_path(self.edges_path, "edges") as handle:
            reader = csv.DictReader(handle)
            fields = reader.fieldnames or []
            for column in (self.src_column, self.dst_column):
                if column not in fields:
                    raise AdapterError(
                        f"edges file {self.edges_path.name} is missing column "
                        f"{column!r}; has {list(fields)}"
                    )
            if self.relation_column is not None and self.relation_column not in fields:
                raise AdapterError(
                    f"edges file {self.edges_path.name} is missing relation "
                    f"column {self.relation_column!r}; has {list(fields)}"
                )
            pending: Dict[str, Tuple[List[str], List[str]]] = {}
            order: List[str] = []
            count = 0
            for row in reader:
                if self.relation_column is not None:
                    rel_name = row[self.relation_column] or self.default_relation
                else:
                    rel_name = self.default_relation
                if rel_name not in pending:
                    pending[rel_name] = ([], [])
                    order.append(rel_name)
                src_list, dst_list = pending[rel_name]
                src_list.append(row[self.src_column])
                dst_list.append(row[self.dst_column])
                count += 1
                if count >= chunk_size:
                    for name in order:
                        src_list, dst_list = pending[name]
                        if src_list:
                            yield EdgeChunk(relation=name, src=src_list, dst=dst_list)
                        pending[name] = ([], [])
                    count = 0
            for name in order:
                src_list, dst_list = pending[name]
                if src_list:
                    yield EdgeChunk(relation=name, src=src_list, dst=dst_list)

    def graph_name(self) -> str:
        return self.nodes_path.stem

    def metadata(self) -> Dict[str, object]:
        return {
            "adapter": self.name,
            "nodes": str(self.nodes_path),
            "edges": str(self.edges_path),
            "labels": str(self.labels_path) if self.labels_path else None,
        }

    def source_files(self) -> List[Path]:
        files = [self.nodes_path, self.edges_path]
        if self.labels_path is not None:
            files.append(self.labels_path)
        return files


class JSONLEdgeListAdapter(DatasetAdapter):
    """Nodes + edges from JSON Lines files.

    Node lines carry ``{"id": ..., "label": 0|1, "features": [...]}``;
    ``features`` may instead be an object, in which case the key order is
    fixed by sorting the first record's keys and every later record must
    use exactly the same key set.  Edge lines carry ``{"src": ..., "dst":
    ..., "relation": ...}`` with the relation optional.
    """

    name = "jsonl"
    PATH_PARAMS = ("nodes", "edges")

    def __init__(
        self,
        nodes: str,
        edges: str,
        relation: str = "edges",
        split: Optional[SplitPolicy] = None,
        max_nodes: Optional[int] = None,
        drop_dangling: Optional[bool] = None,
    ) -> None:
        super().__init__(split=split, max_nodes=max_nodes, drop_dangling=drop_dangling)
        self.nodes_path = Path(nodes)
        self.edges_path = Path(edges)
        self.default_relation = str(relation)

    @staticmethod
    def _parse_line(raw: str, context: str) -> dict:
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise AdapterError(f"{context}: invalid JSON ({exc.msg})") from None
        if not isinstance(record, dict):
            raise AdapterError(f"{context}: expected a JSON object")
        return record

    def iter_node_chunks(self, chunk_size: int) -> Iterator[NodeChunk]:
        feature_keys: Optional[List[str]] = None
        ids: List[object] = []
        rows: List[List[float]] = []
        labels: List[int] = []
        with _open_path(self.nodes_path, "nodes") as handle:
            for line_no, raw in enumerate(handle, start=1):
                raw = raw.strip()
                if not raw:
                    continue
                context = f"nodes file {self.nodes_path.name} line {line_no}"
                record = self._parse_line(raw, context)
                for key in ("id", "label", "features"):
                    if key not in record:
                        raise AdapterError(f"{context}: missing {key!r} field")
                features = record["features"]
                if isinstance(features, dict):
                    if feature_keys is None:
                        feature_keys = sorted(features)
                    if set(features) != set(feature_keys):
                        raise AdapterError(
                            f"{context}: feature keys {sorted(features)} do "
                            f"not match the first record's {feature_keys}"
                        )
                    features = [features[k] for k in feature_keys]
                elif not isinstance(features, list):
                    raise AdapterError(
                        f"{context}: 'features' must be a list or object"
                    )
                try:
                    values = [float(v) for v in features]
                except (TypeError, ValueError):
                    raise AdapterError(
                        f"{context}: non-numeric feature value in {features!r}"
                    ) from None
                ids.append(record["id"])
                rows.append(values)
                labels.append(_parse_label(record["label"], context))
                if len(ids) >= chunk_size:
                    yield NodeChunk(ids=ids, features=np.asarray(rows), labels=np.asarray(labels))
                    ids, rows, labels = [], [], []
        if ids:
            yield NodeChunk(ids=ids, features=np.asarray(rows), labels=np.asarray(labels))

    def iter_edge_chunks(self, chunk_size: int) -> Iterator[EdgeChunk]:
        pending: Dict[str, Tuple[List[object], List[object]]] = {}
        order: List[str] = []
        count = 0
        with _open_path(self.edges_path, "edges") as handle:
            for line_no, raw in enumerate(handle, start=1):
                raw = raw.strip()
                if not raw:
                    continue
                context = f"edges file {self.edges_path.name} line {line_no}"
                record = self._parse_line(raw, context)
                for key in ("src", "dst"):
                    if key not in record:
                        raise AdapterError(f"{context}: missing {key!r} field")
                rel_name = str(record.get("relation") or self.default_relation)
                if rel_name not in pending:
                    pending[rel_name] = ([], [])
                    order.append(rel_name)
                src_list, dst_list = pending[rel_name]
                src_list.append(record["src"])
                dst_list.append(record["dst"])
                count += 1
                if count >= chunk_size:
                    for name in order:
                        src_list, dst_list = pending[name]
                        if src_list:
                            yield EdgeChunk(relation=name, src=src_list, dst=dst_list)
                        pending[name] = ([], [])
                    count = 0
        for name in order:
            src_list, dst_list = pending[name]
            if src_list:
                yield EdgeChunk(relation=name, src=src_list, dst=dst_list)

    def graph_name(self) -> str:
        return self.nodes_path.stem

    def metadata(self) -> Dict[str, object]:
        return {
            "adapter": self.name,
            "nodes": str(self.nodes_path),
            "edges": str(self.edges_path),
        }

    def source_files(self) -> List[Path]:
        return [self.nodes_path, self.edges_path]


@register_adapter("csv", path_params=("nodes", "edges", "labels"))
def _build_csv(params: dict) -> CSVEdgeListAdapter:
    common = _pop_common(params)
    _require(params, "nodes", "edges")
    _reject_unknown(params, ("nodes", "edges", "labels", "columns", "relation"))
    return CSVEdgeListAdapter(**params, **common)


@register_adapter("jsonl", path_params=("nodes", "edges"))
def _build_jsonl(params: dict) -> JSONLEdgeListAdapter:
    common = _pop_common(params)
    _require(params, "nodes", "edges")
    _reject_unknown(params, ("nodes", "edges", "relation"))
    return JSONLEdgeListAdapter(**params, **common)
