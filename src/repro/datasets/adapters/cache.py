"""Content-addressed on-disk cache for ingested graphs.

Same addressing discipline as :class:`repro.sampling.SubgraphStore`'s store
cache: the cache key is a digest over *everything that determines the
output* — the adapter name and parameters, the split policy, the ``--test``
sample cap, a format version, and the sha256 of every source file's
**contents** (not its mtime).  Editing a source file, changing any adapter
knob, or bumping :data:`CACHE_VERSION` therefore misses cleanly; a hit is
guaranteed to be the bit-identical graph a fresh ingest would produce.

Entries are an ``.npz`` (arrays) + ``.json`` (header: name, relation
order, metadata, fingerprint) pair, written atomically via temp file +
``os.replace`` so a crashed writer never leaves a half-entry.  A small
in-process LRU memo avoids re-reading npz files inside one process; it is
guarded by a :func:`tracked_rlock` and registered in
``analysis/locks.py:GUARDED_CLASSES``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.sanitizer import tracked_rlock
from repro.datasets.adapters.base import AdapterError, DatasetAdapter
from repro.graph import HeteroGraph

#: Bump whenever the on-disk entry layout or the ingestion semantics
#: change — old entries then miss instead of deserializing garbage.
CACHE_VERSION = 1


def _digest_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def cache_key(adapter: DatasetAdapter, params: Dict[str, object]) -> str:
    """Content-addressed key for one (adapter config, source state) pair."""
    payload = {
        "version": CACHE_VERSION,
        "adapter": adapter.name,
        "params": params,
        "split": adapter.split.to_dict(),
        "max_nodes": adapter.max_nodes,
        "drop_dangling": adapter.drop_dangling,
    }
    digest = hashlib.sha1(
        json.dumps(payload, sort_keys=True, default=str).encode()
    )
    for path in sorted(adapter.source_files(), key=str):
        if not path.exists():
            raise AdapterError(f"source file not found: {path}")
        digest.update(str(path.name).encode())
        digest.update(_digest_file(path).encode())
    return digest.hexdigest()


class IngestCache:
    """Directory of content-addressed ingested graphs + an LRU memo."""

    def __init__(self, directory: os.PathLike, memo_size: int = 4) -> None:
        self.directory = Path(directory)
        self._lock = tracked_rlock("IngestCache._lock")
        self._memo: "OrderedDict[str, Tuple[HeteroGraph, str]]" = OrderedDict()
        self._memo_size = int(memo_size)

    def _paths(self, key: str) -> Tuple[Path, Path]:
        return (
            self.directory / f"ingest_{key}.npz",
            self.directory / f"ingest_{key}.json",
        )

    # -- read -----------------------------------------------------------
    def load(self, key: str) -> Optional[Tuple[HeteroGraph, str]]:
        """Return ``(graph, fingerprint)`` on a hit, else ``None``."""
        with self._lock:
            if key in self._memo:
                self._memo.move_to_end(key)
                return self._memo[key]
        npz_path, json_path = self._paths(key)
        if not npz_path.exists() or not json_path.exists():
            return None
        try:
            header = json.loads(json_path.read_text())
            if header.get("cache_version") != CACHE_VERSION:
                return None
            with np.load(npz_path) as arrays:
                relations = {
                    name: (
                        arrays[f"rel_src_{index}"],
                        arrays[f"rel_dst_{index}"],
                    )
                    for index, name in enumerate(header["relations"])
                }
                graph = HeteroGraph(
                    num_nodes=int(arrays["features"].shape[0]),
                    features=arrays["features"],
                    labels=arrays["labels"],
                    relations=relations,
                    train_mask=arrays["train_mask"],
                    val_mask=arrays["val_mask"],
                    test_mask=arrays["test_mask"],
                    name=header["name"],
                    metadata=header.get("metadata", {}),
                )
        except (OSError, KeyError, ValueError, json.JSONDecodeError):
            # A corrupt or truncated entry is a miss, never an error: the
            # caller re-ingests and overwrites it.
            return None
        entry = (graph, header["fingerprint"])
        self._remember(key, entry)
        return entry

    # -- write ----------------------------------------------------------
    def store(self, key: str, graph: HeteroGraph, fingerprint: str) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        npz_path, json_path = self._paths(key)
        arrays = {
            "features": graph.features,
            "labels": graph.labels,
            "train_mask": graph.train_mask,
            "val_mask": graph.val_mask,
            "test_mask": graph.test_mask,
        }
        for index, name in enumerate(graph.relation_names):
            relation = graph.relation(name)
            arrays[f"rel_src_{index}"] = relation.src
            arrays[f"rel_dst_{index}"] = relation.dst
        header = {
            "cache_version": CACHE_VERSION,
            "name": graph.name,
            "relations": graph.relation_names,
            "metadata": graph.metadata,
            "fingerprint": fingerprint,
        }
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp_name, npz_path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(header, handle)
            os.replace(tmp_name, json_path)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        self._remember(key, (graph, fingerprint))

    def _remember(self, key: str, entry: Tuple[HeteroGraph, str]) -> None:
        with self._lock:
            self._memo[key] = entry
            self._memo.move_to_end(key)
            while len(self._memo) > self._memo_size:
                self._memo.popitem(last=False)

    def clear_memo(self) -> None:
        """Drop the in-process memo (disk entries stay)."""
        with self._lock:
            self._memo.clear()
