"""Relation (edge) generation for the synthetic benchmarks.

The generator reproduces the structural pattern of Figure 1: genuine users
are densely interconnected inside their community, while bots form few
bot-bot links and attach mostly to genuine users.  The per-relation edge
counts and the bot/human homophily profile are controlled by
:class:`NetworkConfig` so each benchmark can be calibrated to its published
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

HUMAN = 0
BOT = 1


@dataclass
class RelationConfig:
    """Parameters of one edge relation."""

    name: str
    human_out_degree: float = 6.0
    bot_out_degree: float = 8.0
    # Probability that a human edge targets another human (within community).
    human_to_human: float = 0.95
    # Probability that a bot edge targets a bot (the rest target humans).
    bot_to_bot: float = 0.12
    # Probability that an edge leaves the source node's community.
    cross_community: float = 0.02


@dataclass
class NetworkConfig:
    """Full relation set for one benchmark."""

    relations: List[RelationConfig] = field(default_factory=list)
    seed: int = 0

    @classmethod
    def twitter_two_relations(cls, seed: int = 0, bot_to_bot: float = 0.12) -> "NetworkConfig":
        """TwiBot-style graphs: ``following`` and ``follower`` relations."""
        return cls(
            relations=[
                RelationConfig("following", human_out_degree=6.0, bot_out_degree=9.0, bot_to_bot=bot_to_bot),
                RelationConfig("follower", human_out_degree=5.0, bot_out_degree=3.0, bot_to_bot=bot_to_bot),
            ],
            seed=seed,
        )

    @classmethod
    def mgtab_seven_relations(cls, seed: int = 0) -> "NetworkConfig":
        """MGTAB-style graphs with seven relations of varying density."""
        names = ["followers", "friends", "mention", "reply", "quoted", "url", "hashtag"]
        densities = [8.0, 7.0, 4.0, 3.0, 2.0, 1.5, 3.0]
        relations = []
        for name, density in zip(names, densities):
            relations.append(
                RelationConfig(
                    name,
                    human_out_degree=density,
                    bot_out_degree=density * 0.9,
                    human_to_human=0.82,
                    bot_to_bot=0.35,
                    cross_community=0.05,
                )
            )
        return cls(relations=relations, seed=seed)


def _sample_targets(
    source: int,
    count: int,
    candidate_pool: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``count`` distinct targets from the pool, excluding the source."""
    pool = candidate_pool[candidate_pool != source]
    if pool.size == 0 or count <= 0:
        return np.empty(0, dtype=np.int64)
    count = min(count, pool.size)
    return rng.choice(pool, size=count, replace=False)


def generate_relations(
    labels: Sequence[int],
    communities: Sequence[int],
    config: NetworkConfig,
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Generate edge lists per relation for the given node labels/communities."""
    labels = np.asarray(labels, dtype=np.int64)
    communities = np.asarray(communities, dtype=np.int64)
    num_nodes = labels.shape[0]
    rng = np.random.default_rng(config.seed)

    node_index = np.arange(num_nodes)
    humans_by_comm: Dict[int, np.ndarray] = {}
    bots_by_comm: Dict[int, np.ndarray] = {}
    for community in np.unique(communities):
        members = node_index[communities == community]
        humans_by_comm[int(community)] = members[labels[members] == HUMAN]
        bots_by_comm[int(community)] = members[labels[members] == BOT]
    all_humans = node_index[labels == HUMAN]
    all_bots = node_index[labels == BOT]

    relations: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for rel_config in config.relations:
        src_list: List[np.ndarray] = []
        dst_list: List[np.ndarray] = []
        for node in range(num_nodes):
            label = labels[node]
            community = int(communities[node])
            if label == HUMAN:
                degree = rng.poisson(rel_config.human_out_degree)
                same_label_prob = rel_config.human_to_human
            else:
                degree = rng.poisson(rel_config.bot_out_degree)
                same_label_prob = rel_config.bot_to_bot
            if degree == 0:
                continue
            same_label_count = int(rng.binomial(degree, same_label_prob))
            other_label_count = degree - same_label_count

            local = rng.random() >= rel_config.cross_community
            if label == HUMAN:
                same_pool = humans_by_comm[community] if local else all_humans
                other_pool = bots_by_comm[community] if local else all_bots
            else:
                same_pool = bots_by_comm[community] if local else all_bots
                other_pool = humans_by_comm[community] if local else all_humans

            targets = np.concatenate(
                [
                    _sample_targets(node, same_label_count, same_pool, rng),
                    _sample_targets(node, other_label_count, other_pool, rng),
                ]
            )
            if targets.size == 0:
                continue
            src_list.append(np.full(targets.size, node, dtype=np.int64))
            dst_list.append(targets.astype(np.int64))
        if src_list:
            relations[rel_config.name] = (
                np.concatenate(src_list),
                np.concatenate(dst_list),
            )
        else:
            relations[rel_config.name] = (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
    return relations
