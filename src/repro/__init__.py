"""BSG4Bot reproduction: efficient bot detection on biased heterogeneous subgraphs.

The stable public surface is :mod:`repro.api` — construct detectors through
the registry, train once, persist artifacts, and serve node-scoring sessions:

* :func:`repro.api.create_detector` -- build BSG4Bot or any baseline from a
  config dict (``{"name": ..., "scale": ..., "overrides": {...}}``).
* :func:`repro.api.save_detector` / :func:`repro.api.load_detector` -- persist
  a trained detector (config + weights + subgraph store) and reload it
  without retraining.
* :class:`repro.api.DetectionSession` -- serve-many scoring with incremental
  graph updates.
* :func:`repro.datasets.load_benchmark` -- build a synthetic TwiBot-20 /
  TwiBot-22 / MGTAB-style benchmark.
* :mod:`repro.experiments` -- runners that regenerate every table and figure
  of the paper's evaluation section.

Everything else (``core``, ``sampling``, ``nn``, ``tensor``, ...) is
internal substrate.
"""

from repro.core import BSG4Bot, BSG4BotConfig
from repro.datasets import load_benchmark
from repro import api

__version__ = "1.1.0"

__all__ = ["BSG4Bot", "BSG4BotConfig", "api", "load_benchmark", "__version__"]
