"""BSG4Bot reproduction: efficient bot detection on biased heterogeneous subgraphs.

Public entry points:

* :func:`repro.datasets.load_benchmark` -- build a synthetic TwiBot-20 /
  TwiBot-22 / MGTAB-style benchmark.
* :class:`repro.core.BSG4Bot` -- the paper's detector (pre-classifier, biased
  subgraph construction, heterogeneous subgraph GNN).
* :func:`repro.baselines.get_detector` -- any of the twelve baselines (or
  BSG4Bot) by name.
* :mod:`repro.experiments` -- runners that regenerate every table and figure
  of the paper's evaluation section.
"""

from repro.core import BSG4Bot, BSG4BotConfig
from repro.datasets import load_benchmark

__version__ = "1.0.0"

__all__ = ["BSG4Bot", "BSG4BotConfig", "load_benchmark", "__version__"]
