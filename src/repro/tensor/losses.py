"""Loss functions used across the reproduction."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.tensor.tensor import Tensor, log_softmax, _ensure_tensor


def cross_entropy(logits: Tensor, labels: np.ndarray, weight: Optional[np.ndarray] = None) -> Tensor:
    """Mean cross-entropy of integer ``labels`` under row-wise ``logits``.

    ``weight`` optionally re-weights each class (useful for the imbalanced
    TwiBot-22-style benchmarks where bots are the minority class).
    """
    labels = np.asarray(labels, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(labels.shape[0])
    picked = log_probs[rows, labels]
    if weight is not None:
        weight = np.asarray(weight, dtype=np.float64)
        sample_weight = weight[labels]
        total = float(sample_weight.sum())
        return -(picked * Tensor(sample_weight)).sum() * (1.0 / max(total, 1e-12))
    return -picked.mean()


def binary_cross_entropy(probabilities: Tensor, labels: np.ndarray) -> Tensor:
    """Binary cross entropy on probabilities in (0, 1), as in Eq. 16."""
    labels = np.asarray(labels, dtype=np.float64)
    probs = _ensure_tensor(probabilities).clip(1e-12, 1.0 - 1e-12)
    target = Tensor(labels)
    loss = -(target * probs.log() + (1.0 - target) * (1.0 - probs).log())
    return loss.mean()


def l2_penalty(parameters: Iterable[Tensor], coefficient: float) -> Tensor:
    """Sum of squared parameter norms scaled by ``coefficient`` (Eq. 16)."""
    total: Optional[Tensor] = None
    for param in parameters:
        term = (param * param).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * coefficient


def fused_cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    weight: Optional[np.ndarray] = None,
    parameters: Iterable[Tensor] = (),
    weight_decay: float = 0.0,
) -> Tensor:
    """``cross_entropy(...) + l2_penalty(...)`` as two fused graph nodes.

    Bit-identical to the composed expression — same forward value, same
    gradient for every tensor — but the composed graph's ~10 + 3·|params|
    intermediate nodes collapse into two, so ``backward`` walks a
    three-node graph above the model and runs each hand-written chain once.
    The backward closures replicate the composed ops' exact NumPy
    expressions *and* their accumulation bracketing (the L2 node contributes
    each parameter's gradient twice, mirroring the ``p * p`` product's two
    parent pairs, so ``(model_grad + g) + g`` associates identically);
    ``tests/test_fused_loss.py`` property-tests the equality.
    """
    labels = np.asarray(labels, dtype=np.int64)
    parameters = tuple(parameters)
    num_rows = labels.shape[0]
    rows = np.arange(num_rows)
    logits_t = _ensure_tensor(logits)

    # Forward exactly as the composed graph computes it, on raw arrays.
    logits_data = logits_t.data
    shifted = logits_data - logits_data.max(axis=-1, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_sum
    probs = np.exp(log_probs)
    picked = log_probs[rows, labels]
    if weight is not None:
        weight = np.asarray(weight, dtype=np.float64)
        sample_weight = weight[labels]
        scale = np.asarray(1.0 / max(float(sample_weight.sum()), 1e-12))
        ce_value = (-(picked * sample_weight).sum()) * scale
    else:
        inv_count = np.asarray(1.0 / num_rows)
        ce_value = -(picked.sum() * inv_count)

    ce_node = Tensor(ce_value, requires_grad=logits_t.requires_grad, _parents=(logits_t,))

    if weight is not None:

        def ce_backward(grad: np.ndarray):
            # Composed chain: root-mul → neg → sum → mul(sample_weight) →
            # getitem → log_softmax, each step's expression verbatim.
            grad_neg = np.multiply(grad, scale)
            grad_total = -grad_neg
            grad_product = np.broadcast_to(np.asarray(grad_total), (num_rows,)).copy()
            grad_picked = grad_product * sample_weight
            full = np.zeros_like(log_probs)
            np.add.at(full, (rows, labels), grad_picked)
            total = full.sum(axis=-1, keepdims=True)
            return ((logits_t, full - probs * total),)

    else:

        def ce_backward(grad: np.ndarray):
            # Composed chain: neg → mul(1/B) → sum → getitem → log_softmax.
            grad_mean = -grad
            grad_sum = np.multiply(grad_mean, inv_count)
            grad_picked = np.broadcast_to(np.asarray(grad_sum), (num_rows,)).copy()
            full = np.zeros_like(log_probs)
            np.add.at(full, (rows, labels), grad_picked)
            total = full.sum(axis=-1, keepdims=True)
            return ((logits_t, full - probs * total),)

    ce_node._backward = ce_backward

    # L2 term as one node over all parameters.  Forward is the composed
    # left-fold; backward delivers, per parameter, the two identical pairs
    # the ``p * p`` node would (the duplication is load-bearing: the
    # accumulation order in ``Tensor.backward`` brackets the sums the same
    # way only if the contribution count matches).
    total_sq: Optional[np.ndarray] = None
    for param in parameters:
        term = (param.data * param.data).sum()
        total_sq = term if total_sq is None else total_sq + term
    coefficient = np.asarray(weight_decay, dtype=np.float64)
    l2_value = np.asarray(0.0) if total_sq is None else total_sq * coefficient

    l2_node = Tensor(
        l2_value,
        requires_grad=any(param.requires_grad for param in parameters),
        _parents=parameters,
    )

    if parameters:

        def l2_backward(grad: np.ndarray):
            grad_total = np.multiply(grad, coefficient)
            pairs = []
            for param in parameters:
                grad_bcast = np.broadcast_to(np.asarray(grad_total), param.shape).copy()
                grad_param = grad_bcast * param.data
                pairs.append((param, grad_param))
                pairs.append((param, grad_bcast * param.data))
            return tuple(pairs)

        l2_node._backward = l2_backward

    return ce_node + l2_node
