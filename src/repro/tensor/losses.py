"""Loss functions used across the reproduction."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.tensor.tensor import Tensor, log_softmax, _ensure_tensor


def cross_entropy(logits: Tensor, labels: np.ndarray, weight: Optional[np.ndarray] = None) -> Tensor:
    """Mean cross-entropy of integer ``labels`` under row-wise ``logits``.

    ``weight`` optionally re-weights each class (useful for the imbalanced
    TwiBot-22-style benchmarks where bots are the minority class).
    """
    labels = np.asarray(labels, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(labels.shape[0])
    picked = log_probs[rows, labels]
    if weight is not None:
        weight = np.asarray(weight, dtype=np.float64)
        sample_weight = weight[labels]
        total = float(sample_weight.sum())
        return -(picked * Tensor(sample_weight)).sum() * (1.0 / max(total, 1e-12))
    return -picked.mean()


def binary_cross_entropy(probabilities: Tensor, labels: np.ndarray) -> Tensor:
    """Binary cross entropy on probabilities in (0, 1), as in Eq. 16."""
    labels = np.asarray(labels, dtype=np.float64)
    probs = _ensure_tensor(probabilities).clip(1e-12, 1.0 - 1e-12)
    target = Tensor(labels)
    loss = -(target * probs.log() + (1.0 - target) * (1.0 - probs).log())
    return loss.mean()


def l2_penalty(parameters: Iterable[Tensor], coefficient: float) -> Tensor:
    """Sum of squared parameter norms scaled by ``coefficient`` (Eq. 16)."""
    total: Optional[Tensor] = None
    for param in parameters:
        term = (param * param).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * coefficient
