"""Reverse-mode autodiff tensor built on top of ``numpy.ndarray``.

The design mirrors the classic define-by-run approach: every operation
returns a new :class:`Tensor` that remembers its parents and a closure that
propagates the output gradient back to them.  Calling :meth:`Tensor.backward`
performs a topological sort of the recorded graph and runs those closures in
reverse order.

Only the operations needed by the reproduction are implemented, but each is
implemented with full broadcasting support so the layer code reads naturally.

Serving never calls ``backward``, so every op carries a second, *light* path
gated by :func:`inference_mode`: the forward value is computed by exactly the
same NumPy expressions (results are bit-identical to the autograd path), but
no ``_backward`` closure, parent tuple, or backward-only auxiliary array is
built.  While a capture tape is installed (see :mod:`repro.tensor.replay`)
the light path additionally records each op's semantic identity so the
traced forward can be compiled into a replayable kernel schedule.  Both the
inference flag and the tape are thread-local: tracing in one session never
observes another thread's ops.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

ArrayLike = Union[np.ndarray, float, int, Sequence]

_DEFAULT_DTYPE = np.float64


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != _DEFAULT_DTYPE:
            return value.astype(_DEFAULT_DTYPE)
        return value
    return np.asarray(value, dtype=_DEFAULT_DTYPE)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class _EngineState(threading.local):
    """Per-thread engine mode: inference nesting depth and the active tape."""

    inference = 0
    tape = None


_STATE = _EngineState()


@contextmanager
def inference_mode():
    """Context under which ops skip all autograd bookkeeping.

    Forward values are bit-identical to the normal path (the same NumPy
    expressions run), but the returned tensors carry no ``_backward``
    closures or parent links, so no graph is retained and backward-only
    auxiliaries (masks, boundaries, cached probabilities) are never
    materialized.  Nestable and thread-local.
    """
    _STATE.inference += 1
    try:
        yield
    finally:
        _STATE.inference -= 1


def is_inference() -> bool:
    """Whether the calling thread is currently inside :func:`inference_mode`."""
    return _STATE.inference > 0


def _install_tape(tape):
    """Install a capture tape for the calling thread; returns the old one."""
    previous = _STATE.tape
    _STATE.tape = tape
    return previous


def _restore_tape(previous) -> None:
    _STATE.tape = previous


def _emit(op: str, out_data: np.ndarray, inputs: tuple, meta: Optional[dict] = None) -> "Tensor":
    """Wrap a light-path result, recording the op on the active tape."""
    out = Tensor(out_data)
    tape = _STATE.tape
    if tape is not None:
        tape.record(op, out, inputs, meta)
    return out


class Tensor:
    """A NumPy array with an attached gradient and computation history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Iterable["Tensor"] = (),
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self, copy: bool = False) -> "Tensor":
        """Return a tensor cut off from the graph.

        By default the result *shares storage* with this tensor (mutating
        one's ``data`` in place is visible through the other) — the cheap
        choice for read-only consumers such as metric code.  Pass
        ``copy=True`` for an independent buffer that later in-place writes
        cannot reach.
        """
        return Tensor(self.data.copy() if copy else self.data, requires_grad=False)

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear the gradient.

        ``set_to_none=False`` keeps the allocated gradient buffer and zeroes
        it in place, so the next ``backward`` accumulates into preallocated
        memory instead of allocating a fresh array per step.
        """
        if set_to_none:
            self.grad = None
        elif self.grad is not None:
            self.grad.fill(0.0)

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        elif self.grad.shape == grad.shape:
            np.add(self.grad, grad, out=self.grad)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        order: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    order.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)

        grads: dict[int, np.ndarray] = {id(self): grad}
        # Gradients entering a dict slot are arrays produced by backward
        # closures and may be views of (or aliased with) arrays delivered to
        # other parents, so the first extra contribution allocates; from the
        # second on the slot is privately owned and accumulates in place.
        owned: set[int] = set()
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is None:
                continue
            for parent, parent_grad in node._backward(node_grad):
                if parent_grad is None:
                    continue
                key = id(parent)
                if key not in grads:
                    grads[key] = parent_grad
                elif key in owned and grads[key].shape == parent_grad.shape:
                    np.add(grads[key], parent_grad, out=grads[key])
                else:
                    grads[key] = grads[key] + parent_grad
                    owned.add(key)

    # ------------------------------------------------------------------
    # Arithmetic operators
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        out_data = self.data + other_t.data
        if _STATE.inference:
            return _emit("add", out_data, (self, other_t))
        out = Tensor(
            out_data,
            requires_grad=self.requires_grad or other_t.requires_grad,
            _parents=(self, other_t),
        )

        def backward(grad: np.ndarray):
            return (
                (self, _unbroadcast(grad, self.shape)),
                (other_t, _unbroadcast(grad, other_t.shape)),
            )

        out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data
        if _STATE.inference:
            return _emit("neg", out_data, (self,))
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))
        out._backward = lambda grad: ((self, -grad),)
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_ensure_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        out_data = self.data * other_t.data
        if _STATE.inference:
            return _emit("mul", out_data, (self, other_t))
        out = Tensor(
            out_data,
            requires_grad=self.requires_grad or other_t.requires_grad,
            _parents=(self, other_t),
        )

        def backward(grad: np.ndarray):
            return (
                (self, _unbroadcast(grad * other_t.data, self.shape)),
                (other_t, _unbroadcast(grad * self.data, other_t.shape)),
            )

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        out_data = self.data / other_t.data
        if _STATE.inference:
            return _emit("div", out_data, (self, other_t))
        out = Tensor(
            out_data,
            requires_grad=self.requires_grad or other_t.requires_grad,
            _parents=(self, other_t),
        )

        def backward(grad: np.ndarray):
            grad_self = _unbroadcast(grad / other_t.data, self.shape)
            grad_other = _unbroadcast(
                -grad * self.data / (other_t.data**2), other_t.shape
            )
            return ((self, grad_self), (other_t, grad_other))

        out._backward = backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        if _STATE.inference:
            return _emit("pow", out_data, (self,), {"exponent": exponent})
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))

        def backward(grad: np.ndarray):
            return ((self, grad * exponent * self.data ** (exponent - 1)),)

        out._backward = backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return matmul(self, other)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out_data = self.data.reshape(shape)
        if _STATE.inference:
            return _emit("reshape", out_data, (self,), {"shape": tuple(shape)})
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))
        out._backward = lambda grad: ((self, grad.reshape(original)),)
        return out

    def transpose(self) -> "Tensor":
        if _STATE.inference:
            return _emit("transpose", self.data.T, (self,))
        out = Tensor(self.data.T, requires_grad=self.requires_grad, _parents=(self,))
        out._backward = lambda grad: ((self, grad.T),)
        return out

    @property
    def T(self) -> "Tensor":  # noqa: N802 - mirror numpy naming
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if _STATE.inference:
            return _emit("getitem", out_data, (self,), {"index": index})
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))

        def backward(grad: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return ((self, full),)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if _STATE.inference:
            return _emit("sum", out_data, (self,), {"axis": axis, "keepdims": keepdims})
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))

        def backward(grad: np.ndarray):
            grad_arr = np.asarray(grad)
            if axis is not None and not keepdims:
                grad_arr = np.expand_dims(grad_arr, axis)
            return ((self, np.broadcast_to(grad_arr, self.shape).copy()),)

        out._backward = backward
        return out

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        if _STATE.inference:
            # Recorded as one composite op: the 1/count factor depends on the
            # live batch shape, so a replay kernel must recompute it rather
            # than bake the trace-time constant into a ``mul`` step.  The
            # expression is the sum/scale decomposition below, verbatim.
            out_data = self.data.sum(axis=axis, keepdims=keepdims) * (1.0 / count)
            return _emit("mean", out_data, (self,), {"axis": axis, "keepdims": keepdims})
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if _STATE.inference:
            return _emit("max", out_data, (self,), {"axis": axis, "keepdims": keepdims})
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))

        def backward(grad: np.ndarray):
            grad_arr = np.asarray(grad)
            expanded = out_data
            if axis is not None and not keepdims:
                grad_arr = np.expand_dims(grad_arr, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            return ((self, mask * grad_arr),)

        out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Elementwise functions (method aliases)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if _STATE.inference:
            return _emit("exp", out_data, (self,))
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))
        out._backward = lambda grad: ((self, grad * out_data),)
        return out

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if _STATE.inference:
            return _emit("log", out_data, (self,))
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))
        out._backward = lambda grad: ((self, grad / self.data),)
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        if _STATE.inference:
            return _emit("clip", out_data, (self,), {"low": low, "high": high})
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,))

        def backward(grad: np.ndarray):
            mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)
            return ((self, grad * mask),)

        out._backward = backward
        return out


def _ensure_tensor(value: Union[Tensor, ArrayLike]) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


# ----------------------------------------------------------------------
# Factory helpers
# ----------------------------------------------------------------------
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a tensor from array-like data."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


# ----------------------------------------------------------------------
# Core operations
# ----------------------------------------------------------------------
def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Dense matrix product with gradients for both operands."""
    a_t, b_t = _ensure_tensor(a), _ensure_tensor(b)
    out_data = a_t.data @ b_t.data
    if _STATE.inference:
        return _emit("matmul", out_data, (a_t, b_t))
    out = Tensor(
        out_data,
        requires_grad=a_t.requires_grad or b_t.requires_grad,
        _parents=(a_t, b_t),
    )

    def backward(grad: np.ndarray):
        grad_a = grad @ b_t.data.T if a_t.data.ndim > 1 else grad @ b_t.data.T
        grad_b = a_t.data.T @ grad
        return ((a_t, _unbroadcast(grad_a, a_t.shape)), (b_t, _unbroadcast(grad_b, b_t.shape)))

    out._backward = backward
    return out


def spmm(sparse_matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Sparse @ dense product; the sparse operand is a constant.

    Used for GNN aggregation with (normalized) adjacency matrices.  Gradients
    flow only to the dense operand: ``d(A @ X)/dX`` applied to an upstream
    gradient ``G`` is ``A.T @ G``.
    """
    dense_t = _ensure_tensor(dense)
    matrix = sparse_matrix.tocsr()
    out_data = matrix @ dense_t.data
    if _STATE.inference:
        return _emit("spmm", out_data, (dense_t,), {"matrix": matrix})
    out = Tensor(
        out_data,
        requires_grad=dense_t.requires_grad,
        _parents=(dense_t,),
    )
    out._backward = lambda grad: ((dense_t, matrix.T @ grad),)
    return out


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    items = [_ensure_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in items], axis=axis)
    if _STATE.inference:
        return _emit("concat", data, tuple(items), {"axis": axis})
    out = Tensor(
        data,
        requires_grad=any(t.requires_grad for t in items),
        _parents=tuple(items),
    )
    sizes = [t.data.shape[axis] for t in items]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray):
        pieces = np.split(grad, boundaries, axis=axis)
        return tuple((item, piece) for item, piece in zip(items, pieces))

    out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    items = [_ensure_tensor(t) for t in tensors]
    data = np.stack([t.data for t in items], axis=axis)
    if _STATE.inference:
        return _emit("stack", data, tuple(items), {"axis": axis})
    out = Tensor(
        data,
        requires_grad=any(t.requires_grad for t in items),
        _parents=tuple(items),
    )

    def backward(grad: np.ndarray):
        pieces = np.split(grad, len(items), axis=axis)
        return tuple(
            (item, np.squeeze(piece, axis=axis)) for item, piece in zip(items, pieces)
        )

    out._backward = backward
    return out


def gather_rows(source: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``source[index]`` (used to fetch edge endpoints)."""
    index = np.asarray(index, dtype=np.int64)
    src = _ensure_tensor(source)
    out_data = src.data[index]
    if _STATE.inference:
        return _emit("gather", out_data, (src,), {"index": index})
    out = Tensor(out_data, requires_grad=src.requires_grad, _parents=(src,))

    def backward(grad: np.ndarray):
        full = np.zeros_like(src.data)
        np.add.at(full, index, grad)
        return ((src, full),)

    out._backward = backward
    return out


def scatter_add(source: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``source`` into ``num_segments`` buckets given by ``index``."""
    index = np.asarray(index, dtype=np.int64)
    src = _ensure_tensor(source)
    out_shape = (num_segments,) + src.data.shape[1:]
    data = np.zeros(out_shape, dtype=src.data.dtype)
    np.add.at(data, index, src.data)
    if _STATE.inference:
        return _emit(
            "scatter_add", data, (src,), {"index": index, "num_segments": num_segments}
        )
    out = Tensor(data, requires_grad=src.requires_grad, _parents=(src,))
    out._backward = lambda grad: ((src, grad[index]),)
    return out


# ----------------------------------------------------------------------
# Activations and normalisation
# ----------------------------------------------------------------------
def relu(x: Tensor) -> Tensor:
    x_t = _ensure_tensor(x)
    mask = (x_t.data > 0).astype(x_t.data.dtype)
    out_data = x_t.data * mask
    if _STATE.inference:
        return _emit("relu", out_data, (x_t,))
    out = Tensor(out_data, requires_grad=x_t.requires_grad, _parents=(x_t,))
    out._backward = lambda grad: ((x_t, grad * mask),)
    return out


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    x_t = _ensure_tensor(x)
    slope = np.where(x_t.data > 0, 1.0, negative_slope)
    out_data = x_t.data * slope
    if _STATE.inference:
        return _emit("leaky_relu", out_data, (x_t,), {"negative_slope": negative_slope})
    out = Tensor(out_data, requires_grad=x_t.requires_grad, _parents=(x_t,))
    out._backward = lambda grad: ((x_t, grad * slope),)
    return out


def tanh(x: Tensor) -> Tensor:
    x_t = _ensure_tensor(x)
    out_data = np.tanh(x_t.data)
    if _STATE.inference:
        return _emit("tanh", out_data, (x_t,))
    out = Tensor(out_data, requires_grad=x_t.requires_grad, _parents=(x_t,))
    out._backward = lambda grad: ((x_t, grad * (1.0 - out_data**2)),)
    return out


def sigmoid(x: Tensor) -> Tensor:
    x_t = _ensure_tensor(x)
    out_data = 1.0 / (1.0 + np.exp(-x_t.data))
    if _STATE.inference:
        return _emit("sigmoid", out_data, (x_t,))
    out = Tensor(out_data, requires_grad=x_t.requires_grad, _parents=(x_t,))
    out._backward = lambda grad: ((x_t, grad * out_data * (1.0 - out_data)),)
    return out


def maximum(x: Tensor, value: float) -> Tensor:
    """Elementwise maximum with a scalar constant."""
    x_t = _ensure_tensor(x)
    out_data = np.maximum(x_t.data, value)
    if _STATE.inference:
        return _emit("maximum", out_data, (x_t,), {"value": value})
    mask = (x_t.data >= value).astype(x_t.data.dtype)
    out = Tensor(out_data, requires_grad=x_t.requires_grad, _parents=(x_t,))
    out._backward = lambda grad: ((x_t, grad * mask),)
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    x_t = _ensure_tensor(x)
    shifted = x_t.data - x_t.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)
    if _STATE.inference:
        return _emit("softmax", out_data, (x_t,), {"axis": axis})
    out = Tensor(out_data, requires_grad=x_t.requires_grad, _parents=(x_t,))

    def backward(grad: np.ndarray):
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        return ((x_t, out_data * (grad - dot)),)

    out._backward = backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x_t = _ensure_tensor(x)
    shifted = x_t.data - x_t.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    if _STATE.inference:
        return _emit("log_softmax", out_data, (x_t,), {"axis": axis})
    out = Tensor(out_data, requires_grad=x_t.requires_grad, _parents=(x_t,))
    probs = np.exp(out_data)

    def backward(grad: np.ndarray):
        total = grad.sum(axis=axis, keepdims=True)
        return ((x_t, grad - probs * total),)

    out._backward = backward
    return out


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is false or rate is 0."""
    if not training or rate <= 0.0:
        return _ensure_tensor(x)
    x_t = _ensure_tensor(x)
    keep = 1.0 - rate
    mask = (rng.random(x_t.shape) < keep).astype(x_t.data.dtype) / keep
    out_data = x_t.data * mask
    if _STATE.inference:
        # Stochastic: recorded so a capture attempt of a training-mode model
        # is rejected at compile time rather than silently frozen.
        return _emit("dropout", out_data, (x_t,))
    out = Tensor(out_data, requires_grad=x_t.requires_grad, _parents=(x_t,))
    out._backward = lambda grad: ((x_t, grad * mask),)
    return out
