"""Minimal reverse-mode automatic differentiation engine on NumPy.

This package stands in for PyTorch in the reproduction: it provides a
:class:`Tensor` with a dynamic computation graph, the differentiable
operations required by the paper's models (dense and sparse matrix products,
activations, softmax/attention primitives, gather/scatter for message
passing), weight initialisers, and first-order optimisers.

Two inference fast paths live alongside the autograd engine:
:func:`inference_mode` (ops skip graph construction entirely) and
:mod:`repro.tensor.replay` (capture the forward once per shape bucket,
replay it as a fused, preallocated raw-NumPy kernel schedule — bit-identical
to eager by contract).
"""

from repro.tensor.tensor import (
    Tensor,
    concat,
    inference_mode,
    is_inference,
    gather_rows,
    leaky_relu,
    log_softmax,
    matmul,
    maximum,
    relu,
    scatter_add,
    sigmoid,
    softmax,
    spmm,
    stack,
    tanh,
    tensor,
    zeros,
)
from repro.tensor.init import glorot_uniform, he_uniform, zeros_init
from repro.tensor.losses import (
    binary_cross_entropy,
    cross_entropy,
    fused_cross_entropy,
    l2_penalty,
)
from repro.tensor.module import Module, Parameter
from repro.tensor.optim import SGD, Adam

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "concat",
    "stack",
    "matmul",
    "spmm",
    "gather_rows",
    "scatter_add",
    "relu",
    "leaky_relu",
    "tanh",
    "sigmoid",
    "maximum",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy",
    "fused_cross_entropy",
    "l2_penalty",
    "inference_mode",
    "is_inference",
    "glorot_uniform",
    "he_uniform",
    "zeros_init",
    "Module",
    "Parameter",
    "SGD",
    "Adam",
]
