"""First-order optimisers operating directly on parameter tensors."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.tensor.tensor import Tensor


class Optimizer:
    """Base optimiser; holds the parameter list and clears gradients."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self, set_to_none: bool = True) -> None:
        for param in self.parameters:
            param.zero_grad(set_to_none=set_to_none)

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba), the default across all experiments."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
