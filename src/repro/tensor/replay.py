"""Capture-and-replay inference engine for the serving forward pass.

Serving never needs gradients, yet the eager engine pays for them on every
wave: a Python :class:`~repro.tensor.Tensor` object, a parent tuple, and a
freshly allocated output array per op.  This module removes all of it from
the steady state:

1. **Capture** — the first wave landing in a shape bucket runs eagerly under
   :func:`repro.tensor.inference_mode` with a :class:`Tape` installed; every
   op records its semantic identity (name, inputs, meta) in execution order.
   The eager result is returned to the caller, so a miss costs one normal
   forward plus a compile.
2. **Compile** — the tape is linearized into a flat schedule of raw-NumPy
   kernels.  Batch-dependent leaves (the collated feature matrix, each
   relation's block-diagonal adjacency, the center-row index) are matched by
   object identity against the traced batch and replaced with symbolic
   *slots* rebound on every call; parameters are read live through their
   ``Tensor`` (so ``load_state_dict`` is picked up); everything else is a
   constant.  Output buffers are preallocated at the bucket's capacity, and
   adjacent single-consumer elementwise steps are fused into their producer's
   buffer, so the replay path performs zero per-wave allocations for the
   large intermediates.
3. **Replay** — subsequent waves in the bucket slice every buffer to the
   live batch shape (symbolic dims propagate from the slots) and run the
   kernel list.  No ``Tensor`` objects, no ``_parents``/``_backward``
   bookkeeping, no garbage.

**Bit-identity contract.**  Every kernel performs exactly the NumPy
expression sequence of its eager op (``np.add(a, b, out=buf)`` for ``a + b``,
scipy's own ``csr_matvecs`` routine for ``A @ X``, the same
subtract-max/exp/normalize steps for softmax), so a replayed forward equals
the eager forward bit for bit.  The contract is enforced three ways: a
compile-time self-check replays the traced batch and compares bitwise
(a mismatch permanently disables the engine), the equivalence tests named by
the ``# oracle:`` annotation below, and the serving benchmark's wave replay
assertions.  Anything the compiler cannot prove — an op without a kernel, a
batch-dependent array it cannot slot, a symbolic shape outside axis 0 —
raises :class:`ReplayUnsupported` and the engine falls back to eager
forever, trading speed for correctness.

**Concurrency.**  A :class:`ReplayEngine` owns mutable buffers and must
never be shared across sessions: each :class:`repro.api.DetectionSession`
creates its own and serializes every call under the session lock
(guarded-by: DetectionSession._lock).  Tracing state is thread-local, so a
trace in one session never records another thread's ops.

Disable with ``REPRO_REPLAY=0`` (environment) or
``DetectionSession(..., use_replay=False)``; cap the per-engine bucket cache
with ``REPRO_REPLAY_BUCKETS`` (default 8, LRU-evicted).
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.tensor.tensor import (
    Tensor,
    _install_tape,
    _restore_tape,
    inference_mode,
    softmax,
)

try:  # scipy's CSR mat-multivector routine, for allocation-free spmm
    from scipy.sparse import _sparsetools as _sparsetools

    _CSR_MATVECS = getattr(_sparsetools, "csr_matvecs", None)
except ImportError:  # pragma: no cover - scipy always ships it today
    _CSR_MATVECS = None

_MIN_BUCKET = 16

#: Symbolic axis-0 dimensions: collated node rows and center count.
_SYM_NODES = "N"
_SYM_CENTERS = "C"


class ReplayUnsupported(RuntimeError):
    """The traced forward cannot be compiled into a replay schedule."""


def eager_forward_proba(model, batch) -> np.ndarray:
    """Reference eager forward: class probabilities for ``batch``'s centers.

    The slow, obviously-correct oracle for :meth:`ReplayEngine.forward_proba`
    — the same ops the serving path always ran, under
    :func:`~repro.tensor.inference_mode` so no autograd graph is built.
    """
    model.eval()
    with inference_mode():
        return softmax(model(batch), axis=-1).numpy()


def bucket_key(batch) -> Tuple[int, int]:
    """Shape bucket for ``batch``: next-pow2 (node rows, center count)."""
    return (
        _ceil_pow2(int(batch.features.shape[0])),
        _ceil_pow2(int(batch.center_positions.size)),
    )


def _ceil_pow2(value: int) -> int:
    capacity = _MIN_BUCKET
    while capacity < value:
        capacity *= 2
    return capacity


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------
class _Step:
    """One recorded op: semantic name, output tensor, inputs, extras."""

    __slots__ = ("op", "out", "inputs", "meta")

    def __init__(self, op: str, out: Tensor, inputs: tuple, meta: Optional[dict]) -> None:
        self.op = op
        self.out = out
        self.inputs = inputs
        self.meta = meta or {}


class Tape:
    """Execution-order recording of one traced forward pass.

    Registers the traced batch's arrays by identity so the compiler can tell
    a batch-dependent leaf (rebound every call) from a true constant (baked
    into the schedule).
    """

    def __init__(self, batch) -> None:
        self.steps: List[_Step] = []
        self.output: Optional[Tensor] = None
        self.slots: Dict[int, Any] = {id(batch.features): "features"}
        for name, matrix in batch.relation_adjacencies.items():
            self.slots[id(matrix)] = ("adjacency", name)
        self.slots[id(batch.center_positions)] = "centers"
        # Any other array hanging off the batch is batch-dependent too; if
        # one leaks into the schedule as a "constant" the compile must fail
        # rather than bake the traced batch's values in.
        self.batch_owned = {
            id(value)
            for value in vars(batch).values()
            if isinstance(value, (np.ndarray, sp.spmatrix))
        }
        self.trace_nodes = int(batch.features.shape[0])
        self.trace_centers = int(batch.center_positions.size)

    def record(self, op: str, out: Tensor, inputs: tuple, meta: Optional[dict]) -> None:
        self.steps.append(_Step(op, out, inputs, meta))


def trace_forward_proba(model, batch) -> Tuple[Tape, np.ndarray]:
    """Run the eager forward once with a tape installed.

    Returns the tape and the eager probabilities — bit-identical to
    :func:`eager_forward_proba` (tracing only records, the same expressions
    run).
    """
    model.eval()
    tape = Tape(batch)
    with inference_mode():
        previous = _install_tape(tape)
        try:
            out = softmax(model(batch), axis=-1)
        finally:
            _restore_tape(previous)
    tape.output = out
    return tape, out.numpy()


# ----------------------------------------------------------------------
# Symbolic shapes
# ----------------------------------------------------------------------
Dim = Any  # int or one of the _SYM_* strings
SymShape = Tuple[Dim, ...]


def _substitute(shape: SymShape, dims: Dict[str, int]) -> Tuple[int, ...]:
    return tuple(dims[d] if isinstance(d, str) else d for d in shape)


def _broadcast_shapes(a: SymShape, b: SymShape) -> SymShape:
    rank = max(len(a), len(b))
    a = (1,) * (rank - len(a)) + tuple(a)
    b = (1,) * (rank - len(b)) + tuple(b)
    out: List[Dim] = []
    for da, db in zip(a, b):
        if da == db:
            out.append(da)
        elif da == 1:
            out.append(db)
        elif db == 1:
            out.append(da)
        else:
            # A symbol never broadcasts against a fixed size (the trace-time
            # coincidence would bake the wrong extent), nor N against C.
            raise ReplayUnsupported(f"cannot broadcast {da!r} with {db!r}")
    return tuple(out)


def _only_axis0_symbolic(shape: SymShape) -> None:
    if any(isinstance(d, str) for d in shape[1:]):
        raise ReplayUnsupported(f"symbolic dimension outside axis 0 in {shape!r}")


def _normalize_axis(axis: Optional[int], rank: int) -> Optional[int]:
    if axis is None:
        return None
    return axis + rank if axis < 0 else axis


# ----------------------------------------------------------------------
# Compile
# ----------------------------------------------------------------------
class _Value:
    """One schedule value: a slot, a live-read constant, or a buffer."""

    __slots__ = ("kind", "slot", "tensor", "buffer", "sym0", "shape")

    def __init__(self, kind: str, shape: SymShape) -> None:
        self.kind = kind
        self.shape = shape
        self.slot: Any = None
        self.tensor: Optional[Tensor] = None
        self.buffer: Optional[np.ndarray] = None
        self.sym0: Optional[str] = None


class CompiledForward:
    """A fused, preallocated kernel schedule for one shape bucket.

    ``run`` rebinds the batch slots, slices every buffer to the live batch
    shape, executes the kernel list, and returns a private copy of the final
    probabilities (the buffers are reused by the next wave).
    """

    def __init__(
        self,
        values: List[_Value],
        kernels: List[Callable[[List[Any]], None]],
        output_index: int,
        capacity: Tuple[int, int],
    ) -> None:
        self._values = values
        self._kernels = kernels
        self._output_index = output_index
        self.capacity = capacity
        # Partition the value list once so ``run`` only touches what changes
        # per call: full-capacity buffers sit in the template verbatim,
        # symbolic buffers are re-sliced to the live batch shape, consts are
        # re-read (``.data`` may be swapped between calls), slots are bound
        # from the batch.
        self._template: List[Any] = [None] * len(values)
        self._sliced: List[Tuple[int, np.ndarray, str]] = []
        self._consts: List[Tuple[int, Any]] = []
        self._slot_binds: List[Tuple[int, Any]] = []
        for index, value in enumerate(values):
            if value.kind == "buffer":
                if value.sym0 is None:
                    self._template[index] = value.buffer
                else:
                    self._sliced.append((index, value.buffer, value.sym0))
            elif value.kind == "const":
                self._consts.append((index, value.tensor))
            else:
                self._slot_binds.append((index, value.slot))

    def run(self, batch) -> np.ndarray:
        dims = {
            _SYM_NODES: int(batch.features.shape[0]),
            _SYM_CENTERS: int(batch.center_positions.size),
        }
        cap_nodes, cap_centers = self.capacity
        if dims[_SYM_NODES] > cap_nodes or dims[_SYM_CENTERS] > cap_centers:
            raise ReplayUnsupported("batch exceeds this bucket's capacity")
        arrays = self._template.copy()
        for index, buffer, sym in self._sliced:
            arrays[index] = buffer[: dims[sym]]
        for index, tensor in self._consts:
            arrays[index] = tensor.data
        for index, slot in self._slot_binds:
            if slot == "features":
                arrays[index] = batch.features
            elif slot == "centers":
                arrays[index] = batch.center_positions
            else:  # ("adjacency", name)
                arrays[index] = batch.relation_adjacencies[slot[1]]
        for kernel in self._kernels:
            kernel(arrays)
        return arrays[self._output_index].copy()


#: Elementwise ops whose kernel may write into a dead input's buffer.
_INPLACE_OPS = frozenset(
    {
        "add",
        "mul",
        "div",
        "neg",
        "pow",
        "exp",
        "log",
        "clip",
        "relu",
        # leaky_relu is absent: its kernel writes x * slope into the output
        # before reading x again, so it must never alias its input.
        "tanh",
        "sigmoid",
        "maximum",
        "softmax",
    }
)

# Concat sink fusion (producers writing straight into column views of the
# fused buffer) was prototyped here and measured SLOWER: numpy ufuncs fall
# off their contiguous fast path on strided destinations, costing ~3x more
# than the memcpy-speed ``np.concatenate`` copies they would save.  Concat
# outputs therefore stay ordinary owned buffers.


class _Compiler:
    """Turns one :class:`Tape` into a :class:`CompiledForward`."""

    def __init__(self, tape: Tape, capacity: Tuple[int, int]) -> None:
        self.tape = tape
        self.capacity = capacity
        self.values: List[_Value] = []
        self.index_of: Dict[int, int] = {}  # id(Tensor) -> value index
        self.consumers: Dict[int, int] = {}  # value index -> remaining uses
        self.kernels: List[Callable[[List[Any]], None]] = []
        self.slots_used: set = set()
        self.dims = {
            _SYM_NODES: tape.trace_nodes,
            _SYM_CENTERS: tape.trace_centers,
        }
        # Liveness: total consumer count per traced tensor, filled by a
        # pre-pass in ``compile`` so a buffer is claimed for reuse only at
        # its *last* consumer (claiming at the first would corrupt any
        # later reader of the same value).
        self._uses: Dict[int, int] = {}

    # -- values ---------------------------------------------------------
    def _leaf_index(self, tensor: Tensor) -> int:
        key = id(tensor)
        if key in self.index_of:
            return self.index_of[key]
        slot = self.tape.slots.get(id(tensor.data))
        if slot == "features":
            value = _Value("slot", (_SYM_NODES,) + tensor.data.shape[1:])
            value.slot = slot
            self.slots_used.add("features")
        elif id(tensor.data) in self.tape.batch_owned:
            raise ReplayUnsupported(
                "batch-dependent array used as a constant leaf"
            )
        else:
            value = _Value("const", tuple(tensor.data.shape))
            value.tensor = tensor
        index = len(self.values)
        self.values.append(value)
        self.index_of[key] = index
        self.consumers[index] = self._uses.get(key, 0)
        return index

    def _input_index(self, tensor: Tensor) -> int:
        index = self._leaf_index(tensor)
        self.consumers[index] = self.consumers.get(index, 0) - 1
        return index

    def _new_buffer(self, shape: SymShape, dtype) -> int:
        _only_axis0_symbolic(shape)
        value = _Value("buffer", shape)
        value.sym0 = shape[0] if shape and isinstance(shape[0], str) else None
        cap = {_SYM_NODES: self.capacity[0], _SYM_CENTERS: self.capacity[1]}
        value.buffer = np.empty(_substitute(shape, cap), dtype=dtype)
        index = len(self.values)
        self.values.append(value)
        return index

    def _out_index(self, step: _Step, shape: SymShape, input_indices: List[int]) -> int:
        """Output value for ``step``: a dead same-shape input's buffer when
        the op tolerates aliasing (the fusion that trims the working set),
        else a fresh preallocated buffer."""
        if step.op in _INPLACE_OPS:
            for index in input_indices:
                value = self.values[index]
                if (
                    value.kind == "buffer"
                    and value.shape == shape
                    and self.consumers.get(index, 0) == 0
                    and value.buffer.base is None
                ):
                    # Fully consumed after this step, and owns its storage.
                    return index
        return self._new_buffer(shape, step.out.data.dtype)

    def _register_out(self, step: _Step, index: int) -> None:
        self.index_of[id(step.out)] = index
        self.consumers[index] = self._uses.get(id(step.out), 0)

    # -- shape propagation ---------------------------------------------
    def _shape_of(self, index: int) -> SymShape:
        return self.values[index].shape

    def _check(self, step: _Step, shape: SymShape) -> SymShape:
        concrete = _substitute(shape, self.dims)
        if concrete != step.out.data.shape:
            raise ReplayUnsupported(
                f"shape propagation mismatch for {step.op}: "
                f"{concrete} vs traced {step.out.data.shape}"
            )
        return shape

    # -- compile --------------------------------------------------------
    def compile(self) -> CompiledForward:
        tape = self.tape
        if tape.output is None:
            raise ReplayUnsupported("tape has no recorded output")
        produced = {id(step.out) for step in tape.steps}
        if id(tape.output) not in produced:
            raise ReplayUnsupported("traced output was not produced by a recorded op")
        # Liveness pre-pass: total uses per tensor.  The final output gets
        # one reserved use that is never consumed, so no step ever claims
        # its buffer for in-place reuse.
        for step in tape.steps:
            for parent in step.inputs:
                self._uses[id(parent)] = self._uses.get(id(parent), 0) + 1
        self._uses[id(tape.output)] = self._uses.get(id(tape.output), 0) + 1
        for step in tape.steps:
            self._plan_step(step)
        output_index = self.index_of[id(tape.output)]
        if self.values[output_index].kind != "buffer":
            raise ReplayUnsupported("traced output is not a computed value")
        # A schedule that never reads the feature or center slots would have
        # baked a converted/copied batch array in as a constant — refuse it.
        if "features" not in self.slots_used or "centers" not in self.slots_used:
            raise ReplayUnsupported("forward does not consume the batch slots")
        return CompiledForward(self.values, self.kernels, output_index, self.capacity)

    def _plan_step(self, step: _Step) -> None:
        handler = getattr(self, f"_op_{step.op}", None)
        if handler is None:
            raise ReplayUnsupported(f"no replay kernel for op {step.op!r}")
        handler(step)

    # -- op handlers ----------------------------------------------------
    def _binary(self, step: _Step, ufunc) -> None:
        ai = self._input_index(step.inputs[0])
        bi = self._input_index(step.inputs[1])
        shape = self._check(step, _broadcast_shapes(self._shape_of(ai), self._shape_of(bi)))
        oi = self._out_index(step, shape, [ai, bi])
        self._register_out(step, oi)

        def kernel(arrays, ai=ai, bi=bi, oi=oi, ufunc=ufunc):
            ufunc(arrays[ai], arrays[bi], out=arrays[oi])

        self.kernels.append(kernel)

    def _op_add(self, step):
        self._binary(step, np.add)

    def _op_mul(self, step):
        self._binary(step, np.multiply)

    def _op_div(self, step):
        self._binary(step, np.divide)

    def _unary(self, step: _Step, apply) -> None:
        xi = self._input_index(step.inputs[0])
        shape = self._check(step, self._shape_of(xi))
        oi = self._out_index(step, shape, [xi])
        self._register_out(step, oi)

        def kernel(arrays, xi=xi, oi=oi, apply=apply):
            apply(arrays[xi], arrays[oi])

        self.kernels.append(kernel)

    def _op_neg(self, step):
        self._unary(step, lambda x, out: np.negative(x, out=out))

    def _op_exp(self, step):
        self._unary(step, lambda x, out: np.exp(x, out=out))

    def _op_log(self, step):
        self._unary(step, lambda x, out: np.log(x, out=out))

    def _op_tanh(self, step):
        self._unary(step, lambda x, out: np.tanh(x, out=out))

    def _op_relu(self, step):
        def apply(x, out):
            mask = (x > 0).astype(x.dtype)
            np.multiply(x, mask, out=out)

        self._unary(step, apply)

    def _op_leaky_relu(self, step):
        negative_slope = step.meta["negative_slope"]

        def apply(x, out, negative_slope=negative_slope):
            # max(x, x * slope) is bitwise-equal to the eager
            # where(x > 0, 1, slope) * x form for 0 < slope < 1 (checked down
            # to subnormals, signed zeros, and NaN propagation) and skips the
            # float64 slope materialization.
            np.multiply(x, negative_slope, out=out)
            np.maximum(x, out, out=out)

        self._unary(step, apply)

    def _op_sigmoid(self, step):
        def apply(x, out):
            denom = np.exp(np.negative(x))
            np.add(denom, 1.0, out=denom)
            np.divide(1.0, denom, out=out)

        self._unary(step, apply)

    def _op_clip(self, step):
        low, high = step.meta["low"], step.meta["high"]
        self._unary(step, lambda x, out, low=low, high=high: np.clip(x, low, high, out=out))

    def _op_pow(self, step):
        exponent = step.meta["exponent"]
        self._unary(step, lambda x, out, e=exponent: np.power(x, e, out=out))

    def _op_maximum(self, step):
        value = step.meta["value"]
        self._unary(step, lambda x, out, v=value: np.maximum(x, v, out=out))

    def _op_softmax(self, step):
        axis = step.meta["axis"]

        def apply(x, out, axis=axis):
            # The eager subtract-max/exp/normalize sequence, with the shifted
            # intermediate landing straight in the output buffer (safe when
            # ``out`` aliases ``x``: the max is reduced before the first
            # elementwise write).  The raw ufunc reduces are what np.amax and
            # np.sum delegate to — identical sums, less wrapper dispatch.
            np.subtract(x, np.maximum.reduce(x, axis=axis, keepdims=True), out=out)
            np.exp(out, out=out)
            total = np.add.reduce(out, axis=axis, keepdims=True)
            np.divide(out, total, out=out)

        self._unary(step, apply)

    def _op_log_softmax(self, step):
        axis = step.meta["axis"]

        def apply(x, out, axis=axis):
            shifted = x - np.amax(x, axis=axis, keepdims=True)
            log_sum = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
            np.subtract(shifted, log_sum, out=out)

        self._unary(step, apply)

    def _reduction_shape(self, step: _Step, shape: SymShape) -> SymShape:
        axis = _normalize_axis(step.meta["axis"], len(shape))
        keepdims = step.meta["keepdims"]
        if axis is None:
            return (1,) * len(shape) if keepdims else ()
        reduced = list(shape)
        if keepdims:
            reduced[axis] = 1
        else:
            del reduced[axis]
        return tuple(reduced)

    def _op_sum(self, step):
        self._reduce(step, scale_by_count=False)

    def _op_mean(self, step):
        self._reduce(step, scale_by_count=True)

    def _reduce(self, step: _Step, scale_by_count: bool) -> None:
        xi = self._input_index(step.inputs[0])
        shape = self._check(step, self._reduction_shape(step, self._shape_of(xi)))
        oi = self._new_buffer(shape, step.out.data.dtype)
        self._register_out(step, oi)
        axis = step.meta["axis"]
        keepdims = step.meta["keepdims"]

        def kernel(arrays, xi=xi, oi=oi, axis=axis, keepdims=keepdims, scale=scale_by_count):
            x = arrays[xi]
            out = arrays[oi]
            # np.add.reduce is what np.sum delegates to; calling it directly
            # skips the wrapper dispatch (the sums themselves are identical).
            np.add.reduce(x, axis=axis, keepdims=keepdims, out=out)
            if scale:
                count = x.size if axis is None else x.shape[axis]
                np.multiply(out, 1.0 / count, out=out)

        self.kernels.append(kernel)

    def _op_max(self, step):
        xi = self._input_index(step.inputs[0])
        shape = self._check(step, self._reduction_shape(step, self._shape_of(xi)))
        oi = self._new_buffer(shape, step.out.data.dtype)
        self._register_out(step, oi)
        axis = step.meta["axis"]
        keepdims = step.meta["keepdims"]

        def kernel(arrays, xi=xi, oi=oi, axis=axis, keepdims=keepdims):
            x = arrays[xi]
            np.maximum.reduce(x, axis=axis, keepdims=keepdims, out=arrays[oi])

        self.kernels.append(kernel)

    def _op_matmul(self, step):
        ai = self._input_index(step.inputs[0])
        bi = self._input_index(step.inputs[1])
        a_shape, b_shape = self._shape_of(ai), self._shape_of(bi)
        if len(a_shape) != 2 or len(b_shape) != 2:
            raise ReplayUnsupported("only 2-D matmul is replayable")
        if isinstance(a_shape[1], str) or a_shape[1] != b_shape[0]:
            raise ReplayUnsupported("matmul inner dimensions must be fixed and equal")
        shape = self._check(step, (a_shape[0], b_shape[1]))
        oi = self._new_buffer(shape, step.out.data.dtype)
        self._register_out(step, oi)

        def kernel(arrays, ai=ai, bi=bi, oi=oi):
            np.matmul(arrays[ai], arrays[bi], out=arrays[oi])

        self.kernels.append(kernel)

    def _op_spmm(self, step):
        matrix = step.meta["matrix"]
        slot = self.tape.slots.get(id(matrix))
        xi = self._input_index(step.inputs[0])
        x_shape = self._shape_of(xi)
        if len(x_shape) != 2:
            raise ReplayUnsupported("spmm needs a 2-D dense operand")
        if slot is not None:
            mi = self._slot_matrix_index(slot)
            mat_shape: SymShape = (_SYM_NODES, _SYM_NODES)
            self.slots_used.add("adjacency")
        elif id(matrix) in self.tape.batch_owned:
            raise ReplayUnsupported("batch-dependent sparse matrix is not a slot")
        else:
            mi = self._const_matrix_index(matrix)
            mat_shape = tuple(matrix.shape)
        if mat_shape[1] != x_shape[0]:
            raise ReplayUnsupported("spmm inner dimensions must match symbolically")
        shape = self._check(step, (mat_shape[0], x_shape[1]))
        oi = self._new_buffer(shape, step.out.data.dtype)
        self._register_out(step, oi)

        def kernel(arrays, mi=mi, xi=xi, oi=oi):
            matrix = arrays[mi]
            x = arrays[xi]
            out = arrays[oi]
            if (
                _CSR_MATVECS is not None
                and type(matrix) is sp.csr_matrix
                and out.flags.c_contiguous
            ):
                # scipy's _matmul_multivector on a preallocated result:
                # zero the target, then accumulate with csr_matvecs —
                # bit-identical to ``matrix @ x``.
                out.fill(0.0)
                _CSR_MATVECS(
                    matrix.shape[0],
                    matrix.shape[1],
                    x.shape[1],
                    matrix.indptr,
                    matrix.indices,
                    matrix.data,
                    x.ravel(),
                    out.ravel(),
                )
            else:
                out[...] = matrix.tocsr() @ x

        self.kernels.append(kernel)

    def _slot_matrix_index(self, slot) -> int:
        key = ("slot-matrix",) + tuple(slot)
        cached = self.index_of.get(key)  # type: ignore[arg-type]
        if cached is not None:
            return cached
        value = _Value("slot", (_SYM_NODES, _SYM_NODES))
        value.slot = slot
        index = len(self.values)
        self.values.append(value)
        self.index_of[key] = index  # type: ignore[index]
        return index

    def _const_matrix_index(self, matrix) -> int:
        value = _Value("const", tuple(matrix.shape))

        # Wrap so ``.data`` resolution hands back the matrix itself.
        class _MatrixRef:
            __slots__ = ("data",)

            def __init__(self, data):
                self.data = data

        value.tensor = _MatrixRef(matrix)  # type: ignore[assignment]
        index = len(self.values)
        self.values.append(value)
        return index

    def _op_concat(self, step):
        indices = [self._input_index(t) for t in step.inputs]
        axis = step.meta["axis"]
        shapes = [self._shape_of(i) for i in indices]
        rank = len(shapes[0])
        norm_axis = _normalize_axis(axis, rank)
        total = 0
        for shape in shapes:
            if len(shape) != rank:
                raise ReplayUnsupported("concat rank mismatch")
            for position, dim in enumerate(shape):
                if position == norm_axis:
                    if isinstance(dim, str):
                        raise ReplayUnsupported("concat along a symbolic axis")
                    total += dim
                elif dim != shapes[0][position]:
                    raise ReplayUnsupported("concat non-axis dimensions must agree")
        shape = list(shapes[0])
        shape[norm_axis] = total
        out_shape = self._check(step, tuple(shape))
        oi = self._new_buffer(out_shape, step.out.data.dtype)
        self._register_out(step, oi)
        # One slab assignment per input: the same copies np.concatenate
        # performs, without rebuilding the input list on every replay.
        destinations = []
        offset = 0
        for source_shape in shapes:
            extent = source_shape[norm_axis]
            destinations.append(
                (slice(None),) * norm_axis + (slice(offset, offset + extent),)
            )
            offset += extent

        def kernel(arrays, indices=tuple(indices), oi=oi, destinations=tuple(destinations)):
            out = arrays[oi]
            for destination, i in zip(destinations, indices):
                out[destination] = arrays[i]

        self.kernels.append(kernel)

    def _op_stack(self, step):
        indices = [self._input_index(t) for t in step.inputs]
        axis = step.meta["axis"]
        shapes = [self._shape_of(i) for i in indices]
        if any(shape != shapes[0] for shape in shapes):
            raise ReplayUnsupported("stack inputs must share a shape")
        if any(isinstance(dim, str) for dim in shapes[0]):
            raise ReplayUnsupported("stack of symbolic shapes")
        norm_axis = _normalize_axis(axis, len(shapes[0]) + 1)
        shape = shapes[0][:norm_axis] + (len(indices),) + shapes[0][norm_axis:]
        out_shape = self._check(step, shape)
        oi = self._new_buffer(out_shape, step.out.data.dtype)
        self._register_out(step, oi)
        # One slice assignment per part: the same copies np.stack performs,
        # without rebuilding the expanded-view list on every replay.
        destinations = tuple(
            (slice(None),) * norm_axis + (position,) for position in range(len(indices))
        )

        def kernel(arrays, indices=tuple(indices), oi=oi, destinations=destinations):
            out = arrays[oi]
            for destination, i in zip(destinations, indices):
                out[destination] = arrays[i]

        self.kernels.append(kernel)

    def _op_getitem(self, step):
        self._gather(step, step.meta["index"])

    def _op_gather(self, step):
        self._gather(step, step.meta["index"])

    def _gather(self, step: _Step, index) -> None:
        xi = self._input_index(step.inputs[0])
        x_shape = self._shape_of(xi)
        if isinstance(index, np.ndarray):
            slot = self.tape.slots.get(id(index))
            if slot == "centers":
                self.slots_used.add("centers")
                if index.ndim != 1:
                    raise ReplayUnsupported("center index must be 1-D")
                shape = self._check(step, (_SYM_CENTERS,) + x_shape[1:])
                oi = self._new_buffer(shape, step.out.data.dtype)
                self._register_out(step, oi)
                # Bind the index through the value list, not a closure over
                # the traced batch's array.
                ci = self._centers_index()

                def kernel(arrays, xi=xi, ci=ci, oi=oi):
                    np.take(arrays[xi], arrays[ci], axis=0, out=arrays[oi])

                self.kernels.append(kernel)
                return
            if id(index) in self.tape.batch_owned:
                raise ReplayUnsupported("batch-dependent gather index is not a slot")
            if isinstance(x_shape[0], str) or index.ndim != 1:
                raise ReplayUnsupported("constant gather over a symbolic axis")
            frozen = index.copy()
            shape = self._check(step, (int(frozen.size),) + x_shape[1:])
            oi = self._new_buffer(shape, step.out.data.dtype)
            self._register_out(step, oi)

            def kernel(arrays, xi=xi, oi=oi, frozen=frozen):
                np.take(arrays[xi], frozen, axis=0, out=arrays[oi])

            self.kernels.append(kernel)
            return
        if isinstance(index, (int, np.integer)):
            if isinstance(x_shape[0], str):
                raise ReplayUnsupported("integer index into a symbolic axis")
            shape = self._check(step, x_shape[1:])
            oi = self._new_buffer(shape, step.out.data.dtype)
            self._register_out(step, oi)
            frozen = int(index)

            def kernel(arrays, xi=xi, oi=oi, frozen=frozen):
                x = arrays[xi]
                arrays[oi][...] = x[frozen]

            self.kernels.append(kernel)
            return
        raise ReplayUnsupported(f"unsupported index type {type(index).__name__}")

    def _centers_index(self) -> int:
        key = ("slot-centers",)
        cached = self.index_of.get(key)  # type: ignore[arg-type]
        if cached is not None:
            return cached
        value = _Value("slot", (_SYM_CENTERS,))
        value.slot = "centers"
        index = len(self.values)
        self.values.append(value)
        self.index_of[key] = index  # type: ignore[index]
        return index

    def _op_reshape(self, step):
        xi = self._input_index(step.inputs[0])
        if any(isinstance(dim, str) for dim in self._shape_of(xi)):
            raise ReplayUnsupported("reshape of a symbolic shape")
        shape = self._check(step, tuple(step.out.data.shape))
        oi = self._new_buffer(shape, step.out.data.dtype)
        self._register_out(step, oi)
        target = tuple(step.out.data.shape)

        def kernel(arrays, xi=xi, oi=oi, target=target):
            x = arrays[xi]
            arrays[oi][...] = x.reshape(target)

        self.kernels.append(kernel)

    def _op_transpose(self, step):
        xi = self._input_index(step.inputs[0])
        x_shape = self._shape_of(xi)
        if any(isinstance(dim, str) for dim in x_shape):
            raise ReplayUnsupported("transpose of a symbolic shape")
        shape = self._check(step, tuple(reversed(x_shape)))
        oi = self._new_buffer(shape, step.out.data.dtype)
        self._register_out(step, oi)

        def kernel(arrays, xi=xi, oi=oi):
            x = arrays[xi]
            arrays[oi][...] = x.T

        self.kernels.append(kernel)


def compile_tape(tape: Tape, capacity: Tuple[int, int]) -> CompiledForward:
    """Compile a traced forward into a replay schedule for ``capacity``."""
    return _Compiler(tape, capacity).compile()


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ReplayEngine:
    """Per-session cache of compiled forward schedules, keyed by shape bucket.

    Not internally synchronized: an engine belongs to exactly one
    :class:`repro.api.DetectionSession`, which serializes every call under
    its lock (guarded-by: DetectionSession._lock).  Sharing an engine across
    sessions would share mutable replay buffers across threads.

    The miss path runs the eager forward (tracing it), compiles the tape,
    and self-checks the compiled schedule bitwise against the eager result
    before caching it; any compile failure or bit mismatch permanently
    disables capture for this engine and every later call falls back to
    :func:`eager_forward_proba`.
    """

    def __init__(self, max_buckets: Optional[int] = None, capture: bool = True) -> None:
        if max_buckets is None:
            max_buckets = int(os.environ.get("REPRO_REPLAY_BUCKETS", "8"))
        self.max_buckets = max(1, int(max_buckets))
        self._model = None
        self._compiled: "OrderedDict[Tuple[int, int], CompiledForward]" = OrderedDict()
        # ``capture=False`` yields a permanently-eager engine that still
        # times the forward pass — replay-off deployments then report the
        # same model_time metric the replay path does.
        self._disabled = not capture
        self._stats = self._zero_stats()

    @staticmethod
    def _zero_stats() -> Dict[str, float]:
        return {
            "model_s": 0.0,
            "replay_hits": 0,
            "replay_misses": 0,
            "replay_evictions": 0,
        }

    @property
    def disabled(self) -> bool:
        return self._disabled

    def consume_stats(self) -> Dict[str, float]:
        """Return and reset the counters accumulated since the last call."""
        stats = self._stats
        self._stats = self._zero_stats()
        return stats

    def forward_proba(self, model, batch) -> np.ndarray:  # oracle: eager_forward_proba
        """Class probabilities for ``batch``, replayed when the bucket is warm.

        Bit-identical to :func:`eager_forward_proba` by contract: a hit runs
        the compiled schedule (whose kernels mirror the eager NumPy
        expressions exactly), a miss runs eager-and-capture, and any doubt —
        unsupported op, shape surprise, failed self-check — disables capture
        and serves eager output.
        """
        start = time.perf_counter()
        try:
            return self._forward(model, batch)
        finally:
            self._stats["model_s"] += time.perf_counter() - start

    def _forward(self, model, batch) -> np.ndarray:
        if self._disabled:
            return eager_forward_proba(model, batch)
        if self._model is None:
            self._model = model
        elif self._model is not model:
            # One engine serves one architecture; a different model object
            # means a different parameter set mid-session — stay eager.
            return eager_forward_proba(model, batch)
        key = bucket_key(batch)
        compiled = self._compiled.get(key)
        if compiled is not None:
            self._compiled.move_to_end(key)
            try:
                probabilities = compiled.run(batch)
            except Exception:
                self._disabled = True
                return eager_forward_proba(model, batch)
            self._stats["replay_hits"] += 1
            return probabilities
        self._stats["replay_misses"] += 1
        tape, eager_out = trace_forward_proba(model, batch)
        try:
            compiled = compile_tape(tape, key)
            replayed = compiled.run(batch)
        except ReplayUnsupported:
            self._disabled = True
            return eager_out
        except Exception:
            self._disabled = True
            return eager_out
        if replayed.shape != eager_out.shape or not np.array_equal(replayed, eager_out):
            # The bit-identity gate: a schedule that cannot reproduce its own
            # trace batch must never serve traffic.
            self._disabled = True
            return eager_out
        self._compiled[key] = compiled
        if len(self._compiled) > self.max_buckets:
            self._compiled.popitem(last=False)
            self._stats["replay_evictions"] += 1
        return eager_out
