"""Module/parameter containers, a light analogue of ``torch.nn.Module``."""

from __future__ import annotations

from typing import Dict, List

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)

    @classmethod
    def from_tensor(cls, source: Tensor, name: str | None = None) -> "Parameter":
        return cls(source.data, name=name)


class Module:
    """Base class for layers and models.

    Sub-modules and parameters assigned as attributes are discovered
    automatically, so ``parameters()`` walks the whole model tree.  A
    ``training`` flag is propagated by :meth:`train` / :meth:`eval` and is
    consulted by stochastic layers such as dropout.
    """

    def __init__(self) -> None:
        self.training = True

    # -- parameter discovery -------------------------------------------------
    def parameters(self) -> List[Parameter]:
        found: List[Parameter] = []
        seen: set[int] = set()
        self._collect_parameters(found, seen)
        return found

    def _collect_parameters(self, found: List[Parameter], seen: set) -> None:
        for value in self.__dict__.values():
            self._collect_from_value(value, found, seen)

    def _collect_from_value(self, value, found: List[Parameter], seen: set) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            value._collect_parameters(found, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect_from_value(item, found, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect_from_value(item, found, seen)

    def named_parameters(self) -> Dict[str, Parameter]:
        """Best-effort flat mapping of attribute paths to parameters."""
        named: Dict[str, Parameter] = {}
        self._collect_named(named, prefix="")
        return named

    def _collect_named(self, named: Dict[str, Parameter], prefix: str) -> None:
        for key, value in self.__dict__.items():
            self._collect_named_value(value, named, f"{prefix}{key}")

    @staticmethod
    def _collect_named_value(value, named: Dict[str, Parameter], path: str) -> None:
        if isinstance(value, Parameter):
            named[path] = value
        elif isinstance(value, Module):
            value._collect_named(named, prefix=f"{path}.")
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                Module._collect_named_value(item, named, f"{path}.{i}")
        elif isinstance(value, dict):
            for sub_key, item in value.items():
                Module._collect_named_value(item, named, f"{path}.{sub_key}")

    # -- training mode -------------------------------------------------------
    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            self._set_mode_on_value(value, training)

    def _set_mode_on_value(self, value, training: bool) -> None:
        if isinstance(value, Module):
            value._set_mode(training)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._set_mode_on_value(item, training)
        elif isinstance(value, dict):
            for item in value.values():
                self._set_mode_on_value(item, training)

    # -- gradient helpers ----------------------------------------------------
    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear every parameter gradient.

        ``set_to_none=False`` zeroes the existing buffers in place so the
        next backward accumulates into preallocated memory (the training
        loop's steady state) instead of allocating per step.
        """
        for param in self.parameters():
            param.zero_grad(set_to_none=set_to_none)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- state dict ----------------------------------------------------------
    def state_dict(self) -> Dict[str, "np.ndarray"]:
        return {name: param.data.copy() for name, param in self.named_parameters().items()}

    def load_state_dict(self, state: Dict[str, "np.ndarray"]) -> None:
        named = self.named_parameters()
        for name, value in state.items():
            if name not in named:
                raise KeyError(f"unknown parameter {name!r}")
            if named[name].data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{named[name].data.shape} vs {value.shape}"
                )
            named[name].data = value.copy()

    # -- call protocol ---------------------------------------------------------
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
