"""Weight initialisation helpers.

The reproduction follows the common practice of Glorot (Xavier) uniform
initialisation for linear and graph-convolution weights and zeros for biases.
All initialisers take an explicit ``numpy.random.Generator`` so that every
experiment is reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> Tensor:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    data = rng.uniform(-limit, limit, size=(fan_in, fan_out))
    return Tensor(data, requires_grad=True)


def he_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> Tensor:
    """He/Kaiming uniform initialisation, suited to ReLU-family activations."""
    limit = np.sqrt(6.0 / fan_in)
    data = rng.uniform(-limit, limit, size=(fan_in, fan_out))
    return Tensor(data, requires_grad=True)


def zeros_init(*shape: int) -> Tensor:
    """All-zeros parameter (typically biases)."""
    return Tensor(np.zeros(shape), requires_grad=True)
