"""Unified metrics registry with Prometheus text-format exposition.

A :class:`MetricsRegistry` is a lock-guarded map of named *collectors* —
callables returning :class:`MetricFamily` objects at scrape time.  The
pull model keeps hot paths untouched: ``ServingMetrics``/``ShardRouter``
stay the single source of truth for their counters and histograms, and a
registered collector merely reads them when ``GET /metrics`` is scraped.
Owned :class:`Counter`/:class:`Gauge` primitives exist for code with no
metrics object of its own (the ingest cache, the shared builder pool).

Exposition follows the Prometheus text format: ``# HELP``/``# TYPE``
comments, ``name{label="value"} value`` samples, histogram
``_bucket``/``_sum``/``_count`` lines with cumulative ``le`` buckets ending
at ``+Inf``.  :func:`validate_exposition` is the strict parser the tests
and the CI smoke step run over the server's output.

Duplicate samples — two collectors emitting the same ``(name, labels)``
(e.g. two routers alive in one process) — are merged at scrape time: sums
for counters and histograms, last-write for gauges.  Stdlib-only.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.sanitizer import tracked_rlock

_KINDS = ("counter", "gauge", "histogram")

#: ``(labels, value)`` for counters/gauges; ``(labels, buckets, sum)`` for
#: histograms, where ``buckets`` is cumulative ``(upper_bound, count)``
#: pairs ending with ``(math.inf, total)``.
Sample = Tuple[Dict[str, str], Any]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricFamily:
    """One named metric with its kind, help text, and samples."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(
        self, name: str, kind: str, help: str = "", samples: Optional[List] = None
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if kind not in _KINDS:
            raise ValueError(f"metric kind must be one of {_KINDS}, got {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.samples: List = list(samples or [])


class Counter:
    """A monotonic counter owned by the registry (thread-safe)."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = tracked_rlock("Counter._lock")
        self._value = 0.0  # guarded-by: _lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def collect(self) -> List[MetricFamily]:
        return [MetricFamily(self.name, "counter", self.help, [({}, self.value)])]


class Gauge:
    """A set-or-callback gauge owned by the registry (thread-safe)."""

    def __init__(
        self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None
    ) -> None:
        self.name = name
        self.help = help
        self.fn = fn
        self._lock = tracked_rlock("Gauge._lock")
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        with self._lock:
            return self._value

    def collect(self) -> List[MetricFamily]:
        return [MetricFamily(self.name, "gauge", self.help, [({}, self.value)])]


class MetricsRegistry:
    """Named collectors behind one scrape surface (thread-safe)."""

    def __init__(self) -> None:
        self._lock = tracked_rlock("MetricsRegistry._lock")
        #: collector key -> callable returning an iterable of families.
        self._collectors: Dict[str, Callable[[], Iterable[MetricFamily]]] = (
            {}
        )  # guarded-by: _lock
        #: metric name -> owned Counter/Gauge (get-or-create dedupe).
        self._owned: Dict[str, object] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self, key: str, collector: Callable[[], Iterable[MetricFamily]]
    ) -> None:
        """Register ``collector`` under ``key`` (replaces a previous one)."""
        with self._lock:
            self._collectors[key] = collector

    def unregister(self, key: str) -> bool:
        """Drop a collector; False when it was not registered (idempotent)."""
        with self._lock:
            return self._collectors.pop(key, None) is not None

    def counter(self, name: str, help: str = "") -> Counter:
        """Get-or-create an owned counter registered under its own name."""
        with self._lock:
            existing = self._owned.get(name)
            if existing is not None:
                if not isinstance(existing, Counter):
                    raise ValueError(f"metric {name!r} exists with a different kind")
                return existing
            counter = Counter(name, help)
            self._owned[name] = counter
            self._collectors[f"owned:{name}"] = counter.collect
            return counter

    def gauge(
        self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None
    ) -> Gauge:
        """Get-or-create an owned gauge (``fn`` makes it a callback gauge)."""
        with self._lock:
            existing = self._owned.get(name)
            if existing is not None:
                if not isinstance(existing, Gauge):
                    raise ValueError(f"metric {name!r} exists with a different kind")
                if fn is not None:
                    existing.fn = fn
                return existing
            gauge = Gauge(name, help, fn=fn)
            self._owned[name] = gauge
            self._collectors[f"owned:{name}"] = gauge.collect
            return gauge

    # ------------------------------------------------------------------
    # Scraping
    # ------------------------------------------------------------------
    def collect(self) -> List[MetricFamily]:
        """All families, merged by name, duplicate samples resolved.

        Collectors run *outside* the registry lock — they take their own
        locks (``ServingMetrics``, router state) and holding ours across
        them would build a cross-registry lock order for no benefit.
        """
        with self._lock:
            collectors = list(self._collectors.items())
        merged: Dict[str, MetricFamily] = {}
        for _key, collector in sorted(collectors):
            for family in collector():
                existing = merged.get(family.name)
                if existing is None:
                    merged[family.name] = MetricFamily(
                        family.name, family.kind, family.help, family.samples
                    )
                elif existing.kind != family.kind:
                    raise ValueError(
                        f"metric {family.name!r} collected with conflicting kinds "
                        f"{existing.kind!r} and {family.kind!r}"
                    )
                else:
                    existing.samples.extend(family.samples)
        return [_dedupe_family(family) for family in merged.values()]

    def prometheus_text(self) -> str:
        """The full Prometheus text-format exposition of this registry."""
        return render_prometheus(self.collect())


def _labels_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _dedupe_family(family: MetricFamily) -> MetricFamily:
    """Merge duplicate ``(name, labels)`` samples within one family."""
    out: Dict[Tuple, Any] = {}
    for sample in family.samples:
        labels = sample[0]
        key = _labels_key(labels)
        if key not in out:
            out[key] = sample
        elif family.kind == "histogram":
            _labels, buckets, total = out[key]
            merged = merge_buckets([buckets, sample[1]])
            out[key] = (labels, merged, total + sample[2])
        elif family.kind == "counter":
            out[key] = (labels, out[key][1] + sample[1])
        else:  # gauge: last write wins
            out[key] = sample
    return MetricFamily(family.name, family.kind, family.help, list(out.values()))


def merge_buckets(
    bucket_lists: Sequence[Sequence[Tuple[float, int]]]
) -> List[Tuple[float, int]]:
    """Element-wise sum of cumulative bucket lists sharing one bound set."""
    merged: Optional[List[Tuple[float, int]]] = None
    for buckets in bucket_lists:
        if merged is None:
            merged = [(float(bound), int(count)) for bound, count in buckets]
            continue
        if len(buckets) != len(merged) or any(
            b[0] != m[0] for b, m in zip(buckets, merged)
        ):
            raise ValueError("histogram bucket bounds differ; cannot merge")
        merged = [
            (bound, count + int(other[1]))
            for (bound, count), other in zip(merged, buckets)
        ]
    return merged or []


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else repr(float(bound))


def render_prometheus(families: Iterable[MetricFamily]) -> str:
    """Render families as Prometheus text format (trailing newline)."""
    lines: List[str] = []
    for family in sorted(families, key=lambda f: f.name):
        help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {family.name} {help_text}".rstrip())
        lines.append(f"# TYPE {family.name} {family.kind}")
        if family.kind == "histogram":
            for labels, buckets, total in family.samples:
                count = buckets[-1][1] if buckets else 0
                for bound, cumulative in buckets:
                    with_le = dict(labels)
                    with_le["le"] = _format_bound(bound)
                    lines.append(
                        f"{family.name}_bucket{_format_labels(with_le)} "
                        f"{_format_value(cumulative)}"
                    )
                lines.append(
                    f"{family.name}_sum{_format_labels(dict(labels))} "
                    f"{_format_value(total)}"
                )
                lines.append(
                    f"{family.name}_count{_format_labels(dict(labels))} "
                    f"{_format_value(count)}"
                )
        else:
            for labels, value in family.samples:
                lines.append(
                    f"{family.name}{_format_labels(labels)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Strict validation (tests + CI smoke)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _parse_labels(raw: Optional[str], line_no: int) -> Dict[str, str]:
    if not raw:
        return {}
    labels: Dict[str, str] = {}
    rest = raw
    while rest:
        match = _LABEL_PAIR_RE.match(rest)
        if not match:
            raise ValueError(f"line {line_no}: malformed label set {raw!r}")
        name = match.group("name")
        if name in labels:
            raise ValueError(f"line {line_no}: duplicate label {name!r}")
        labels[name] = match.group("value")
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ValueError(f"line {line_no}: malformed label set {raw!r}")
    return labels


def _parse_value(raw: str, line_no: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"line {line_no}: unparseable value {raw!r}") from None


def validate_exposition(text: str) -> Dict[str, str]:
    """Strictly parse a Prometheus text exposition; raises ``ValueError``.

    Checks: every line is ``# HELP``, ``# TYPE``, blank, or a well-formed
    sample; ``# TYPE`` precedes its family's samples and names a known
    kind; sample names resolve to a declared family (histogram samples via
    ``_bucket``/``_sum``/``_count`` suffixes, ``_bucket`` carrying an
    ``le`` label); no duplicate ``(name, labels)``; per labelset, histogram
    buckets are cumulative, non-decreasing, end at ``le="+Inf"``, and agree
    with ``_count``.  Returns ``{family: kind}`` for convenience.
    """
    types: Dict[str, str] = {}
    seen: set = set()
    # (family, labels-without-le) -> {"buckets": [(le, v)], "count": v}
    histograms: Dict[Tuple, Dict[str, Any]] = {}
    for line_no, line in enumerate(text.split("\n"), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {line_no}: malformed HELP line {line!r}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {line_no}: malformed TYPE line {line!r}")
            name, kind = parts[2], parts[3]
            if kind not in _KINDS:
                raise ValueError(f"line {line_no}: unknown metric kind {kind!r}")
            if name in types:
                raise ValueError(f"line {line_no}: duplicate TYPE for {name!r}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {line_no}: malformed sample line {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"), line_no)
        value = _parse_value(match.group("value"), line_no)
        family, suffix = name, ""
        if name not in types:
            for candidate in ("_bucket", "_sum", "_count"):
                if name.endswith(candidate) and name[: -len(candidate)] in types:
                    family, suffix = name[: -len(candidate)], candidate
                    break
        kind = types.get(family)
        if kind is None:
            raise ValueError(
                f"line {line_no}: sample {name!r} has no preceding # TYPE"
            )
        if kind == "histogram":
            if suffix not in ("_bucket", "_sum", "_count"):
                raise ValueError(
                    f"line {line_no}: histogram {family!r} sample must use "
                    "_bucket/_sum/_count"
                )
            if suffix == "_bucket" and "le" not in labels:
                raise ValueError(
                    f"line {line_no}: histogram bucket missing 'le' label"
                )
        elif suffix:
            raise ValueError(
                f"line {line_no}: suffix sample {name!r} on non-histogram family"
            )
        sample_key = (name, _labels_key(labels))
        if sample_key in seen:
            raise ValueError(
                f"line {line_no}: duplicate sample {name!r} {labels!r}"
            )
        seen.add(sample_key)
        if kind == "histogram":
            base_labels = {k: v for k, v in labels.items() if k != "le"}
            entry = histograms.setdefault(
                (family, _labels_key(base_labels)), {"buckets": [], "count": None}
            )
            if suffix == "_bucket":
                entry["buckets"].append((_parse_value(labels["le"], line_no), value))
            elif suffix == "_count":
                entry["count"] = value
    for (family, labels_key), entry in histograms.items():
        buckets = entry["buckets"]
        if not buckets or not math.isinf(buckets[-1][0]):
            raise ValueError(
                f"histogram {family!r} {dict(labels_key)!r} must end at le=\"+Inf\""
            )
        for (lo_bound, lo_count), (hi_bound, hi_count) in zip(buckets, buckets[1:]):
            if hi_bound <= lo_bound:
                raise ValueError(f"histogram {family!r} buckets not sorted by le")
            if hi_count < lo_count:
                raise ValueError(f"histogram {family!r} buckets not cumulative")
        if entry["count"] is None:
            raise ValueError(f"histogram {family!r} missing _count")
        if entry["count"] != buckets[-1][1]:
            raise ValueError(
                f"histogram {family!r} _count {entry['count']} != "
                f"+Inf bucket {buckets[-1][1]}"
            )
    return types


#: The process-global registry — what ``GET /metrics`` scrapes by default
#: and what module-level instruments (ingest cache, builder pool) join.
_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return _GLOBAL_REGISTRY
